//! Round-trip a circuit through the RTL toolchain: generate → export
//! structural Verilog → re-import → LUT-map → program INIT masks →
//! verify the mapped network → emit LUT-primitive Verilog.
//!
//! Run with: `cargo run --release --example verilog_roundtrip`

use approxfpgas_suite::circuits::multipliers::broken_array;
use approxfpgas_suite::fpga::{luts, map, FpgaConfig};
use approxfpgas_suite::netlist::{export, parse};

fn main() {
    let circuit = broken_array(8, 5, 2);
    println!(
        "source circuit: {} ({} gates)",
        circuit.name(),
        circuit.netlist().num_logic_gates()
    );

    // Export → re-import.
    let rtl = export::to_verilog(circuit.netlist());
    let reimported = parse::from_verilog(&rtl).expect("our own RTL re-parses");
    println!(
        "round-trip: {} lines of Verilog -> {} gates after re-import",
        rtl.lines().count(),
        reimported.num_logic_gates()
    );

    // Technology-map the re-imported netlist and program the LUTs.
    let cfg = FpgaConfig::default();
    let mapping = map::map_luts(&reimported, &cfg);
    let programmed = luts::program_luts(&reimported, &mapping);
    let mismatches = luts::verify_mapping(&reimported, &programmed, 1024, 0xE0);
    println!(
        "mapping: {} LUTs, {} levels; equivalence check on 1024 vectors: {}",
        mapping.luts.len(),
        mapping.depth,
        if mismatches == 0 { "PASSED" } else { "FAILED" }
    );
    assert_eq!(mismatches, 0, "mapped network must match the source");

    // The mapped netlist as LUT primitives, ready for a P&R flow.
    let mapped_rtl = luts::to_lut_verilog(&reimported, &programmed);
    println!("\nfirst LUT instances of the mapped netlist:");
    for line in mapped_rtl.lines().filter(|l| l.contains("LUT")).take(4) {
        println!("  {}", line.trim());
    }
    println!("  ... ({} LUT instances total)", programmed.len());
}

//! The ApproxFPGAs methodology end to end on a small 8-bit adder library:
//! subset synthesis, model training, pseudo-pareto construction, and the
//! final pareto-optimal FPGA-ACs.
//!
//! Run with: `cargo run --release --example pareto_exploration`

use approxfpgas_suite::circuits::{ArithKind, LibrarySpec};
use approxfpgas_suite::flow::record::FpgaParam;
use approxfpgas_suite::flow::{Flow, FlowConfig};

fn main() {
    let config = FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 200),
        ..FlowConfig::default()
    };
    println!(
        "exploring a {}-circuit 8-bit adder library (subset fraction {:.0}%)...",
        config.library.target_size,
        100.0 * config.subset_fraction
    );
    let outcome = Flow::new(config).run();

    println!("\nselected models per FPGA parameter:");
    for (param, models) in &outcome.selected_models {
        let labels: Vec<&str> = models.iter().map(|m| m.label()).collect();
        println!("  {param:?}: {}", labels.join(", "));
    }

    println!("\nvalidation fidelity of the winners:");
    for (param, models) in &outcome.selected_models {
        for model in models {
            if let Some(f) = outcome
                .zoo
                .fidelities
                .iter()
                .find(|f| f.model == *model && f.param == *param)
            {
                println!(
                    "  {param:?} / {}: fidelity {:.1}%, r2 {:.3}",
                    model.label(),
                    100.0 * f.fidelity,
                    f.r2
                );
            }
        }
    }

    let t = &outcome.time;
    println!("\nexploration accounting:");
    println!(
        "  exhaustive: {} circuits, {:.1} h (modeled)",
        t.exhaustive_count,
        t.exhaustive_s / 3600.0
    );
    println!(
        "  this flow:  {} circuits, {:.1} h -> {} faster",
        t.flow_count,
        t.flow_s() / 3600.0,
        approxfpgas::obs::fmt_ratio(t.speedup())
    );

    println!("\npareto-optimal FPGA-ACs (area vs MED):");
    let front = &outcome.final_fronts[&FpgaParam::Area];
    for &i in front.iter().take(10) {
        let r = &outcome.records[i];
        println!(
            "  {:<28} {:>4} LUTs  MED {:.6}",
            r.name, r.fpga.luts, r.error.med
        );
    }
    println!(
        "  ... {} front members, covering {:.0}% of the true front",
        front.len(),
        100.0 * outcome.coverage[&FpgaParam::Area]
    );
}

//! Quickstart: build one approximate circuit, quantify its error, and get
//! its ASIC and FPGA cost reports.
//!
//! Run with: `cargo run --release --example quickstart`

use approxfpgas_suite::asic::{synthesize_asic, AsicConfig};
use approxfpgas_suite::circuits::adders::{loa, ripple_carry};
use approxfpgas_suite::error::{analyze, ErrorConfig};
use approxfpgas_suite::fpga::{synthesize_fpga, FpgaConfig};
use approxfpgas_suite::netlist::export;

fn main() {
    // An 8-bit lower-part-OR adder: the low 4 bits are approximated.
    let approx = loa(8, 4);
    let exact = ripple_carry(8);

    println!("circuit: {}", approx.name());
    println!(
        "  145 + 99  = {} (exact {})",
        approx.eval(145, 99),
        145 + 99
    );
    println!("  255 + 255 = {} (exact {})", approx.eval(255, 255), 510);

    // Behavioural error metrics (exhaustive for 8-bit operands).
    let err = analyze(&approx, &ErrorConfig::default());
    println!("\nerror metrics over all {} input pairs:", err.samples);
    println!("  MED (paper definition): {:.6}", err.med);
    println!("  worst-case error:       {}", err.wce);
    println!("  error probability:      {:.3}", err.error_prob);

    // Cost on both targets.
    let asic_cfg = AsicConfig::default();
    let fpga_cfg = FpgaConfig::default();
    for (label, circuit) in [("exact rca8", &exact), ("loa(8,4)", &approx)] {
        let asic = synthesize_asic(circuit.netlist(), &asic_cfg);
        let fpga = synthesize_fpga(circuit.netlist(), &fpga_cfg);
        println!(
            "\n{label}:\n  ASIC: {:>7.2} um2, {:>6.3} ns, {:>6.4} mW\n  FPGA: {:>4} LUTs, {:>2} slices, {:>6.3} ns, {:>6.3} mW",
            asic.area_um2, asic.delay_ns, asic.power_mw,
            fpga.luts, fpga.slices, fpga.delay_ns, fpga.power_mw,
        );
    }

    // The RTL is exportable for a real tool-flow.
    let verilog = export::to_verilog(approx.netlist());
    println!(
        "\nstructural Verilog ({} lines), first lines:",
        verilog.lines().count()
    );
    for line in verilog.lines().take(5) {
        println!("  {line}");
    }
}

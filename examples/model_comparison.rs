//! Compare all 18 Table-I models on one estimation task: predicting FPGA
//! LUT counts of an 8-bit adder library from structural + ASIC features.
//!
//! Run with: `cargo run --release --example model_comparison`

use approxfpgas_suite::circuits::{build_library, ArithKind, LibrarySpec};
use approxfpgas_suite::flow::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas_suite::flow::fidelity::train_zoo;
use approxfpgas_suite::flow::record::FpgaParam;
use approxfpgas_suite::ml::MlModelId;

fn main() {
    let spec = LibrarySpec::new(ArithKind::Adder, 8, 150);
    println!("characterizing {} adders...", spec.target_size);
    let library = build_library(&spec);
    let records = characterize_library(
        &library,
        &Default::default(),
        &Default::default(),
        &Default::default(),
    );
    let subset = sample_subset(records.len(), 0.4, 50, 1);
    let (train, validate) = train_validate_split(&subset, 0.8, 1);
    println!(
        "training 18 models on {} circuits, validating on {}...",
        train.len(),
        validate.len()
    );
    let zoo = train_zoo(&records, &train, &validate, &MlModelId::ALL, 0.01);

    let mut rows: Vec<_> = zoo
        .fidelities
        .iter()
        .filter(|f| f.param == FpgaParam::Area)
        .collect();
    rows.sort_by(|a, b| b.fidelity.total_cmp(&a.fidelity));
    println!(
        "\n{:<6} {:<34} {:>9} {:>8} {:>8}",
        "id", "model", "fidelity", "r2", "mae"
    );
    for f in rows {
        println!(
            "{:<6} {:<34} {:>8.1}% {:>8.3} {:>8.2}",
            f.model.label(),
            f.model.description(),
            100.0 * f.fidelity,
            f.r2,
            f.mae
        );
    }
    println!("\nfidelity (paper Eq. 1) scores *ordering* consistency — exactly what\npareto construction needs, which is why it, not MAE, picks the models.");
}

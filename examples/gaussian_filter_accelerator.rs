//! The AutoAx-FPGA case study's accelerator, driven by hand: assemble the
//! component library, compose three accelerator variants, filter an image
//! and compare quality (SSIM) vs hardware cost.
//!
//! Run with: `cargo run --release --example gaussian_filter_accelerator`

use approxfpgas_suite::autoax::filter::{exact_gaussian, ADDER_SLOTS, MULT_SLOTS};
use approxfpgas_suite::autoax::image::plasma;
use approxfpgas_suite::autoax::ssim::ssim;
use approxfpgas_suite::autoax::{AcceleratorConfig, ComponentLibrary, GaussianAccelerator};
use approxfpgas_suite::fpga::FpgaConfig;

fn main() {
    let library = ComponentLibrary::paper_defaults(&FpgaConfig::default());
    println!(
        "component library: {} multipliers, {} adders; {:.2e} possible accelerators",
        library.multipliers().len(),
        library.adders().len(),
        AcceleratorConfig::space_size(&library)
    );
    let accel = GaussianAccelerator::new(&library);
    let image = plasma(64, 42);
    let reference = exact_gaussian(&image);

    let variants = [
        ("exact", AcceleratorConfig::exact()),
        (
            "mildly approximate",
            AcceleratorConfig {
                mult_slots: [1; MULT_SLOTS],   // truncated(8,2) multipliers
                adder_slots: [1; ADDER_SLOTS], // loa(16,4) adders
            },
        ),
        (
            "aggressive",
            AcceleratorConfig {
                mult_slots: [3; MULT_SLOTS],   // truncated(8,6)
                adder_slots: [3; ADDER_SLOTS], // loa(16,8)
            },
        ),
    ];

    println!(
        "\n{:<20} {:>8} {:>10} {:>10} {:>8}",
        "variant", "SSIM", "LUTs", "power", "delay"
    );
    for (label, config) in &variants {
        let output = accel.filter(config, &image);
        let quality = ssim(&output, &reference);
        let cost = accel.hw_cost(config);
        println!(
            "{:<20} {:>8.4} {:>10} {:>8.2}mW {:>6.2}ns",
            label, quality, cost.luts, cost.power_mw, cost.delay_ns
        );
    }
    println!("\nquality degrades gracefully while LUTs/power/delay drop — the\ntrade-off surface AutoAx-FPGA searches automatically (see\n`cargo run --release -p afp-bench --bin fig9`).");
}

//! Cross-crate property-based tests: randomized circuits keep their
//! invariants through the whole substrate stack.

use proptest::prelude::*;

use approxfpgas_suite::asic::{synthesize_asic, AsicConfig};
use approxfpgas_suite::circuits::{adders, multipliers, mutate, ArithCircuit};
use approxfpgas_suite::error::{analyze, ErrorConfig};
use approxfpgas_suite::fpga::{synthesize_fpga, FpgaConfig};

fn err_cfg() -> ErrorConfig {
    // Small sample keeps the proptest cases fast.
    ErrorConfig {
        samples: 2048,
        ..ErrorConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn loa_cost_and_error_are_monotone_in_k(k in 1usize..7) {
        // More approximation -> more error (exhaustive), never more gates.
        let smaller = analyze(&adders::loa(8, k), &ErrorConfig::default());
        let larger = analyze(&adders::loa(8, k + 1), &ErrorConfig::default());
        prop_assert!(larger.med >= smaller.med);
        let mut a = adders::loa(8, k);
        let mut b = adders::loa(8, k + 1);
        a.simplify();
        b.simplify();
        prop_assert!(b.netlist().num_logic_gates() <= a.netlist().num_logic_gates());
    }

    #[test]
    fn mutants_never_break_the_toolchain(seed in 0u64..10_000, muts in 1usize..6) {
        let base = multipliers::wallace_multiplier(6);
        let m = mutate::mutate(&base, &mutate::MutationConfig {
            mutations: muts,
            seed,
            ..Default::default()
        });
        m.netlist().validate().unwrap();
        let err = analyze(&m, &err_cfg());
        prop_assert!(err.med >= 0.0 && err.med <= 1.0);
        let asic = synthesize_asic(m.netlist(), &AsicConfig::default());
        prop_assert!(asic.area_um2 >= 0.0);
        let fpga = synthesize_fpga(m.netlist(), &FpgaConfig::default());
        prop_assert!(fpga.luts <= m.netlist().num_logic_gates());
        prop_assert!(fpga.delay_ns >= 0.0);
    }

    #[test]
    fn truncated_multiplier_bias_is_never_positive(k in 0usize..12) {
        let c = multipliers::truncated(8, k);
        let err = analyze(&c, &ErrorConfig::default());
        prop_assert!(err.bias <= 1e-12, "truncation overestimated: bias {}", err.bias);
    }

    #[test]
    fn fpga_report_scales_with_duplicated_logic(w in 3usize..7) {
        // A circuit that is strictly contained in another must not cost
        // more LUTs.
        let small: ArithCircuit = multipliers::truncated(w as usize, w);
        let full = multipliers::wallace_multiplier(w);
        let cfg = FpgaConfig::default();
        let mut s = small;
        s.simplify();
        let rs = synthesize_fpga(s.netlist(), &cfg);
        let rf = synthesize_fpga(full.netlist(), &cfg);
        prop_assert!(rs.luts <= rf.luts, "truncated ({}) > full ({})", rs.luts, rf.luts);
    }

    #[test]
    fn pareto_front_never_contains_a_dominated_point(seed in 0u64..1000) {
        let mut s = seed | 1;
        let pts: Vec<(f64, f64)> = (0..120).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (((s >> 16) & 0xFF) as f64, ((s >> 40) & 0xFF) as f64)
        }).collect();
        let front = approxfpgas_suite::flow::pareto_front(&pts);
        for &f in &front {
            for (i, &p) in pts.iter().enumerate() {
                if i != f {
                    prop_assert!(
                        !approxfpgas_suite::flow::pareto::dominates(p, pts[f])
                            || front.contains(&i),
                        "front point {f} dominated by {i}"
                    );
                }
            }
        }
    }
}

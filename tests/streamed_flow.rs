//! The streaming contract of the flow: a stored corpus streamed
//! shard-at-a-time must produce a normalized run report byte-identical
//! to the in-RAM path, for any thread count and shard size — and a
//! damaged corpus must fail loudly, never shrink silently.

use std::path::PathBuf;

use approxfpgas_suite::circuits::{
    read_library, write_library_specs, ArithKind, LibrarySource, LibrarySpec,
};
use approxfpgas_suite::flow::report::{normalized, run_report};
use approxfpgas_suite::flow::{Flow, FlowConfig};
use approxfpgas_suite::ml::MlModelId;
use approxfpgas_suite::obs::{Recorder, Value};
use approxfpgas_suite::runtime::{Key128, Runtime};
use approxfpgas_suite::store::StoreWriter;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afp-streamflow-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(threads: usize, shard_circuits: usize) -> FlowConfig {
    FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 60),
        min_subset: 24,
        models: vec![
            MlModelId::Ml1,
            MlModelId::Ml4,
            MlModelId::Ml13,
            MlModelId::Ml18,
        ],
        threads,
        shard_circuits,
        ..FlowConfig::default()
    }
}

/// Write a mixed adder/multiplier corpus — streaming must not assume a
/// single-kind library.
fn mixed_corpus(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("corpus.afps");
    let specs = [
        LibrarySpec::new(ArithKind::Adder, 8, 40),
        LibrarySpec::new(ArithKind::Multiplier, 4, 20),
    ];
    write_library_specs(&path, &specs, &Runtime::new(1)).unwrap();
    path
}

/// Normalized report JSON with the honestly-differing `flow.threads`
/// field aligned — the byte-identity comparator for all paths.
fn report_json(
    cfg: &FlowConfig,
    outcome: &approxfpgas_suite::flow::FlowOutcome,
    rec: &Recorder,
) -> String {
    let mut report = normalized(&run_report(cfg, outcome, rec));
    report.set_field("flow", "threads", Value::UInt(0));
    report.to_json()
}

#[test]
fn streamed_reports_are_byte_identical_to_the_in_ram_path() {
    let dir = temp_dir("golden");
    let path = mixed_corpus(&dir);

    // In-RAM comparator: eager read + resident characterization.
    let in_ram_cfg = config(1, 0);
    let library = read_library(&path).unwrap();
    let rec = Recorder::enabled();
    let outcome = Flow::new(in_ram_cfg.clone()).run_on_library_traced(&library, &rec);
    let golden = report_json(&in_ram_cfg, &outcome, &rec);
    assert!(golden.contains("\"shards_streamed\":0"), "{golden}");
    assert!(golden.contains("\"peak_resident_circuits\":0"), "{golden}");

    for threads in [1, 8] {
        for shard in [7, 17, 1000] {
            let cfg = config(threads, shard);
            let rec = Recorder::enabled();
            let outcome = Flow::new(cfg.clone())
                .run_source_traced(&LibrarySource::Stored(path.clone()), &rec)
                .unwrap();
            assert!(
                outcome.runtime.shards_streamed >= 1,
                "threads={threads} shard={shard}"
            );
            assert!(
                outcome.runtime.peak_resident_circuits <= shard as u64,
                "threads={threads} shard={shard}: peak {}",
                outcome.runtime.peak_resident_circuits
            );
            let streamed = report_json(&cfg, &outcome, &rec);
            assert_eq!(
                golden, streamed,
                "normalized report diverged at threads={threads} shard={shard}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_corpus_fails_the_flow_loudly() {
    let dir = temp_dir("torn");
    let path = mixed_corpus(&dir);
    let bytes = std::fs::read(&path).unwrap();
    // Cut through the trailer into the index frame: the data frames are
    // all intact, so a silent-prefix policy would "succeed" with the
    // full library — the flow must refuse anyway.
    std::fs::write(&path, &bytes[..bytes.len() - 12]).unwrap();
    match Flow::new(config(1, 16)).run_source(&LibrarySource::Stored(path.clone())) {
        Ok(_) => panic!("a truncated corpus must not characterize"),
        Err(err) => {
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
            assert!(
                err.to_string().contains("torn or corrupt"),
                "unexpected message: {err}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_record_version_fails_the_flow_loudly() {
    let dir = temp_dir("version");
    let path = dir.join("future.afps");
    // A well-formed store whose records were written by some future
    // circuit codec: indistinguishable from garbage to this build, and
    // it must say so rather than stream zero circuits.
    let mut writer = StoreWriter::create(&path, 999).unwrap();
    writer.append(Key128 { hi: 1, lo: 2 }, b"opaque").unwrap();
    writer.finish_sealed().unwrap();
    match Flow::new(config(1, 16)).run_source(&LibrarySource::Stored(path.clone())) {
        Ok(_) => panic!("a foreign-version corpus must not characterize"),
        Err(err) => {
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
            let msg = err.to_string();
            assert!(msg.contains("record version 999"), "{msg}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Device-profile registry invariants and per-target goldens.
//!
//! Three layers of pinning keep retargeting honest:
//!
//! * per-target `FpgaReport` goldens (exact floats) for a fixed adder and
//!   multiplier — the synthesis model must not drift on any fabric,
//! * per-target pinned pareto fronts from a small flow — the methodology
//!   must produce a stable front per fabric, and the fronts must be
//!   distinguishable as *cost surfaces* (the K=6 fabrics share LUT
//!   structure, so index sets may coincide while every delay differs),
//! * characterization-cache keys must differ across profiles — two
//!   targets may never serve each other's cached ground truth.

use proptest::prelude::*;

use approxfpgas_suite::asic::AsicConfig;
use approxfpgas_suite::circuits::{adders, multipliers, mutate, ArithKind, LibrarySpec};
use approxfpgas_suite::error::ErrorConfig;
use approxfpgas_suite::flow::record::FpgaParam;
use approxfpgas_suite::flow::{CharacterizationCache, Flow, FlowConfig, FlowOutcome};
use approxfpgas_suite::fpga::target::{named, registry, DEFAULT_TARGET};
use approxfpgas_suite::fpga::{synthesize_fpga, FpgaConfig, FpgaReport};
use approxfpgas_suite::ml::MlModelId;

/// Golden per-target reports captured at registry introduction. Exact
/// float comparison (`FpgaReport: PartialEq`), no tolerance: a profile's
/// cost model may only move together with a re-capture and an explanation
/// in the commit message.
#[test]
fn per_target_reports_are_bit_identical_goldens() {
    let goldens: [(&str, &str, FpgaReport); 8] = [
        (
            "lut4-ice40",
            "add8_rca",
            FpgaReport {
                luts: 15,
                slices: 2,
                depth_levels: 7,
                delay_ns: 9.744678006976402,
                power_mw: 0.3412704098188034,
                synth_time_s: 151.98212176699474,
            },
        ),
        (
            "lut4-ice40",
            "mul8_wallace",
            FpgaReport {
                luts: 172,
                slices: 22,
                depth_levels: 14,
                delay_ns: 18.321152834177774,
                power_mw: 3.034565093626262,
                synth_time_s: 806.1042023346304,
            },
        ),
        (
            "lut6-7series",
            "add8_rca",
            FpgaReport {
                luts: 14,
                slices: 4,
                depth_levels: 4,
                delay_ns: 2.5989397121226507,
                power_mw: 2.024010220483699,
                synth_time_s: 136.8916983291371,
            },
        ),
        (
            "lut6-7series",
            "mul8_wallace",
            FpgaReport {
                luts: 117,
                slices: 30,
                depth_levels: 8,
                delay_ns: 5.199270497321918,
                power_mw: 15.201056165777832,
                synth_time_s: 654.8185397116046,
            },
        ),
        (
            "lut6-ultrascale",
            "add8_rca",
            FpgaReport {
                luts: 14,
                slices: 2,
                depth_levels: 4,
                delay_ns: 1.9101586473184473,
                power_mw: 3.098201874755757,
                synth_time_s: 136.8916983291371,
            },
        ),
        (
            "lut6-ultrascale",
            "mul8_wallace",
            FpgaReport {
                luts: 117,
                slices: 15,
                depth_levels: 8,
                delay_ns: 3.8994313054225183,
                power_mw: 23.592293399194492,
                synth_time_s: 654.8185397116046,
            },
        ),
        (
            "alm-stratix",
            "add8_rca",
            FpgaReport {
                luts: 14,
                slices: 2,
                depth_levels: 4,
                delay_ns: 2.2667393619121112,
                power_mw: 3.5767773500961977,
                synth_time_s: 136.8916983291371,
            },
        ),
        (
            "alm-stratix",
            "mul8_wallace",
            FpgaReport {
                luts: 117,
                slices: 12,
                depth_levels: 8,
                delay_ns: 4.578133630086651,
                power_mw: 26.733926408522194,
                synth_time_s: 654.8185397116046,
            },
        ),
    ];
    for (target, circuit, want) in &goldens {
        let cfg = named(target).expect("registry target").config();
        let nl = match *circuit {
            "add8_rca" => adders::ripple_carry(8).into_netlist(),
            _ => multipliers::wallace_multiplier(8).into_netlist(),
        };
        let got = synthesize_fpga(&nl, &cfg);
        assert_eq!(&got, want, "{target}/{circuit}: report drifted");
    }
    // The golden table covers every registered profile.
    let covered: std::collections::BTreeSet<&str> = goldens.iter().map(|(t, _, _)| *t).collect();
    assert_eq!(covered.len(), registry().len());
}

fn tiny_flow(target: &str) -> FlowOutcome {
    let profile = named(target).expect("registry target");
    let mut config = FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 70),
        min_subset: 24,
        models: vec![
            MlModelId::Ml4,
            MlModelId::Ml11,
            MlModelId::Ml13,
            MlModelId::Ml18,
        ],
        ..FlowConfig::default()
    };
    config.fpga = profile.apply(&config.fpga);
    Flow::new(config).run()
}

/// Pinned per-target pareto fronts from a small flow, plus pairwise
/// distinguishability of the measured cost surfaces. The front *indices*
/// legitimately coincide for the K=6 fabrics (identical LUT structure and
/// near-proportional delay scalings on a 70-circuit library); the delay
/// bit patterns along the latency front never do.
#[test]
fn per_target_flow_fronts_are_pinned() {
    let goldens: [(&str, [Vec<usize>; 3]); 4] = [
        (
            "lut4-ice40",
            [
                vec![0, 1, 3, 10, 11, 16, 20, 21, 26, 28, 31, 39, 42, 60, 61, 62],
                vec![0, 1, 3, 7, 11, 16, 17, 22, 32, 60, 61, 62, 63, 64, 65],
                vec![0, 59, 60, 61, 62, 63, 64, 65],
            ],
        ),
        (
            "lut6-7series",
            [
                vec![0, 1, 3, 10, 16, 20, 26, 28, 61],
                vec![0, 1, 7, 11, 16, 17, 22, 32, 59, 60, 61, 62, 63, 64, 65],
                vec![0, 59, 60, 61, 62, 63, 64, 65],
            ],
        ),
        (
            "lut6-ultrascale",
            [
                vec![0, 1, 3, 10, 16, 20, 26, 28, 61],
                vec![0, 1, 7, 11, 16, 17, 22, 32, 59, 60, 61, 62, 63, 64, 65],
                vec![0, 59, 60, 61, 62, 63, 64, 65],
            ],
        ),
        (
            "alm-stratix",
            [
                vec![0, 1, 3, 10, 16, 20, 26, 28, 61],
                vec![0, 1, 7, 11, 16, 17, 22, 32, 59, 60, 61, 62, 63, 64, 65],
                vec![0, 59, 60, 61, 62, 63, 64, 65],
            ],
        ),
    ];
    let mut latency_surfaces: Vec<Vec<u64>> = Vec::new();
    for (target, [latency, power, area]) in &goldens {
        let outcome = tiny_flow(target);
        assert_eq!(
            &outcome.final_fronts[&FpgaParam::Latency],
            latency,
            "{target}: latency front"
        );
        assert_eq!(
            &outcome.final_fronts[&FpgaParam::Power],
            power,
            "{target}: power front"
        );
        assert_eq!(
            &outcome.final_fronts[&FpgaParam::Area],
            area,
            "{target}: area front"
        );
        // Every record carries the fabric it was synthesized for.
        assert!(outcome.records.iter().all(|r| &r.target == target));
        latency_surfaces.push(
            outcome.final_fronts[&FpgaParam::Latency]
                .iter()
                .map(|&i| outcome.records[i].fpga.delay_ns.to_bits())
                .collect(),
        );
    }
    // Distinct fabrics, distinct measured fronts: no two targets agree on
    // a single delay bit pattern along their latency fronts.
    for i in 0..latency_surfaces.len() {
        for j in i + 1..latency_surfaces.len() {
            assert!(
                latency_surfaces[i]
                    .iter()
                    .all(|bits| !latency_surfaces[j].contains(bits)),
                "{} and {} share latency-front cost points",
                goldens[i].0,
                goldens[j].0
            );
        }
    }
}

/// Regression for the fingerprint bug class: every cost-relevant
/// `FpgaConfig` field — including the target name — must reach the
/// characterization-cache key, so distinct registry profiles can never
/// collide (and never share disk-cache rows).
#[test]
fn distinct_profiles_produce_distinct_cache_keys() {
    let circuit = adders::ripple_carry(8);
    let asic = AsicConfig::default();
    let error = ErrorConfig::default();
    let keys: Vec<_> = registry()
        .iter()
        .map(|p| CharacterizationCache::key(&circuit, &asic, &p.config(), &error))
        .collect();
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(
                keys[i],
                keys[j],
                "{} and {} collide in the characterization cache",
                registry()[i].name,
                registry()[j].name
            );
        }
    }
    // The default profile keys identically to the default config: adopting
    // the registry did not orphan historical cache entries.
    let default_key = CharacterizationCache::key(&circuit, &asic, &FpgaConfig::default(), &error);
    let profile_key = CharacterizationCache::key(
        &circuit,
        &asic,
        &named(DEFAULT_TARGET).unwrap().config(),
        &error,
    );
    assert_eq!(default_key, profile_key);
    // But two configs differing *only* in the target name still key apart
    // (the name itself is cost-relevant: it routes records and reports).
    let renamed = FpgaConfig {
        target: "lut6-7series-rev2".to_string(),
        ..FpgaConfig::default()
    };
    assert_ne!(
        default_key,
        CharacterizationCache::key(&circuit, &asic, &renamed, &error)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A wider LUT can absorb every cover a narrower one can express, so
    /// the mapper's LUT count is monotone non-increasing in K across the
    /// supported range (3..=6; gates have up to three operands, so K=2
    /// cannot cover the netlist at all).
    #[test]
    fn lut_count_is_monotone_nonincreasing_in_k(seed in 0u64..10_000, muts in 0usize..6) {
        let base = multipliers::wallace_multiplier(6);
        let nl = mutate::mutate(
            &base,
            &mutate::MutationConfig { mutations: muts, seed, ..Default::default() },
        )
        .into_netlist();
        let mut prev = usize::MAX;
        for k in 3..=6usize {
            let mut cfg = FpgaConfig::default();
            cfg.arch.lut_inputs = k;
            let luts = synthesize_fpga(&nl, &cfg).luts;
            prop_assert!(
                luts <= prev,
                "LUT count rose from {} to {} going K={} -> K={}",
                prev, luts, k - 1, k
            );
            prev = luts;
        }
    }
}

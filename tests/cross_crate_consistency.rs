//! Integration tests spanning the substrate crates: the same circuit must
//! tell a consistent story through netlist simulation, error analysis,
//! ASIC synthesis, FPGA synthesis and Verilog export.

use approxfpgas_suite::asic::{synthesize_asic, AsicConfig};
use approxfpgas_suite::circuits::{adders, build_library, multipliers, ArithKind, LibrarySpec};
use approxfpgas_suite::error::{analyze, ErrorConfig};
use approxfpgas_suite::fpga::{synthesize_fpga, FpgaConfig};
use approxfpgas_suite::netlist::{export, opt};

#[test]
fn exact_circuits_have_zero_error_on_both_targets() {
    for circuit in [
        adders::ripple_carry(8),
        adders::carry_lookahead(8),
        multipliers::wallace_multiplier(8),
    ] {
        let err = analyze(&circuit, &ErrorConfig::default());
        assert!(err.is_exact(), "{} is not exact", circuit.name());
        // Exactness is a property of the function, not the target; both
        // cost models must still price the circuit.
        let asic = synthesize_asic(circuit.netlist(), &AsicConfig::default());
        let fpga = synthesize_fpga(circuit.netlist(), &FpgaConfig::default());
        assert!(asic.area_um2 > 0.0);
        assert!(fpga.luts > 0);
    }
}

#[test]
fn simplification_changes_cost_but_not_function() {
    let mut approx = multipliers::broken_array(8, 6, 2);
    let before_gates = approx.netlist().num_logic_gates();
    let err_before = analyze(&approx, &ErrorConfig::default());
    approx.simplify();
    let err_after = analyze(&approx, &ErrorConfig::default());
    assert!(approx.netlist().num_logic_gates() <= before_gates);
    assert_eq!(err_before.med, err_after.med, "simplify altered behaviour");
    assert_eq!(err_before.wce, err_after.wce);
}

#[test]
fn approximation_is_cheaper_everywhere_for_heavy_truncation() {
    let exact = multipliers::wallace_multiplier(8);
    let mut approx = multipliers::truncated(8, 8);
    approx.simplify();
    let asic_cfg = AsicConfig::default();
    let fpga_cfg = FpgaConfig::default();
    let (ae, aa) = (
        synthesize_asic(exact.netlist(), &asic_cfg),
        synthesize_asic(approx.netlist(), &asic_cfg),
    );
    let (fe, fa) = (
        synthesize_fpga(exact.netlist(), &fpga_cfg),
        synthesize_fpga(approx.netlist(), &fpga_cfg),
    );
    assert!(aa.area_um2 < ae.area_um2);
    assert!(aa.power_mw < ae.power_mw);
    assert!(fa.luts < fe.luts);
    assert!(fa.power_mw < fe.power_mw);
}

#[test]
fn asic_and_fpga_rank_a_library_differently() {
    // The paper's core premise: cost rankings disagree between targets.
    let lib = build_library(&LibrarySpec::new(ArithKind::Multiplier, 8, 60));
    let asic_cfg = AsicConfig::default();
    let fpga_cfg = FpgaConfig::default();
    let asic_area: Vec<f64> = lib
        .iter()
        .map(|c| synthesize_asic(c.netlist(), &asic_cfg).area_um2)
        .collect();
    let fpga_area: Vec<f64> = lib
        .iter()
        .map(|c| synthesize_fpga(c.netlist(), &fpga_cfg).luts as f64)
        .collect();
    let rho = approxfpgas_suite::ml::metrics::spearman(&asic_area, &fpga_area);
    // Correlated (both measure "size") but visibly not identical ranking.
    assert!(rho > 0.5, "targets should correlate, rho = {rho}");
    assert!(
        rho < 0.999,
        "targets rank identically (no asymmetry), rho = {rho}"
    );
}

#[test]
fn verilog_export_is_structurally_complete() {
    let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 20));
    for circuit in &lib {
        let v = export::to_verilog(circuit.netlist());
        assert!(v.contains("module "), "{}", circuit.name());
        assert!(v.trim_end().ends_with("endmodule"));
        // One output assign per primary output.
        let po_assigns = v.matches("assign po").count();
        assert_eq!(po_assigns, circuit.netlist().num_outputs());
        // Port list covers all inputs.
        assert!(v.contains(&format!("pi{}", circuit.netlist().num_inputs() - 1)));
    }
}

#[test]
fn verilog_round_trip_preserves_behaviour_and_cost_class() {
    use approxfpgas_suite::netlist::parse::from_verilog;
    let lib = build_library(&LibrarySpec::new(ArithKind::Multiplier, 8, 25));
    let fpga_cfg = FpgaConfig::default();
    for circuit in &lib {
        let text = export::to_verilog(circuit.netlist());
        let back = from_verilog(&text).expect("exported Verilog parses");
        assert_eq!(back.num_inputs(), 16);
        assert_eq!(back.num_outputs(), 16);
        // Behaviour identical on a probe set.
        for (a, b) in [(0u64, 0u64), (255, 255), (171, 77), (13, 240)] {
            let mut words = vec![0u64; 16];
            approxfpgas_suite::netlist::pack_operand(&mut words, 0, 8, 0, a);
            approxfpgas_suite::netlist::pack_operand(&mut words, 8, 8, 0, b);
            let mut s1 = approxfpgas_suite::netlist::Simulator::new(circuit.netlist());
            let mut s2 = approxfpgas_suite::netlist::Simulator::new(&back);
            assert_eq!(s1.run(&words), s2.run(&words), "{}", circuit.name());
        }
        // The re-imported netlist maps to a similar LUT count (maj gates
        // are re-expressed as AND/OR trees, so allow slack).
        let orig = synthesize_fpga(circuit.netlist(), &fpga_cfg).luts;
        let again = synthesize_fpga(&back, &fpga_cfg).luts;
        assert!(
            (again as f64) < orig as f64 * 1.6 + 4.0,
            "{}: {orig} -> {again} LUTs",
            circuit.name()
        );
    }
}

#[test]
fn mapped_lut_networks_verify_against_source() {
    use approxfpgas_suite::fpga::{luts, map};
    let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 20));
    let cfg = FpgaConfig::default();
    for circuit in &lib {
        let mapping = map::map_luts(circuit.netlist(), &cfg);
        let programmed = luts::program_luts(circuit.netlist(), &mapping);
        assert_eq!(
            luts::verify_mapping(circuit.netlist(), &programmed, 128, 0xC0DE),
            0,
            "{} mapping is not equivalent",
            circuit.name()
        );
    }
}

#[test]
fn optimizer_is_safe_across_a_whole_library() {
    let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 40));
    for circuit in &lib {
        let simplified = opt::simplify(circuit.netlist());
        simplified.validate().unwrap();
        // Spot-check behaviour on a deterministic probe.
        for (a, b) in [(0u64, 0u64), (255, 255), (170, 85), (1, 254), (99, 100)] {
            let mut words = vec![0u64; 16];
            approxfpgas_suite::netlist::pack_operand(&mut words, 0, 8, 0, a);
            approxfpgas_suite::netlist::pack_operand(&mut words, 8, 8, 0, b);
            let mut s1 = approxfpgas_suite::netlist::Simulator::new(circuit.netlist());
            let mut s2 = approxfpgas_suite::netlist::Simulator::new(&simplified);
            assert_eq!(
                s1.run(&words),
                s2.run(&words),
                "{} @ ({a},{b})",
                circuit.name()
            );
        }
    }
}

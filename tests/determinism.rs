//! Whole-stack determinism: every layer must be bit-reproducible run to
//! run, because the reproduction's claims rest on seeded experiments.

use approxfpgas_suite::asic::{synthesize_asic, AsicConfig};
use approxfpgas_suite::circuits::{build_library, ArithKind, LibrarySpec};
use approxfpgas_suite::error::{analyze, ErrorConfig};
use approxfpgas_suite::fpga::{synthesize_fpga, FpgaConfig};
use approxfpgas_suite::ml::MlModelId;

#[test]
fn library_generation_is_bit_reproducible() {
    let spec = LibrarySpec::new(ArithKind::Multiplier, 8, 50);
    let a = build_library(&spec);
    let b = build_library(&spec);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name(), y.name());
        assert_eq!(x.netlist().gates(), y.netlist().gates());
        assert_eq!(x.netlist().outputs(), y.netlist().outputs());
    }
}

#[test]
fn every_report_layer_is_deterministic() {
    let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 25));
    let asic_cfg = AsicConfig::default();
    let fpga_cfg = FpgaConfig::default();
    let err_cfg = ErrorConfig::default();
    for c in &lib {
        assert_eq!(
            synthesize_asic(c.netlist(), &asic_cfg),
            synthesize_asic(c.netlist(), &asic_cfg)
        );
        assert_eq!(
            synthesize_fpga(c.netlist(), &fpga_cfg),
            synthesize_fpga(c.netlist(), &fpga_cfg)
        );
        assert_eq!(analyze(c, &err_cfg), analyze(c, &err_cfg));
    }
}

#[test]
fn zoo_training_is_deterministic_end_to_end() {
    use approxfpgas_suite::flow::dataset::{
        characterize_library, sample_subset, train_validate_split,
    };
    use approxfpgas_suite::flow::fidelity::train_zoo;
    let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 60));
    let records = characterize_library(
        &lib,
        &AsicConfig::default(),
        &FpgaConfig::default(),
        &ErrorConfig::default(),
    );
    let subset = sample_subset(records.len(), 0.5, 24, 9);
    let (train, val) = train_validate_split(&subset, 0.8, 9);
    // Include the stochastic-by-seed models explicitly.
    let models = [
        MlModelId::Ml5,  // random forest
        MlModelId::Ml9,  // symbolic regression (GP search)
        MlModelId::Ml15, // SGD
        MlModelId::Ml17, // MLP
    ];
    let z1 = train_zoo(&records, &train, &val, &models, 0.01);
    let z2 = train_zoo(&records, &train, &val, &models, 0.01);
    for (a, b) in z1.fidelities.iter().zip(&z2.fidelities) {
        assert_eq!(a.model, b.model);
        assert_eq!(a.param, b.param);
        assert_eq!(a.fidelity, b.fidelity, "{} nondeterministic", a.model);
        assert_eq!(a.mae, b.mae);
    }
}

#[test]
fn autoax_case_study_is_deterministic() {
    use approxfpgas_suite::autoax::search::AutoAx;
    use approxfpgas_suite::autoax::{AutoAxConfig, ComponentLibrary};
    let lib = ComponentLibrary::paper_defaults(&FpgaConfig::default());
    let cfg = AutoAxConfig {
        training_samples: 25,
        restarts: 3,
        steps: 6,
        random_budget: 8,
        image_size: 16,
        seed: 11,
    };
    let a = AutoAx::new(&lib, cfg.clone()).run();
    let b = AutoAx::new(&lib, cfg).run();
    for ((oa, da), (ob, db)) in a.autoax.iter().zip(&b.autoax) {
        assert_eq!(oa, ob);
        assert_eq!(da.len(), db.len());
        for (x, y) in da.iter().zip(db) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.ssim, y.ssim);
        }
    }
}

//! The JSON run report is a contract: CI parses it, EXPERIMENTS.md quotes
//! it, and downstream tooling diffs it. These tests pin the schema (keys,
//! ordering, normalization) and the arithmetic linking stage spans to the
//! report totals.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;

use approxfpgas_suite::circuits::{ArithKind, LibrarySpec};
use approxfpgas_suite::flow::report::{normalized, run_report};
use approxfpgas_suite::flow::{Flow, FlowConfig};
use approxfpgas_suite::ml::MlModelId;
use approxfpgas_suite::obs::{Recorder, RunReport};

fn report_config(threads: usize) -> FlowConfig {
    FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 60),
        min_subset: 24,
        models: vec![
            MlModelId::Ml1,
            MlModelId::Ml4,
            MlModelId::Ml13,
            MlModelId::Ml18,
        ],
        threads,
        ..FlowConfig::default()
    }
}

fn traced_run(threads: usize) -> (approxfpgas_suite::flow::FlowOutcome, RunReport) {
    let config = report_config(threads);
    let recorder = Recorder::enabled();
    let outcome = Flow::new(config.clone()).run_traced(&recorder);
    let report = run_report(&config, &outcome, &recorder);
    (outcome, report)
}

fn traced_report(threads: usize) -> RunReport {
    traced_run(threads).1
}

/// Extract the top-level keys of a single-line JSON object, in order.
/// Good enough for the documents we emit (no nested objects before the
/// section objects, keys never contain escapes).
fn top_level_keys(json: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = json.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut key_start = None;
    let mut expecting_key = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if b == b'"' && bytes[i - 1] != b'\\' {
                in_str = false;
                if let (1, Some(start), true) = (depth, key_start.take(), expecting_key) {
                    keys.push(json[start..i].to_string());
                    expecting_key = false;
                }
            }
            continue;
        }
        match b {
            b'"' => {
                in_str = true;
                key_start = Some(i + 1);
            }
            b'{' | b'[' => {
                depth += 1;
                expecting_key = depth == 1;
            }
            b'}' | b']' => depth -= 1,
            b',' => expecting_key = depth == 1,
            _ => {}
        }
    }
    keys
}

#[test]
fn normalized_report_schema_is_golden() {
    let (outcome, raw) = traced_run(1);
    let report = normalized(&raw);
    let json = report.to_json();

    // Top-level key order is the schema contract.
    assert_eq!(
        top_level_keys(&json),
        [
            "version",
            "total_wall_s",
            "stages",
            "flow",
            "target",
            "time",
            "runtime",
            "cache",
            "quarantine",
            "coverage"
        ]
    );
    assert!(
        json.starts_with("{\"version\":1,\"total_wall_s\":0.0,\"stages\":["),
        "unexpected preamble: {}",
        &json[..60.min(json.len())]
    );

    // Normalization zeroed every timing surface.
    assert!(report.stages.iter().all(|s| s.wall_s == 0.0));
    assert_eq!(report.total_wall_s(), 0.0);
    assert!(json.contains("\"steals\":0"));

    // The flow stages this configuration must have traced, in the
    // name-sorted order the recorder guarantees.
    let flow_stages: Vec<&str> = report
        .stages
        .iter()
        .map(|s| s.name.as_str())
        .filter(|n| n.starts_with("flow/"))
        .collect();
    assert_eq!(
        flow_stages,
        [
            "flow/build_library",
            "flow/characterize",
            "flow/fronts",
            "flow/select_estimate",
            "flow/subset_split",
            "flow/train_zoo"
        ]
    );
    // Every competing model was trained under its own stage; estimate
    // stages exist exactly for the models that won a selection slot.
    for id in report_config(1).models {
        assert!(
            report
                .stages
                .iter()
                .any(|s| s.name == format!("train/{}", id.label())),
            "missing train stage for {}",
            id.label()
        );
    }
    let selected: std::collections::BTreeSet<_> = outcome
        .selected_models
        .values()
        .flatten()
        .copied()
        .collect();
    assert!(!selected.is_empty());
    for id in report_config(1).models {
        assert_eq!(
            report
                .stages
                .iter()
                .any(|s| s.name == format!("estimate/{}", id.label())),
            selected.contains(&id),
            "estimate stage presence disagrees with selection for {}",
            id.label()
        );
    }
}

#[test]
fn normalized_report_is_byte_identical_across_thread_counts() {
    use approxfpgas_suite::obs::Value;
    // `flow.threads` honestly reports the configured thread count, so
    // align that one (intentionally different) field; everything else
    // must agree byte-for-byte after normalization.
    let mut one = normalized(&traced_report(1));
    let mut eight = normalized(&traced_report(8));
    one.set_field("flow", "threads", Value::UInt(0));
    eight.set_field("flow", "threads", Value::UInt(0));
    assert_eq!(
        one.to_json(),
        eight.to_json(),
        "normalized reports diverge across threads"
    );
    // And across repeated runs of the same configuration.
    let again = normalized(&traced_report(1)).to_json();
    assert_eq!(normalized(&traced_report(1)).to_json(), again);
}

#[test]
fn report_fields_mirror_the_outcome() {
    let config = report_config(1);
    let recorder = Recorder::enabled();
    let outcome = Flow::new(config.clone()).run_traced(&recorder);
    let json = run_report(&config, &outcome, &recorder).to_json();
    assert!(json.contains(&format!("\"library_size\":{}", outcome.records.len())));
    assert!(json.contains(&format!("\"subset_size\":{}", outcome.subset.len())));
    assert!(json.contains(&format!("\"flow_count\":{}", outcome.time.flow_count)));
    assert!(json.contains("\"estimates_quarantined\":0"));
    // An untraced recorder still yields a valid (stage-less) document.
    let empty = run_report(&config, &outcome, &Recorder::disabled()).to_json();
    assert!(empty.contains("\"stages\":[]"));
    assert_eq!(top_level_keys(&empty), top_level_keys(&json));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The report's `total_wall_s` is exactly the sum of its stage rows,
    /// and each stage row is exactly the aggregate of what was recorded
    /// against it — no time invented, none lost.
    #[test]
    fn report_totals_equal_sum_of_stage_spans(
        events in prop::collection::vec(
            (0usize..5, 0u64..10_000_000u64, 0u64..1000u64),
            0..40,
        )
    ) {
        const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let rec = Recorder::enabled();
        let mut expected: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for &(name_ix, nanos, items) in &events {
            let name = NAMES[name_ix];
            rec.record(name, Duration::from_nanos(nanos), items);
            let e = expected.entry(name).or_default();
            e.0 += nanos;
            e.1 += 1;
            e.2 += items;
        }
        let report = RunReport::from_recorder(&rec);
        prop_assert_eq!(report.stages.len(), expected.len());
        let mut expected_total = 0.0f64;
        for (row, (&name, &(ns, calls, items))) in
            report.stages.iter().zip(expected.iter())
        {
            prop_assert_eq!(row.name.as_str(), name);
            prop_assert_eq!(row.wall_s.to_bits(), (ns as f64 / 1e9).to_bits());
            prop_assert_eq!(row.calls, calls);
            prop_assert_eq!(row.items, items);
            expected_total += ns as f64 / 1e9;
        }
        // Value equality, not bit equality: the empty sum is allowed to
        // be -0.0.
        prop_assert_eq!(report.total_wall_s(), expected_total);
        // Normalization never changes counts, only timings.
        let norm = report.normalized();
        prop_assert_eq!(norm.total_wall_s(), 0.0);
        for (row, (&name, &(_, calls, items))) in
            norm.stages.iter().zip(expected.iter())
        {
            prop_assert_eq!(row.name.as_str(), name);
            prop_assert_eq!(row.calls, calls);
            prop_assert_eq!(row.items, items);
        }
    }
}

//! End-to-end invariants of the ApproxFPGAs flow across the crate stack.

use approxfpgas_suite::circuits::{ArithKind, LibrarySpec};
use approxfpgas_suite::flow::record::FpgaParam;
use approxfpgas_suite::flow::{Flow, FlowConfig};
use approxfpgas_suite::ml::MlModelId;

fn fast_models() -> Vec<MlModelId> {
    vec![
        MlModelId::Ml1,
        MlModelId::Ml2,
        MlModelId::Ml3,
        MlModelId::Ml11,
        MlModelId::Ml13,
        MlModelId::Ml14,
        MlModelId::Ml18,
    ]
}

fn run(kind: ArithKind, width: usize, size: usize) -> approxfpgas_suite::flow::FlowOutcome {
    Flow::new(FlowConfig {
        library: LibrarySpec::new(kind, width, size),
        models: fast_models(),
        min_subset: 24,
        ..FlowConfig::default()
    })
    .run()
}

#[test]
fn flow_fronts_are_truly_nondominated_and_synthesized() {
    let outcome = run(ArithKind::Adder, 8, 90);
    for (&param, front) in &outcome.final_fronts {
        let pts = outcome.points(param);
        for &a in front {
            assert!(
                outcome.synthesized.contains(&a),
                "front member not paid for"
            );
            for &b in front {
                if a != b {
                    assert!(
                        !approxfpgas_suite::flow::pareto::dominates(pts[a], pts[b]),
                        "{param:?}: front member dominated"
                    );
                }
            }
        }
    }
}

#[test]
fn found_fronts_are_subsets_of_candidate_plus_subset() {
    let outcome = run(ArithKind::Adder, 8, 90);
    let mut allowed: std::collections::BTreeSet<usize> = outcome.subset.iter().copied().collect();
    for list in outcome.candidates.values() {
        allowed.extend(list.iter().copied());
    }
    assert_eq!(
        allowed,
        outcome.synthesized.iter().copied().collect(),
        "synthesized set must be exactly subset + candidates"
    );
}

#[test]
fn coverage_against_ground_truth_is_computed_correctly() {
    let outcome = run(ArithKind::Adder, 8, 90);
    for (&param, &cov) in &outcome.coverage {
        let truth = &outcome.true_fronts[&param];
        let found = &outcome.final_fronts[&param];
        let pts = outcome.points(param);
        let recomputed = approxfpgas_suite::flow::pareto::coverage(truth, found, &pts);
        assert_eq!(cov, recomputed);
    }
}

#[test]
fn multiplier_flow_reduces_synthesis_meaningfully() {
    let outcome = run(ArithKind::Multiplier, 8, 200);
    let reduction = outcome.time.synth_reduction().expect("flow synthesized");
    assert!(reduction > 1.3, "only {reduction:.2}x reduction");
    assert!(outcome.mean_coverage() > 0.5);
    // Exhaustive time must equal the sum over all records.
    let total: f64 = outcome.records.iter().map(|r| r.fpga.synth_time_s).sum();
    assert!((outcome.time.exhaustive_s - total).abs() < 1e-6);
}

#[test]
fn error_metrics_anchor_the_fronts_at_zero() {
    // Every library contains exact circuits, so every true front must
    // include a MED=0 point.
    let outcome = run(ArithKind::Adder, 8, 90);
    for (&param, truth) in &outcome.true_fronts {
        let has_exact = truth.iter().any(|&i| outcome.records[i].error.med == 0.0);
        assert!(has_exact, "{param:?} front lost its exact anchor");
    }
}

#[test]
fn records_expose_consistent_views() {
    let outcome = run(ArithKind::Adder, 8, 60);
    for r in &outcome.records {
        assert_eq!(r.fpga_param(FpgaParam::Area), r.fpga.luts as f64);
        assert!(r.stats.gates > 0 || r.error.med > 0.0);
        assert!(r.fpga.synth_time_s > 0.0);
        assert!(r.asic.delay_ns >= 0.0);
    }
}

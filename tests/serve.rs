//! End-to-end tests of the `afp serve` characterization service: the
//! coalescing contract (N identical concurrent requests, one
//! characterization, byte-identical bodies), bounded-queue backpressure
//! (429, never a panic or a hang), graceful drain (an accepted
//! request is never dropped by shutdown), and the persisted-zoo
//! estimate fast path over a kept-alive connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::Duration;

use afp_circuits::ArithKind;
use afp_ml::MlModelId;
use afp_serve::{serve, ServeConfig, ServerHandle};

fn start(threads: usize, queue_depth: usize) -> ServerHandle {
    serve(ServeConfig {
        threads,
        queue_depth,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// One blocking request over a fresh connection: returns the status
/// code and the body (everything after the blank line).
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    read_response(&mut stream)
}

/// One response off a kept-alive stream, delimited by `Content-Length`
/// instead of EOF: (status, headers, body).
fn read_keepalive_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<String>, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end().to_string();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.strip_prefix("Content-Length: ") {
            content_length = v.parse().expect("content length");
        }
        headers.push(line);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf-8"))
}

fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn concurrent_identical_requests_characterize_once_with_identical_bodies() {
    const N: usize = 12;
    let server = start(4, 64);
    let addr = server.addr().unwrap();
    let barrier = Barrier::new(N);

    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    let (status, body) =
                        get(addr, "/characterize?spec=mul8:wallace&target=lut4-ice40");
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical bodies, equal to the direct library-level report.
    let circuit = afp_circuits::from_spec_ref("mul8:wallace").unwrap();
    let profile = afp_fpga::target::named("lut4-ice40").unwrap();
    let config = approxfpgas::RequestConfig::for_target_config(
        profile.apply(&afp_fpga::FpgaConfig::default()),
    );
    let record = approxfpgas::characterize_request(
        &circuit,
        &config,
        &afp_runtime::Runtime::serial(),
        None,
        &mut approxfpgas::record::CharacterizeScratch::default(),
    );
    let want = format!("{}\n", approxfpgas::request_report(&record).to_json());
    for body in &bodies {
        assert_eq!(body, &want);
    }

    // The counters prove coalescing: exactly one characterization ran,
    // and every non-leader either joined the in-flight computation or
    // hit the cache it populated — no third path.
    let snap = server.shutdown();
    assert_eq!(snap.asic_synths, 1, "identical requests recharacterized");
    assert_eq!(snap.fpga_synths, 1);
    assert_eq!(snap.error_analyses, 1);
    assert_eq!(snap.cache_misses, 1);
    assert_eq!(snap.requests_served, N as u64);
    assert_eq!(
        snap.requests_coalesced + snap.cache_hits,
        N as u64 - 1,
        "every non-leader must be a coalesced joiner or a cache hit"
    );
}

#[test]
fn full_queue_answers_429_and_keeps_serving() {
    // One worker, queue depth one: with the worker parked on a
    // connection that never sends, a third connection must overflow the
    // queue — the acceptor answers 429 inline instead of queueing
    // without bound.
    let server = start(1, 1);
    let addr = server.addr().unwrap();

    let mut held: Vec<TcpStream> = (0..3)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            // Give the acceptor time to route this connection before the
            // next one arrives, so the overflow lands deterministically
            // on the last.
            std::thread::sleep(Duration::from_millis(100));
            s
        })
        .collect();

    let mut statuses: Vec<u16> = held
        .iter_mut()
        .map(|stream| {
            // The 429'd connection is already closed server-side; the
            // write may fail, and that is fine — the response is queued.
            let _ =
                stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
            let (status, _) = read_response(stream);
            status
        })
        .collect();
    drop(held);
    statuses.sort_unstable();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 429),
        "unexpected statuses {statuses:?}"
    );
    assert!(statuses.contains(&200), "{statuses:?}");
    assert!(statuses.contains(&429), "{statuses:?}");

    // The server survived the overflow and still answers.
    let (status, body) = get(addr, "/characterize?spec=add8:rca");
    assert_eq!(status, 200, "{body}");
    let snap = server.shutdown();
    assert!(snap.queue_rejections >= 1);
}

#[test]
fn shutdown_drains_every_accepted_request() {
    // One worker so the backlog is deterministic: park it on a
    // connection that has not sent yet, queue three more, trigger
    // shutdown, and only then let the requests flow. All four were
    // accepted, so all four must be answered in full even though
    // shutdown fired before any of them was served.
    let server = start(1, 8);
    let addr = server.addr().unwrap();

    let specs = ["add8:rca", "add8:cla", "mul8:array", "mul8:trunc:2"];
    let mut held: Vec<TcpStream> = specs
        .iter()
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            std::thread::sleep(Duration::from_millis(100));
            s
        })
        .collect();

    server.trigger_shutdown();
    std::thread::sleep(Duration::from_millis(100));

    for (stream, spec) in held.iter_mut().zip(specs) {
        stream
            .write_all(
                format!(
                    "GET /characterize?spec={spec} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .expect("send on accepted connection");
    }
    for (stream, spec) in held.iter_mut().zip(specs) {
        let (status, body) = read_response(stream);
        assert_eq!(status, 200, "{spec}: accepted request dropped: {body}");
        assert!(
            body.ends_with("}\n") && body.contains("\"fpga\":{"),
            "{spec}: truncated body {body}"
        );
    }

    // join returns only after the drain; the listener must be gone.
    let snap = server.join();
    assert_eq!(snap.requests_served, specs.len() as u64);
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(300))
        .map(|mut s| {
            // Some kernels complete the handshake from the backlog even
            // after close; an immediate EOF counts as "gone" too.
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            s.read_to_string(&mut buf)
                .map(|_| buf.is_empty())
                .unwrap_or(true)
        })
        .unwrap_or(true);
    assert!(refused, "listener still answering after join");
}

/// Train a tiny adder zoo, persist it as `.afpm`, and return the path.
fn save_small_zoo(name: &str) -> std::path::PathBuf {
    let lib = afp_circuits::build_library(&afp_circuits::LibrarySpec::new(ArithKind::Adder, 8, 40));
    let records = approxfpgas::dataset::characterize_library(
        &lib,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    );
    let subset = approxfpgas::dataset::sample_subset(records.len(), 0.5, 20, 7);
    let (train, val) = approxfpgas::dataset::train_validate_split(&subset, 0.8, 7);
    let zoo = approxfpgas::fidelity::train_zoo(
        &records,
        &train,
        &val,
        &[MlModelId::Ml1, MlModelId::Ml14],
        0.01,
    );
    let path = std::env::temp_dir().join(format!("afp-it-{name}-{}.afpm", std::process::id()));
    approxfpgas::save_zoo(
        &path,
        &zoo,
        afp_fpga::target::DEFAULT_TARGET,
        &[(ArithKind::Adder, 8)],
    )
    .expect("zoo saves");
    path
}

#[test]
fn estimate_fast_path_over_keepalive_answers_without_synthesis() {
    let path = save_small_zoo("estimate");
    let server = serve(ServeConfig {
        threads: 2,
        models: vec![path.clone()],
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr().unwrap();

    // One kept-alive connection, a pipelined burst of estimate traffic:
    // three distinct specs, then the first spec twice more (cache hits),
    // then /stats — all written before the first response is read.
    let specs = ["add8:rca", "add8:cla", "add8:csel", "add8:rca", "add8:rca"];
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut raw = String::new();
    for spec in specs {
        raw.push_str(&format!(
            "GET /estimate?spec={spec} HTTP/1.1\r\nHost: t\r\n\r\n"
        ));
    }
    raw.push_str("GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    writer.write_all(raw.as_bytes()).expect("send pipeline");

    let mut first_body = None;
    for (i, spec) in specs.iter().enumerate() {
        let (status, headers, body) = read_keepalive_response(&mut reader);
        assert_eq!(status, 200, "{spec}: {body}");
        assert!(
            headers.iter().any(|h| h == "X-Afp-Estimate: model"),
            "{spec}: {headers:?}"
        );
        assert!(body.contains("\"latency_ns\":"), "{spec}: {body}");
        if i == 0 {
            first_body = Some(body);
        } else if *spec == specs[0] {
            assert_eq!(
                Some(&body),
                first_body.as_ref(),
                "repeat estimate must be byte-identical"
            );
        }
    }
    let (status, _, stats) = read_keepalive_response(&mut reader);
    assert_eq!(status, 200);
    assert!(stats.contains("\"models_loaded\":1"), "{stats}");

    let snap = server.shutdown();
    assert_eq!(snap.estimates_served, 5);
    assert_eq!(snap.model_cache_hits, 2);
    assert_eq!(snap.keepalive_reuses, 5, "six requests, one connection");
    assert_eq!(
        snap.asic_synths, 0,
        "the estimate path must never move the synthesis counters"
    );
    assert_eq!(snap.fpga_synths, 0);

    // A second server loading the same container serves byte-identical
    // estimates: persistence is exact, not approximate.
    let server2 = serve(ServeConfig {
        threads: 1,
        models: vec![path.clone()],
        ..ServeConfig::default()
    })
    .expect("server restarts");
    let addr2 = server2.addr().unwrap();
    let (status, body) = get(addr2, "/estimate?spec=add8:rca");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        Some(&body),
        first_body.as_ref(),
        "estimates must survive a save/load/restart round trip byte-for-byte"
    );
    let snap2 = server2.shutdown();
    assert_eq!(snap2.asic_synths, 0);
    let _ = std::fs::remove_file(&path);
}

//! Numeric-robustness harness: the flow must survive worst-case
//! estimator output (NaN, ±inf, huge magnitudes) without panicking,
//! without corrupting its rankings, and bit-identically across thread
//! counts.
//!
//! Injection is done by [`afp_ml::chaos::ChaosRegressor`] wrappers around
//! the trained models — a pure function of feature row and seed, so the
//! corruption pattern is independent of scheduling.

use approxfpgas_suite::circuits::{ArithKind, LibrarySpec};
use approxfpgas_suite::flow::record::FpgaParam;
use approxfpgas_suite::flow::{ChaosSpec, Flow, FlowConfig, FlowOutcome};
use approxfpgas_suite::ml::chaos::{ChaosConfig, ChaosKind};
use approxfpgas_suite::ml::MlModelId;

fn fast_models() -> Vec<MlModelId> {
    vec![
        MlModelId::Ml1,
        MlModelId::Ml2,
        MlModelId::Ml3,
        MlModelId::Ml4,
        MlModelId::Ml11,
        MlModelId::Ml13,
        MlModelId::Ml14,
        MlModelId::Ml18,
    ]
}

fn chaotic_config(rate: f64, threads: usize) -> FlowConfig {
    FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 100),
        min_subset: 24,
        models: fast_models(),
        threads,
        chaos: Some(ChaosSpec::mixed(rate, 0xBAD_F00D)),
        ..FlowConfig::default()
    }
}

fn assert_sane(outcome: &FlowOutcome) {
    assert!(
        outcome.mean_coverage().is_finite(),
        "mean coverage went non-finite"
    );
    for (&param, &c) in &outcome.coverage {
        assert!(
            (0.0..=1.0).contains(&c),
            "{param:?}: coverage {c} out of [0,1]"
        );
        assert!(c.is_finite(), "{param:?}: non-finite coverage");
    }
    // Front members were really synthesized, and no front index escapes
    // the library.
    for front in outcome.final_fronts.values() {
        for i in front {
            assert!(outcome.synthesized.contains(i));
            assert!(*i < outcome.records.len());
        }
    }
}

#[test]
fn flow_completes_under_mixed_injection() {
    let outcome = Flow::new(chaotic_config(0.2, 1)).run();
    assert_sane(&outcome);
    // Injection at 20% over a 100-circuit library must actually have
    // quarantined something.
    assert!(
        outcome.runtime.estimates_quarantined > 0,
        "no estimates quarantined under 20% injection"
    );
    // Selection still fills its slots from the surviving models.
    for (&param, models) in &outcome.selected_models {
        assert!(!models.is_empty(), "{param:?}: no models selected");
    }
}

#[test]
fn injection_outcomes_are_bit_identical_across_thread_counts() {
    let one = Flow::new(chaotic_config(0.25, 1)).run();
    let eight = Flow::new(chaotic_config(0.25, 8)).run();
    assert_eq!(one.subset, eight.subset);
    assert_eq!(one.selected_models, eight.selected_models);
    assert_eq!(one.dropped_models, eight.dropped_models);
    assert_eq!(one.candidates, eight.candidates);
    assert_eq!(one.synthesized, eight.synthesized);
    assert_eq!(one.final_fronts, eight.final_fronts);
    assert_eq!(one.true_fronts, eight.true_fronts);
    for (&param, c1) in &one.coverage {
        assert_eq!(
            c1.to_bits(),
            eight.coverage[&param].to_bits(),
            "{param:?}: coverage differs across thread counts"
        );
    }
    assert_eq!(one.time, eight.time);
    assert_eq!(
        one.runtime.estimates_quarantined,
        eight.runtime.estimates_quarantined
    );
    assert!(one.runtime.estimates_quarantined > 0);
}

#[test]
fn heavy_injection_still_yields_valid_coverage() {
    // Half of every model's estimates are NaN/inf/huge; the flow must
    // still terminate with rankable output.
    let outcome = Flow::new(chaotic_config(0.5, 0)).run();
    assert_sane(&outcome);
    assert!(outcome.runtime.estimates_quarantined > 0);
}

#[test]
fn fully_nan_model_is_dropped_and_replaced() {
    // Golden quarantine path: Ml4 is the top fidelity model for Area in
    // this configuration (see tests/golden_flow.rs). Make its Area
    // estimates all-NaN: it must be dropped from the Area selection, the
    // next-best model promoted, and every parameter still gets its full
    // top-k quota.
    let config = FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 100),
        min_subset: 24,
        models: fast_models(),
        chaos: Some(ChaosSpec {
            config: ChaosConfig::always(ChaosKind::Nan, 77),
            only: Some((MlModelId::Ml4, FpgaParam::Area)),
        }),
        ..FlowConfig::default()
    };
    let outcome = Flow::new(config).run();
    assert_sane(&outcome);

    // The poisoned model is dropped for Area only.
    assert_eq!(
        outcome.dropped_models[&FpgaParam::Area],
        vec![MlModelId::Ml4]
    );
    assert!(!outcome.selected_models[&FpgaParam::Area].contains(&MlModelId::Ml4));
    // Every estimate of the poisoned (model, param) pair was quarantined.
    assert_eq!(
        outcome.runtime.estimates_quarantined,
        outcome.records.len() as u64
    );
    // The quota is still met by promotion: 3 models per parameter.
    for (&param, models) in &outcome.selected_models {
        assert_eq!(models.len(), 3, "{param:?}: quota not met: {models:?}");
    }
    // Other parameters keep Ml4 (only its Area stream was poisoned) and
    // drop nothing.
    assert!(outcome.selected_models[&FpgaParam::Power].contains(&MlModelId::Ml4));
    assert!(outcome.dropped_models[&FpgaParam::Power].is_empty());
    assert!(outcome.dropped_models[&FpgaParam::Latency].is_empty());
}

#[test]
fn mean_coverage_of_an_empty_coverage_map_is_zero_not_nan() {
    // Regression: an empty coverage map used to divide 0.0 by 0, turning
    // the report's headline number into NaN. The mean of nothing is
    // defined as 0.0 — "nothing covered", not "undefined".
    let mut outcome = Flow::new(chaotic_config(0.2, 1)).run();
    outcome.coverage.clear();
    let mean = outcome.mean_coverage();
    assert!(mean.is_finite(), "empty coverage produced {mean}");
    assert_eq!(mean.to_bits(), 0.0f64.to_bits());
}

#[test]
fn always_inf_injection_never_panics_rankings() {
    // Everything +inf: every model is fully non-finite, every pool runs
    // dry, and the flow must still complete with empty selections rather
    // than panic.
    let config = FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 60),
        min_subset: 24,
        models: fast_models(),
        chaos: Some(ChaosSpec {
            config: ChaosConfig::always(ChaosKind::PosInf, 3),
            only: None,
        }),
        ..FlowConfig::default()
    };
    let outcome = Flow::new(config).run();
    for (&param, models) in &outcome.selected_models {
        assert!(models.is_empty(), "{param:?}: {models:?} survived +inf");
        assert!(outcome.candidates[&param].is_empty());
    }
    // Every tried model was dropped; the subset alone is synthesized.
    assert!(outcome.dropped_models.values().all(|v| !v.is_empty()));
    assert_eq!(
        outcome.synthesized.iter().copied().collect::<Vec<_>>(),
        outcome.subset
    );
    assert_sane(&outcome);
}

//! Thread-count invariance and cache behaviour of the parallel flow.
//!
//! The work-stealing runtime distributes items dynamically, so *which
//! thread* computes an item is nondeterministic — but every partition
//! boundary is a pure function of the input size and all merges happen in
//! input order, so the flow's observable output must be bit-identical for
//! any thread count. These tests pin that guarantee at the whole-flow
//! level, plus the characterization cache's "second run synthesizes
//! nothing" promise.

use approxfpgas_suite::circuits::{ArithKind, LibrarySpec};
use approxfpgas_suite::flow::{Flow, FlowConfig, FlowOutcome};
use approxfpgas_suite::ml::MlModelId;

fn tiny_config(kind: ArithKind, threads: usize) -> FlowConfig {
    FlowConfig {
        library: LibrarySpec::new(kind, 8, 60),
        min_subset: 24,
        threads,
        // A competitive subset of the zoo keeps the test quick while still
        // exercising deterministic and seeded-stochastic models.
        models: vec![
            MlModelId::Ml1,
            MlModelId::Ml4,
            MlModelId::Ml5,
            MlModelId::Ml13,
            MlModelId::Ml17,
        ],
        ..FlowConfig::default()
    }
}

fn assert_outcomes_identical(serial: &FlowOutcome, parallel: &FlowOutcome) {
    assert_eq!(serial.subset, parallel.subset);
    assert_eq!(serial.train, parallel.train);
    assert_eq!(serial.validate, parallel.validate);
    assert_eq!(serial.records.len(), parallel.records.len());
    for (a, b) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.asic, b.asic, "{}: ASIC report differs", a.name);
        assert_eq!(a.fpga, b.fpga, "{}: FPGA report differs", a.name);
        assert_eq!(a.error, b.error, "{}: error metrics differ", a.name);
    }
    for (a, b) in serial.zoo.fidelities.iter().zip(&parallel.zoo.fidelities) {
        assert_eq!((a.model, a.param), (b.model, b.param));
        assert_eq!(a.fidelity, b.fidelity, "{} fidelity differs", a.model);
        assert_eq!(a.mae, b.mae);
        assert_eq!(a.r2, b.r2);
    }
    assert_eq!(serial.selected_models, parallel.selected_models);
    assert_eq!(serial.candidates, parallel.candidates);
    assert_eq!(serial.synthesized, parallel.synthesized);
    assert_eq!(serial.final_fronts, parallel.final_fronts);
    assert_eq!(serial.true_fronts, parallel.true_fronts);
    assert_eq!(serial.coverage, parallel.coverage);
    assert_eq!(serial.time, parallel.time);
}

#[test]
fn adder_flow_is_identical_for_one_and_eight_threads() {
    let serial = Flow::new(tiny_config(ArithKind::Adder, 1)).run();
    let parallel = Flow::new(tiny_config(ArithKind::Adder, 8)).run();
    assert_outcomes_identical(&serial, &parallel);
    // Task accounting is thread-invariant too (steals are not).
    assert_eq!(
        serial.runtime.tasks_executed,
        parallel.runtime.tasks_executed
    );
}

#[test]
fn multiplier_flow_is_identical_for_one_and_eight_threads() {
    let serial = Flow::new(tiny_config(ArithKind::Multiplier, 1)).run();
    let parallel = Flow::new(tiny_config(ArithKind::Multiplier, 8)).run();
    assert_outcomes_identical(&serial, &parallel);
    assert_eq!(
        serial.runtime.tasks_executed,
        parallel.runtime.tasks_executed
    );
}

#[test]
fn traced_flow_keeps_the_thread_invariance_guarantee() {
    // Same bit-identity contract, but with a live recorder attached to
    // both runs: spans read clocks and take a mutex, yet must never leak
    // into what the flow computes.
    use approxfpgas_suite::obs::Recorder;
    let rec_serial = Recorder::enabled();
    let rec_parallel = Recorder::enabled();
    let serial = Flow::new(tiny_config(ArithKind::Adder, 1)).run_traced(&rec_serial);
    let parallel = Flow::new(tiny_config(ArithKind::Adder, 8)).run_traced(&rec_parallel);
    assert_outcomes_identical(&serial, &parallel);
    // And tracing vs no tracing is equally invisible.
    let untraced = Flow::new(tiny_config(ArithKind::Adder, 8)).run();
    assert_outcomes_identical(&untraced, &parallel);
    if rec_serial.is_enabled() {
        // Call/item tallies are scheduling-independent; only wall time
        // (and the runtime's steal counter) may differ across threads.
        let strip = |rec: &Recorder| -> Vec<(String, u64, u64)> {
            rec.stages()
                .into_iter()
                .map(|(name, s)| (name, s.calls, s.items))
                .collect()
        };
        assert_eq!(strip(&rec_serial), strip(&rec_parallel));
    }
}

#[test]
fn second_run_on_one_flow_synthesizes_nothing() {
    let flow = Flow::new(tiny_config(ArithKind::Adder, 4));
    let cold = flow.run();
    assert!(cold.runtime.asic_synths > 0);
    assert!(cold.runtime.fpga_synths > 0);
    assert_eq!(cold.runtime.cache_hits, 0);
    assert_eq!(cold.runtime.cache_misses as usize, cold.records.len());

    // Counters are per-run (fresh Runtime), so the warm run's synthesis
    // counts stand alone: the cache outlives the run and every
    // characterization must hit.
    let warm = flow.run();
    assert_eq!(warm.runtime.asic_synths, 0, "warm run re-synthesized ASIC");
    assert_eq!(warm.runtime.fpga_synths, 0, "warm run re-synthesized FPGA");
    assert_eq!(warm.runtime.error_analyses, 0);
    assert_eq!(warm.runtime.cache_hits as usize, warm.records.len());
    assert_outcomes_identical(&cold, &warm);
}

#[test]
fn disabling_the_cache_disables_memoization() {
    let flow = Flow::new(FlowConfig {
        use_cache: false,
        ..tiny_config(ArithKind::Adder, 2)
    });
    let first = flow.run();
    let second = flow.run();
    assert_eq!(first.runtime.cache_hits, 0);
    assert_eq!(first.runtime.cache_misses, 0);
    assert_eq!(second.runtime.asic_synths, first.runtime.asic_synths);
    assert!(second.runtime.asic_synths > 0);
}

#[test]
fn disk_cache_warms_a_fresh_process_worth_of_state() {
    let dir = std::env::temp_dir().join(format!("afp-disk-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = FlowConfig {
        cache_dir: Some(dir.clone()),
        ..tiny_config(ArithKind::Adder, 4)
    };
    let cold = Flow::new(config.clone()).run();
    assert!(cold.runtime.fpga_synths > 0);

    // A brand-new Flow (fresh memory tier) reloads the CSV tier.
    let warm = Flow::new(config).run();
    assert_eq!(warm.runtime.asic_synths, 0);
    assert_eq!(warm.runtime.fpga_synths, 0);
    assert_eq!(warm.runtime.cache_hits as usize, warm.records.len());
    assert_outcomes_identical(&cold, &warm);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property suite for the binary circuit store and the Bristol codec.
//!
//! Random netlists over every gate kind (including constants, `Mux` and
//! `Maj`) are pushed through both serializers: the store's varint netlist
//! codec must round-trip *exactly* (`PartialEq`, name included), and the
//! Bristol lowering must round-trip *behaviourally* (exhaustive input
//! sweep — the lowering rewrites `Or`/`Mux`/`Maj` into the XOR/AND/INV
//! vocabulary, so gate-identity is not preserved, behaviour is). A third
//! group pins the torn-file story: corrupting or truncating a store file
//! loses only the damaged tail, never earlier records, and never panics.

use approxfpgas_suite::netlist::bristol::{from_bristol, to_bristol};
use approxfpgas_suite::netlist::{NetId, Netlist};
use approxfpgas_suite::runtime::Key128;
use approxfpgas_suite::store::bytes::ByteReader;
use approxfpgas_suite::store::{decode_netlist, encode_netlist, FrameStream, StoreWriter};
use proptest::prelude::*;

/// Build a random but well-formed netlist from flat generator choices
/// (same scheme as the sim-kernel suite): every gate kind, operands drawn
/// from all earlier nets, outputs from the tail.
fn build_netlist(n_inputs: usize, gates: &[(u8, usize, usize, usize)]) -> Netlist {
    let mut n = Netlist::new("random");
    let mut nets: Vec<NetId> = (0..n_inputs).map(|_| n.add_input()).collect();
    for &(kind, a, b, c) in gates {
        let pick = |raw: usize, nets: &[NetId]| nets[raw % nets.len()];
        let (x, y, z) = (pick(a, &nets), pick(b, &nets), pick(c, &nets));
        let id = match kind % 12 {
            0 => n.constant(false),
            1 => n.constant(true),
            2 => n.buf(x),
            3 => n.not(x),
            4 => n.and(x, y),
            5 => n.or(x, y),
            6 => n.xor(x, y),
            7 => n.nand(x, y),
            8 => n.nor(x, y),
            9 => n.xnor(x, y),
            10 => n.mux(x, y, z),
            _ => n.maj(x, y, z),
        };
        nets.push(id);
    }
    let outs: Vec<NetId> = nets.iter().rev().take(4).copied().collect();
    n.set_outputs(outs);
    n
}

fn equivalent(a: &Netlist, b: &Netlist) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    let n = a.num_inputs();
    assert!(n <= 16, "exhaustive sweep needs small input counts");
    (0..(1u32 << n)).all(|v| {
        let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
        a.eval_bits(&bits) == b.eval_bits(&bits)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Store codec: `Netlist → bytes → Netlist` is the identity, name and
    /// gate list included.
    #[test]
    fn netlist_store_codec_round_trips_exactly(
        n_inputs in 1usize..6,
        gates in prop::collection::vec(
            (0u8..12, 0usize..1 << 30, 0usize..1 << 30, 0usize..1 << 30),
            1..60,
        ),
    ) {
        let nl = build_netlist(n_inputs, &gates);
        let mut bytes = Vec::new();
        encode_netlist(&nl, &mut bytes);
        let mut r = ByteReader::new(&bytes);
        let back = decode_netlist(&mut r).expect("well-formed netlist decodes");
        prop_assert!(r.is_empty(), "decoder must consume the whole payload");
        prop_assert_eq!(back, nl);
    }

    /// Bristol lowering: `Netlist → text → Netlist` computes the same
    /// function on every input assignment.
    #[test]
    fn bristol_round_trip_is_behaviourally_equivalent(
        n_inputs in 1usize..6,
        gates in prop::collection::vec(
            (0u8..12, 0usize..1 << 30, 0usize..1 << 30, 0usize..1 << 30),
            1..40,
        ),
    ) {
        let nl = build_netlist(n_inputs, &gates);
        let back = from_bristol(&to_bristol(&nl)).expect("exported text parses");
        prop_assert!(equivalent(&nl, &back));
    }

    /// A corrupted byte anywhere in a netlist payload either still decodes
    /// to a *valid* netlist or is rejected — never a panic, never an
    /// inconsistent structure.
    #[test]
    fn corrupted_payloads_never_panic(
        n_inputs in 1usize..5,
        gates in prop::collection::vec(
            (0u8..12, 0usize..1 << 30, 0usize..1 << 30, 0usize..1 << 30),
            1..30,
        ),
        victim in 0usize..1 << 30,
        flip in 1u8..=255,
    ) {
        let nl = build_netlist(n_inputs, &gates);
        let mut bytes = Vec::new();
        encode_netlist(&nl, &mut bytes);
        let idx = victim % bytes.len();
        bytes[idx] ^= flip;
        let mut r = ByteReader::new(&bytes);
        if let Some(decoded) = decode_netlist(&mut r) {
            decoded.validate().expect("decoder only returns valid netlists");
        }
    }
}

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("afp-suite-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("circuits.afps")
}

/// Write `count` distinct random netlists as one sealed store file.
fn write_corpus(path: &std::path::Path, count: usize) -> Vec<Netlist> {
    let mut writer = StoreWriter::create(path, 7).unwrap();
    let mut corpus = Vec::new();
    for i in 0..count {
        let gates: Vec<(u8, usize, usize, usize)> = (0..20)
            .map(|g: usize| (((g + i) % 12) as u8, i * 31 + g, i * 17 + g, i + g))
            .collect();
        let mut nl = build_netlist(3, &gates);
        nl.set_name(format!("c{i}"));
        let mut payload = Vec::new();
        encode_netlist(&nl, &mut payload);
        writer
            .append(
                Key128 {
                    hi: i as u64,
                    lo: !(i as u64),
                },
                &payload,
            )
            .unwrap();
        corpus.push(nl);
    }
    writer.finish_sealed().unwrap();
    corpus
}

fn read_corpus(path: &std::path::Path) -> (Vec<Netlist>, bool) {
    let mut stream = FrameStream::open(path).unwrap();
    let mut out = Vec::new();
    for record in stream.by_ref() {
        let mut r = ByteReader::new(&record.payload);
        match decode_netlist(&mut r) {
            Some(nl) if r.is_empty() => out.push(nl),
            _ => break,
        }
    }
    (out, stream.truncated())
}

#[test]
fn sealed_corpus_streams_back_in_order() {
    let path = temp_store("ok");
    let corpus = write_corpus(&path, 40);
    let (back, truncated) = read_corpus(&path);
    assert!(!truncated);
    assert_eq!(back, corpus);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn truncated_store_keeps_the_intact_prefix() {
    let path = temp_store("trunc");
    // > 256 circuits so the store holds several block frames — a tear in a
    // later frame must leave earlier frames readable.
    let corpus = write_corpus(&path, 300);
    let full = std::fs::read(&path).unwrap();
    // Chop the file at several points; the stream must yield a prefix of
    // the corpus (possibly empty) and flag the tear — never garbage.
    for cut in [full.len() - 9, full.len() / 2, 40, 17] {
        std::fs::write(&path, &full[..cut]).unwrap();
        let (back, _) = read_corpus(&path);
        assert!(back.len() <= corpus.len());
        assert_eq!(back.as_slice(), &corpus[..back.len()], "cut at {cut}");
    }
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn corrupted_store_stops_at_the_damaged_frame() {
    let path = temp_store("corrupt");
    let corpus = write_corpus(&path, 300);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one byte two thirds of the way in: that frame's CRC fails,
    // streaming stops there with the tear flagged, and everything decoded
    // before it is an intact prefix of the corpus.
    let victim = bytes.len() * 2 / 3;
    bytes[victim] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let (back, truncated) = read_corpus(&path);
    assert!(truncated, "bit flip must be detected");
    assert!(back.len() < corpus.len());
    assert_eq!(back.as_slice(), &corpus[..back.len()]);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

//! Property tests for the `.afpm` model container and the model codec.
//!
//! Two invariants the estimate fast path rests on:
//!
//! * **Bit-exact persistence** — any fitted model that claims to support
//!   `save_state` must reproduce its predictions to the last bit after a
//!   `restore` round trip, for arbitrary training data. An estimate
//!   served from a loaded zoo is only trustworthy if it equals what the
//!   in-memory zoo would have said.
//! * **Loud failure** — a truncated or corrupted `.afpm` file must never
//!   panic the loader and must never silently change an estimate: either
//!   `load_zoo` reports an error, or the damage provably did not touch
//!   the models (estimates stay byte-identical).

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use afp_circuits::{build_library, ArithKind, LibrarySpec};
use afp_ml::zoo::AsicColumns;
use afp_ml::{build_model, restore, Matrix, MlModelId};
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::{train_zoo, TrainedZoo};
use approxfpgas::record::{extract_features, CircuitRecord};
use approxfpgas::{load_zoo, save_zoo};

const COLS: usize = 6;

/// Deterministic pseudo-random stream (splitmix64) so each proptest case
/// derives its training set from a single drawn seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A well-conditioned synthetic regression set: features in sensible
/// ranges, target a noisy smooth function of them, so every model in the
/// zoo can fit without hitting singular systems.
fn synthetic_set(seed: u64, rows: usize) -> (Matrix, Vec<f64>) {
    let mut s = seed | 1;
    let mut data = Vec::with_capacity(rows * COLS);
    let mut y = Vec::with_capacity(rows);
    for _ in 0..rows {
        let row: Vec<f64> = (0..COLS)
            .map(|c| (c + 1) as f64 * (0.5 + unit(&mut s)))
            .collect();
        let target = 3.0 * row[0] + 0.7 * row[1] * row[2] - row[3].sqrt()
            + 0.1 * row[4] * row[5]
            + 0.05 * (unit(&mut s) - 0.5);
        data.extend_from_slice(&row);
        y.push(target);
    }
    (Matrix::from_vec(rows, COLS, data), y)
}

fn saved_zoo() -> &'static (PathBuf, Vec<u8>, TrainedZoo, Vec<CircuitRecord>) {
    static ZOO: OnceLock<(PathBuf, Vec<u8>, TrainedZoo, Vec<CircuitRecord>)> = OnceLock::new();
    ZOO.get_or_init(|| {
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 40));
        let records = characterize_library(
            &lib,
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
        );
        let subset = sample_subset(records.len(), 0.5, 20, 7);
        let (train, val) = train_validate_split(&subset, 0.8, 7);
        let zoo = train_zoo(
            &records,
            &train,
            &val,
            &[MlModelId::Ml1, MlModelId::Ml14],
            0.01,
        );
        let path = std::env::temp_dir().join(format!("afp-prop-zoo-{}.afpm", std::process::id()));
        save_zoo(&path, &zoo, "lut6-7series", &[(ArithKind::Adder, 8)]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes, zoo, records)
    })
}

/// The `(model, parameter)` pairs a zoo holds, via its public
/// validation-fidelity table (one row per trained pair).
fn trained_pairs(zoo: &TrainedZoo) -> Vec<(MlModelId, approxfpgas::FpgaParam)> {
    zoo.fidelities.iter().map(|f| (f.model, f.param)).collect()
}

/// Reference estimates from the pristine in-memory zoo, for comparing
/// against whatever a damaged container still manages to load.
fn reference_bits(zoo: &TrainedZoo, records: &[CircuitRecord]) -> Vec<u64> {
    let layout = zoo.layout();
    let mut bits = Vec::new();
    for rec in records.iter().take(8) {
        let features = extract_features(rec, layout);
        for &(model, param) in &trained_pairs(zoo) {
            bits.push(zoo.estimate_row(model, param, &features).unwrap().to_bits());
        }
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every persistable model, fitted on arbitrary data, predicts
    /// bit-identically after a save_state/restore round trip.
    #[test]
    fn codec_round_trip_is_bit_exact_for_arbitrary_fits(seed in 0u64..1_000_000, rows in 24usize..48) {
        let (x, y) = synthetic_set(seed, rows);
        let (qx, _) = synthetic_set(seed ^ 0xDEAD_BEEF, 8);
        let cols = AsicColumns { power: 0, latency: 1, area: 2 };
        for &id in MlModelId::ALL.iter() {
            let mut model = build_model(id, cols);
            if model.fit(&x, &y).is_err() {
                // A singular fit on this draw is a property of the data,
                // not the codec; other cases cover the model.
                continue;
            }
            let state = model.save_state();
            prop_assert!(
                state.is_some(),
                "{} ({}) lost persistence support",
                id.label(),
                model.name()
            );
            let state = state.unwrap();
            let restored = restore(state.tag, &state.payload);
            prop_assert!(restored.is_ok(), "{} does not restore", id.label());
            let restored = restored.unwrap();
            for r in 0..qx.rows() {
                let before = model.predict_row(qx.row(r));
                let after = restored.predict_row(qx.row(r));
                prop_assert_eq!(
                    before.to_bits(),
                    after.to_bits(),
                    "{} prediction drifted across the codec round trip",
                    id.label()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any strict truncation of a sealed container either errors or is
    /// provably harmless — never a panic, never a silently degraded zoo.
    /// (Clipping only the 8-byte EOF trailer is recoverable: the scan
    /// fallback still finds every CRC-verified record; cutting into any
    /// data or index frame must be rejected.)
    #[test]
    fn truncated_container_errors_or_recovers_exactly(cut in 1usize..4096) {
        let (_, bytes, zoo, records) = saved_zoo();
        let keep = bytes.len().saturating_sub(1 + cut % bytes.len().max(1));
        let path = std::env::temp_dir().join(format!(
            "afp-prop-trunc-{}-{keep}.afpm",
            std::process::id()
        ));
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let result = load_zoo(&path);
        std::fs::remove_file(&path).unwrap();
        match result {
            Err(_) => {}
            Ok(loaded) => {
                // Only trailer-clipping may recover, and then the zoo
                // must be complete and bit-identical.
                prop_assert!(
                    bytes.len() - keep <= 8,
                    "cut into a frame ({keep} of {} bytes) but still loaded",
                    bytes.len()
                );
                let reference = reference_bits(zoo, records);
                let layout = zoo.layout();
                let mut got = Vec::new();
                for rec in records.iter().take(8) {
                    let features = extract_features(rec, layout);
                    for &(model, param) in &trained_pairs(zoo) {
                        let est = loaded.zoo.estimate_row(model, param, &features);
                        prop_assert!(est.is_some(), "truncation dropped {model:?}/{param:?}");
                        got.push(est.unwrap().to_bits());
                    }
                }
                prop_assert_eq!(reference, got, "truncation changed an estimate");
            }
        }
    }

    /// A single flipped byte anywhere in the file is either detected
    /// (load errors) or provably harmless (every estimate still
    /// byte-identical). It never panics and never silently drifts.
    #[test]
    fn corrupted_container_is_detected_or_harmless(at in 0usize..1_000_000, mask in 1u8..=255) {
        let (_, bytes, zoo, records) = saved_zoo();
        let mut damaged = bytes.clone();
        let at = at % damaged.len();
        damaged[at] ^= mask;
        let path = std::env::temp_dir().join(format!(
            "afp-prop-flip-{}-{at}-{mask}.afpm",
            std::process::id()
        ));
        std::fs::write(&path, &damaged).unwrap();
        let result = load_zoo(&path);
        std::fs::remove_file(&path).unwrap();
        if let Ok(loaded) = result {
            let reference = reference_bits(zoo, records);
            let layout = zoo.layout();
            let mut got = Vec::new();
            for rec in records.iter().take(8) {
                let features = extract_features(rec, layout);
                for &(model, param) in &trained_pairs(zoo) {
                    let est = loaded.zoo.estimate_row(model, param, &features);
                    prop_assert!(est.is_some(), "flip at {at} dropped {model:?}/{param:?}");
                    got.push(est.unwrap().to_bits());
                }
            }
            prop_assert_eq!(reference, got, "flip at {} silently changed an estimate", at);
        }
    }

    /// Arbitrary junk bytes are never a model container and never a
    /// panic.
    #[test]
    fn junk_bytes_never_panic_the_loader(seed in 0u64..1_000_000, len in 0usize..512) {
        let mut s = seed | 1;
        let junk: Vec<u8> = (0..len).map(|_| mix(&mut s) as u8).collect();
        let path = std::env::temp_dir().join(format!(
            "afp-prop-junk-{}-{seed}-{len}.afpm",
            std::process::id()
        ));
        std::fs::write(&path, &junk).unwrap();
        let result = load_zoo(&path);
        std::fs::remove_file(&path).unwrap();
        prop_assert!(result.is_err(), "{len} junk bytes loaded as a zoo");
    }
}

/// The pristine container itself must of course load, and match the
/// in-memory zoo bit for bit — anchor for the damage properties above.
#[test]
fn pristine_container_loads_bit_exact() {
    let (path, _, zoo, records) = saved_zoo();
    let loaded = load_zoo(path).unwrap();
    let layout = zoo.layout();
    for rec in records.iter().take(8) {
        let features = extract_features(rec, layout);
        for &(model, param) in &trained_pairs(zoo) {
            assert_eq!(
                zoo.estimate_row(model, param, &features).unwrap().to_bits(),
                loaded
                    .zoo
                    .estimate_row(model, param, &features)
                    .unwrap()
                    .to_bits()
            );
        }
    }
}

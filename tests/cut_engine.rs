//! Cut-engine invariants and bit-identity goldens.
//!
//! The arena cut engine (signatures, bounded keep-window, reusable
//! [`Mapper`]) must keep FPGA reports **bit-identical** to the historical
//! per-node `Vec<Vec<Cut>>` mapper in its default configuration. The
//! golden test below pins exact `FpgaReport` values captured from the
//! pre-rewrite implementation; any float drifting by one ULP fails it.
//!
//! [`Mapper`]: approxfpgas_suite::fpga::Mapper

use proptest::prelude::*;

use approxfpgas_suite::circuits::{adders, multipliers, mutate};
use approxfpgas_suite::fpga::cuts::{enumerate, Cut, CutSets};
use approxfpgas_suite::fpga::{synthesize_fpga, FpgaConfig, FpgaReport, Mapper};
use approxfpgas_suite::netlist::Netlist;

/// Exact leaf bitset of a cut, recomputed from scratch (bit = leaf % 64).
fn leaf_bitset(cut: &Cut) -> u64 {
    cut.leaves()
        .iter()
        .fold(0u64, |s, &l| s | (1u64 << (l % 64)))
}

/// True when `a`'s leaf set is a subset of `b`'s (both sorted).
fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

fn check_cut_invariants(cs: &CutSets, netlist: &Netlist) {
    assert_eq!(cs.num_nodes(), netlist.len());
    for node in 0..cs.num_nodes() {
        let cuts = cs.cuts(node);
        assert!(!cuts.is_empty(), "node {node} has no cuts");
        // The trivial cut {node} is always last.
        let last = &cuts[cuts.len() - 1];
        assert_eq!(last.leaves(), &[node as u32], "trivial cut missing");
        for cut in cuts {
            // Leaves strictly ascending (sorted + unique).
            assert!(
                cut.leaves().windows(2).all(|w| w[0] < w[1]),
                "node {node}: leaves {:?} not strictly ascending",
                cut.leaves()
            );
            // Signature is exactly the leaf bitset.
            assert_eq!(
                cut.signature(),
                leaf_bitset(cut),
                "node {node}: signature does not match leaves {:?}",
                cut.leaves()
            );
            // Every leaf is a real, earlier-or-equal node index.
            assert!(cut.leaves().iter().all(|&l| (l as usize) <= node));
        }
        // Best depth/area-flow agree with the head of the kept window.
        assert_eq!(cs.best_depth[node], cuts[0].depth);
        assert_eq!(cs.best_area_flow[node], cuts[0].area_flow);
    }
}

fn mutant(seed: u64, muts: usize) -> Netlist {
    let base = multipliers::wallace_multiplier(6);
    mutate::mutate(
        &base,
        &mutate::MutationConfig {
            mutations: muts,
            seed,
            ..Default::default()
        },
    )
    .into_netlist()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn kept_cuts_are_sorted_unique_and_signed(seed in 0u64..10_000, muts in 1usize..6) {
        let nl = mutant(seed, muts);
        let cs = enumerate(&nl, 6, 8);
        check_cut_invariants(&cs, &nl);
    }

    #[test]
    fn mapper_enumerate_matches_free_function(seed in 0u64..10_000) {
        let nl = mutant(seed, 3);
        let free = enumerate(&nl, 6, 8);
        let mut mapper = Mapper::new();
        // Warm the mapper on a different netlist first: reuse must not leak.
        let _ = mapper.enumerate(&adders::ripple_carry(4).into_netlist(), 6, 8);
        let reused = mapper.enumerate(&nl, 6, 8);
        prop_assert_eq!(free.num_nodes(), reused.num_nodes());
        prop_assert_eq!(free.best_depth, reused.best_depth);
        prop_assert_eq!(free.best_area_flow, reused.best_area_flow);
        for node in 0..free.num_nodes() {
            prop_assert_eq!(free.cuts(node).len(), reused.cuts(node).len());
            for (a, b) in free.cuts(node).iter().zip(reused.cuts(node)) {
                prop_assert_eq!(a.leaves(), b.leaves());
                prop_assert_eq!(a.signature(), b.signature());
                prop_assert_eq!(a.depth, b.depth);
                prop_assert_eq!(a.area_flow, b.area_flow);
            }
        }
    }

    #[test]
    fn pruned_mode_keeps_no_dominated_cut(seed in 0u64..10_000) {
        let nl = mutant(seed, 3);
        let mut mapper = Mapper::new();
        mapper.set_prune_dominated(true);
        let cs = mapper.enumerate(&nl, 6, 8);
        check_cut_invariants(&cs, &nl);
        for node in 0..cs.num_nodes() {
            // Among the kept non-trivial cuts, none may subsume another:
            // dominance pruning must leave an antichain (plus the trivial
            // cut, which every cut trivially "covers" conceptually but is
            // stored separately as the mandatory identity cut).
            let kept = &cs.cuts(node)[..cs.cuts(node).len() - 1];
            for (i, a) in kept.iter().enumerate() {
                for (j, b) in kept.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    prop_assert!(
                        !is_subset(a.leaves(), b.leaves()),
                        "node {}: kept cut {:?} dominates kept cut {:?}",
                        node, a.leaves(), b.leaves()
                    );
                }
            }
        }
    }

    #[test]
    fn mapper_reuse_is_bit_identical_to_fresh_synthesis(seed in 0u64..10_000) {
        let cfg = FpgaConfig::default();
        let nls = [mutant(seed, 2), mutant(seed ^ 0xABCD, 4)];
        let mut mapper = Mapper::new();
        for nl in &nls {
            let fresh = synthesize_fpga(nl, &cfg);
            let reused = mapper.synthesize(nl, &cfg);
            prop_assert_eq!(fresh, reused);
        }
        // The first synthesis primes the scratch; the second reuses it.
        prop_assert_eq!(mapper.take_stats().mapper_reuses, 1);
    }
}

/// Golden FPGA reports captured from the pre-rewrite mapper
/// (`Vec<Vec<Cut>>`, per-call allocation). The engine rewrite is only
/// legal because these stay *exactly* equal — exact float comparison,
/// no tolerance.
#[test]
fn golden_reports_are_bit_identical_to_pre_rewrite_mapper() {
    let cfg = FpgaConfig::default();
    let cases: [(&str, Netlist, FpgaReport); 3] = [
        (
            "rca8",
            adders::ripple_carry(8).into_netlist(),
            FpgaReport {
                luts: 14,
                slices: 4,
                depth_levels: 4,
                delay_ns: 2.5989397121226507,
                power_mw: 2.024010220483699,
                synth_time_s: 136.8916983291371,
            },
        ),
        (
            "cla16",
            adders::carry_lookahead(16).into_netlist(),
            FpgaReport {
                luts: 58,
                slices: 15,
                depth_levels: 4,
                delay_ns: 2.9614907109766473,
                power_mw: 7.695598131600788,
                synth_time_s: 410.34314488441294,
            },
        ),
        (
            "wallace8",
            multipliers::wallace_multiplier(8).into_netlist(),
            FpgaReport {
                luts: 117,
                slices: 30,
                depth_levels: 8,
                delay_ns: 5.199270497321918,
                power_mw: 15.201056165777832,
                synth_time_s: 654.8185397116046,
            },
        ),
    ];
    let mut mapper = Mapper::new();
    for (name, nl, want) in &cases {
        let free = synthesize_fpga(nl, &cfg);
        assert_eq!(&free, want, "{name}: free-function report drifted");
        let reused = mapper.synthesize(nl, &cfg);
        assert_eq!(&reused, want, "{name}: reused-mapper report drifted");
    }
}

//! Simulation-kernel equivalence suite.
//!
//! The compiled-tape / wide-lane kernel replaced the per-gate interpreter
//! as the simulation hot path. These tests pin that swap three ways:
//! property tests proving the tape (scalar and wide) is bit-identical to
//! the legacy interpreter (kept as `eval_pass_reference`) on random
//! netlists over every gate kind, golden `ErrorMetrics` captured with the
//! pre-tape kernel that must not move by a single bit, and the
//! signal-probability estimate pinned the same way. If a deliberate
//! kernel change moves the goldens, re-capture them and say why in the
//! commit message.

use approxfpgas_suite::circuits::{adders, multipliers, ArithCircuit};
use approxfpgas_suite::error::{analyze, analyze_with, ErrorConfig, ErrorMetrics};
use approxfpgas_suite::netlist::{
    eval_pass_reference, NetId, Netlist, SimScratch, SimTape, Simulator, LANE_WORDS,
};
use approxfpgas_suite::runtime::Runtime;
use proptest::prelude::*;

/// Captured with the pre-tape interpreter kernel (64-lane `eval_pass`).
struct ErrorGolden {
    samples: u64,
    exhaustive: bool,
    med: u64,
    mae: u64,
    wce: u64,
    mre: u64,
    error_prob: u64,
    mse: u64,
    bias: u64,
}

fn assert_matches_golden(m: &ErrorMetrics, g: &ErrorGolden, who: &str) {
    assert_eq!(m.samples, g.samples, "{who}: samples");
    assert_eq!(m.exhaustive, g.exhaustive, "{who}: exhaustive");
    assert_eq!(m.med.to_bits(), g.med, "{who}: med");
    assert_eq!(m.mae.to_bits(), g.mae, "{who}: mae");
    assert_eq!(m.wce, g.wce, "{who}: wce");
    assert_eq!(m.mre.to_bits(), g.mre, "{who}: mre");
    assert_eq!(m.error_prob.to_bits(), g.error_prob, "{who}: error_prob");
    assert_eq!(m.mse.to_bits(), g.mse, "{who}: mse");
    assert_eq!(m.bias.to_bits(), g.bias, "{who}: bias");
}

fn golden_cases() -> Vec<(ArithCircuit, ErrorGolden)> {
    vec![
        // Exhaustive adder path.
        (
            adders::loa(8, 4),
            ErrorGolden {
                samples: 65536,
                exhaustive: true,
                med: 0x3f770b85c2e170b8,
                mae: 0x4007000000000000,
                wce: 8,
                mre: 0x3f8e7caa01111ce3,
                error_prob: 0x3fe5e00000000000,
                mse: 0x4030000000000000,
                bias: 0x3fd0000000000000,
            },
        ),
        // Exhaustive multiplier path (16 output bits, widest unpack).
        (
            multipliers::broken_array(8, 6, 2),
            ErrorGolden {
                samples: 65536,
                exhaustive: true,
                med: 0x3f66081608160816,
                mae: 0x4066080000000000,
                wce: 705,
                mre: 0x3fa64761d16ad860,
                error_prob: 0x3fee600000000000,
                mse: 0x40e755c800000000,
                bias: 0xc066080000000000,
            },
        ),
        // Sampled (stratified) path for wide operands.
        (
            adders::loa(16, 8),
            ErrorGolden {
                samples: 65540,
                exhaustive: false,
                med: 0x3f38056bed364c9a,
                mae: 0x4048055fea8055ff,
                wce: 128,
                mre: 0x3f5ea174112559b2,
                error_prob: 0x3fecd16cba4d16cc,
                mse: 0x40b00e15afa9415b,
                bias: 0x3fceb8851deb8852,
            },
        ),
    ]
}

#[test]
fn error_metrics_match_pre_tape_goldens_bit_exactly() {
    let cfg = ErrorConfig::default();
    for (circuit, golden) in &golden_cases() {
        let m = analyze(circuit, &cfg);
        assert_matches_golden(&m, golden, circuit.name());
    }
}

#[test]
fn error_metrics_goldens_hold_on_eight_threads() {
    let cfg = ErrorConfig::default();
    for (circuit, golden) in &golden_cases() {
        let m = Runtime::install(8, |rt| analyze_with(circuit, &cfg, rt));
        assert_matches_golden(&m, golden, circuit.name());
    }
}

/// FNV-1a over f64 bit patterns.
fn fnv(values: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[test]
fn signal_probabilities_match_pre_tape_goldens_bit_exactly() {
    // Captured with the pre-tape kernel at the ASIC model's default
    // stimulus parameters (32 passes, seed 0xA51C).
    let m = multipliers::wallace_multiplier(8);
    let mut sim = Simulator::new(m.netlist());
    let probs = sim.signal_probabilities(32, 0xA51C);
    assert_eq!(probs.len(), 270);
    assert_eq!(probs[42].to_bits(), 0x3fd0b00000000000);
    assert_eq!(fnv(&probs), 0xbc46d058acf8cb51);

    // The reusable-scratch estimator agrees bit for bit.
    let mut scratch = SimScratch::new();
    let mut out = Vec::new();
    scratch.signal_probabilities(m.netlist(), 32, 0xA51C, &mut out);
    let a: Vec<u64> = probs.iter().map(|p| p.to_bits()).collect();
    let b: Vec<u64> = out.iter().map(|p| p.to_bits()).collect();
    assert_eq!(a, b);
}

/// Build a random but well-formed netlist from flat generator choices:
/// every gate kind (including both constants, `Mux` and `Maj`), operands
/// drawn from all earlier nets so folding through constants gets
/// exercised. Each gate is `(kind, a, b, c)` with operand draws reduced
/// modulo the nets created so far.
fn build_netlist(n_inputs: usize, gates: &[(u8, usize, usize, usize)]) -> Netlist {
    let mut n = Netlist::new("random");
    let mut nets: Vec<NetId> = (0..n_inputs).map(|_| n.add_input()).collect();
    for &(kind, a, b, c) in gates {
        let pick = |raw: usize, nets: &[NetId]| nets[raw % nets.len()];
        let (x, y, z) = (pick(a, &nets), pick(b, &nets), pick(c, &nets));
        let id = match kind % 12 {
            0 => n.constant(false),
            1 => n.constant(true),
            2 => n.buf(x),
            3 => n.not(x),
            4 => n.and(x, y),
            5 => n.or(x, y),
            6 => n.xor(x, y),
            7 => n.nand(x, y),
            8 => n.nor(x, y),
            9 => n.xnor(x, y),
            10 => n.mux(x, y, z),
            _ => n.maj(x, y, z),
        };
        nets.push(id);
    }
    let outs: Vec<NetId> = nets.iter().rev().take(4).copied().collect();
    n.set_outputs(outs);
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The compiled tape — scalar and wide — is bit-identical to the
    /// legacy per-gate interpreter on every net of random netlists.
    #[test]
    fn tape_kernels_match_the_reference_interpreter(
        n_inputs in 1usize..6,
        gates in prop::collection::vec(
            (0u8..12, 0usize..1 << 30, 0usize..1 << 30, 0usize..1 << 30),
            1..60,
        ),
        seed in 0u64..=u64::MAX,
    ) {
        let nl = build_netlist(n_inputs, &gates);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };

        // Scalar pass: one 64-lane word per input.
        let inputs: Vec<u64> = (0..nl.num_inputs()).map(|_| next()).collect();
        let mut reference = Vec::new();
        eval_pass_reference(&nl, &inputs, &mut reference);
        let tape = SimTape::compile(&nl);
        let mut scalar = Vec::new();
        tape.execute(&inputs, &mut scalar);
        prop_assert_eq!(&scalar, &reference, "scalar tape diverged");

        // Wide pass: every word column must equal an independent scalar
        // reference pass over that column's inputs.
        let wide_inputs: Vec<u64> =
            (0..nl.num_inputs() * LANE_WORDS).map(|_| next()).collect();
        let mut wide = Vec::new();
        tape.execute_wide(&wide_inputs, &mut wide);
        for j in 0..LANE_WORDS {
            let column: Vec<u64> = (0..nl.num_inputs())
                .map(|i| wide_inputs[i * LANE_WORDS + j])
                .collect();
            let mut column_ref = Vec::new();
            eval_pass_reference(&nl, &column, &mut column_ref);
            for net in 0..nl.len() {
                prop_assert_eq!(
                    wide[net * LANE_WORDS + j],
                    column_ref[net],
                    "wide tape diverged at net {} word {}",
                    net,
                    j
                );
            }
        }
    }
}

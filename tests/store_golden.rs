//! Golden cross-backend flow reports: the characterization cache's disk
//! format must be invisible to results. A flow run backed by the CSV
//! tier, the binary store tier, or a store freshly migrated from CSV has
//! to produce byte-identical normalized JSON reports — on one thread and
//! on eight — when compared at equal cache warmth (cold-vs-cold,
//! warm-vs-warm; warmth legitimately changes the hit/miss counters).
//! Anything less means the disk codec is lossy and quietly changing
//! science.

use std::path::PathBuf;

use approxfpgas_suite::circuits::{ArithKind, LibrarySpec};
use approxfpgas_suite::flow::cache::{CACHE_FILE, STORE_FILE};
use approxfpgas_suite::flow::report::{normalized, run_report};
use approxfpgas_suite::flow::{CacheBackend, CharacterizationCache, Flow, FlowConfig};
use approxfpgas_suite::ml::MlModelId;
use approxfpgas_suite::obs::{Recorder, Value};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afp-suite-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn golden_config(threads: usize, cache_dir: Option<PathBuf>, backend: CacheBackend) -> FlowConfig {
    FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 48),
        min_subset: 20,
        models: vec![MlModelId::Ml1, MlModelId::Ml13],
        threads,
        cache_dir,
        cache_backend: backend,
        ..FlowConfig::default()
    }
}

/// Run a traced flow and return the normalized report JSON with the
/// honestly-different `flow.threads` field zeroed out.
fn normalized_json(threads: usize, cache_dir: &std::path::Path, backend: CacheBackend) -> String {
    let config = golden_config(threads, Some(cache_dir.to_path_buf()), backend);
    let recorder = Recorder::enabled();
    let outcome = Flow::new(config.clone()).run_traced(&recorder);
    let mut report = normalized(&run_report(&config, &outcome, &recorder));
    report.set_field("flow", "threads", Value::UInt(0));
    report.to_json()
}

#[test]
fn reports_are_identical_across_cache_backends() {
    let csv_dir = temp_dir("csv");
    let store_dir = temp_dir("store");

    // Cold runs: both tiers start empty, so every counter must agree.
    let cold_csv = normalized_json(1, &csv_dir, CacheBackend::Csv);
    let cold_store = normalized_json(1, &store_dir, CacheBackend::Store);
    assert_eq!(cold_csv, cold_store, "cold runs diverge across backends");
    assert!(csv_dir.join(CACHE_FILE).exists());
    assert!(store_dir.join(STORE_FILE).exists());

    // Warm runs: every characterization is served from disk. If either
    // codec dropped a bit, the time/coverage sections would drift.
    let warm_csv = normalized_json(1, &csv_dir, CacheBackend::Csv);
    let warm_store = normalized_json(1, &store_dir, CacheBackend::Store);
    assert_eq!(warm_csv, warm_store, "warm runs diverge across backends");
    assert!(
        warm_csv.contains("\"misses\":0"),
        "warm run should be fully cache-served"
    );

    // And the same at eight threads.
    let warm_csv8 = normalized_json(8, &csv_dir, CacheBackend::Csv);
    let warm_store8 = normalized_json(8, &store_dir, CacheBackend::Store);
    assert_eq!(warm_csv8, warm_store8, "8-thread warm runs diverge");
    assert_eq!(warm_csv8, warm_csv, "thread count leaks into the report");

    let _ = std::fs::remove_dir_all(&csv_dir);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn migrated_cache_serves_identical_results() {
    let migrate_dir = temp_dir("migrate");
    let native_dir = temp_dir("native");

    // Populate one cache through the CSV tier, the other natively through
    // the store tier.
    let cold_csv = normalized_json(1, &migrate_dir, CacheBackend::Csv);
    let cold_native = normalized_json(1, &native_dir, CacheBackend::Store);
    assert_eq!(cold_csv, cold_native);

    // Explicit migration converts every CSV row into the binary store.
    let migration = CharacterizationCache::migrate_csv_cache(&migrate_dir).unwrap();
    assert!(migration.migrated > 0, "csv rows should convert");
    assert!(migrate_dir.join(STORE_FILE).exists());
    assert!(
        !migrate_dir.join(CACHE_FILE).exists(),
        "csv file is renamed away"
    );

    // A warm run on the migrated store must match a warm run on the
    // natively-written store byte-for-byte — and both must be fully
    // cache-served, proving migration preserved every entry.
    for threads in [1usize, 8] {
        let warm_migrated = normalized_json(threads, &migrate_dir, CacheBackend::Store);
        let warm_native = normalized_json(threads, &native_dir, CacheBackend::Store);
        assert_eq!(
            warm_migrated, warm_native,
            "migrated cache diverges at {threads} threads"
        );
        assert!(warm_migrated.contains("\"misses\":0"));
    }

    let _ = std::fs::remove_dir_all(&migrate_dir);
    let _ = std::fs::remove_dir_all(&native_dir);
}

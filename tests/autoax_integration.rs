//! Integration of the case study with the rest of the stack: components
//! built from flow-discovered pareto circuits drive the accelerator.

use approxfpgas_suite::autoax::search::AutoAx;
use approxfpgas_suite::autoax::{
    AcceleratorConfig, AutoAxConfig, Component, ComponentLibrary, GaussianAccelerator,
};
use approxfpgas_suite::circuits::{ArithKind, LibrarySpec};
use approxfpgas_suite::flow::record::FpgaParam;
use approxfpgas_suite::flow::{Flow, FlowConfig};
use approxfpgas_suite::fpga::FpgaConfig;
use approxfpgas_suite::ml::MlModelId;

/// Build a component library from an actual flow run: the paper's pipeline
/// (ApproxFPGAs output feeds AutoAx-FPGA).
fn components_from_flow() -> ComponentLibrary {
    let fpga_cfg = FpgaConfig::default();
    // Pareto 8x8 multipliers from a small flow run.
    let mult_outcome = Flow::new(FlowConfig {
        library: LibrarySpec::new(ArithKind::Multiplier, 8, 120),
        models: vec![MlModelId::Ml11, MlModelId::Ml14, MlModelId::Ml18],
        min_subset: 24,
        ..FlowConfig::default()
    })
    .run();
    let front = &mult_outcome.final_fronts[&FpgaParam::Area];
    // Keep usable quality points (MED below 2%) and cap at 9, as in the
    // paper; the exact anchor is on every front.
    let mut mult_ids: Vec<usize> = front
        .iter()
        .copied()
        .filter(|&i| mult_outcome.records[i].error.med < 0.02)
        .collect();
    mult_ids.truncate(9);
    assert!(mult_ids.len() >= 3, "front too small: {}", mult_ids.len());
    let mult_lib = approxfpgas_suite::circuits::build_library(&LibrarySpec::new(
        ArithKind::Multiplier,
        8,
        120,
    ));
    let mults: Vec<Component> = mult_ids
        .iter()
        .map(|&i| Component::new(mult_lib[i].clone(), &fpga_cfg))
        .collect();
    // Adders: the paper-default 8.
    let defaults = ComponentLibrary::paper_defaults(&fpga_cfg);
    ComponentLibrary::new(mults, defaults.adders().to_vec())
}

#[test]
fn flow_pareto_circuits_work_as_accelerator_components() {
    let library = components_from_flow();
    let accel = GaussianAccelerator::new(&library);
    let img = approxfpgas_suite::autoax::image::plasma(24, 7);
    let exact_ref = approxfpgas_suite::autoax::filter::exact_gaussian(&img);
    // Every single-component configuration must produce a plausible image.
    for choice in 0..library.multipliers().len() {
        let cfg = AcceleratorConfig {
            mult_slots: [choice; 9],
            adder_slots: [0; 5],
        };
        let out = accel.filter(&cfg, &img);
        let s = approxfpgas_suite::autoax::ssim::ssim(&out, &exact_ref);
        assert!(
            s > 0.3,
            "component {choice} ({}) destroys the image: SSIM {s}",
            library.multipliers()[choice].name()
        );
    }
}

#[test]
fn autoax_runs_on_flow_derived_components() {
    let library = components_from_flow();
    let runner = AutoAx::new(
        &library,
        AutoAxConfig {
            training_samples: 40,
            restarts: 4,
            steps: 8,
            random_budget: 10,
            image_size: 16,
            seed: 3,
        },
    );
    let outcome = runner.run();
    assert_eq!(outcome.autoax.len(), 3);
    for (_, designs) in &outcome.autoax {
        assert!(!designs.is_empty());
    }
}

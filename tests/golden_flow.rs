//! Golden pinning of the default (no-injection) flow outputs.
//!
//! The values below were captured **before** the NaN-safe ordering
//! migration (total-order comparators + estimate quarantine): the
//! migration must not change any front, coverage bit, model selection or
//! synthesis set when every estimate is finite. If a deliberate
//! behavioural change moves these, re-capture them and say why in the
//! commit message.

use approxfpgas_suite::circuits::{ArithKind, LibrarySpec};
use approxfpgas_suite::flow::record::FpgaParam;
use approxfpgas_suite::flow::{Flow, FlowConfig, FlowOutcome};
use approxfpgas_suite::ml::MlModelId;
use approxfpgas_suite::obs::Recorder;

fn golden_config() -> FlowConfig {
    FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, 100),
        min_subset: 24,
        models: vec![
            MlModelId::Ml1,
            MlModelId::Ml2,
            MlModelId::Ml3,
            MlModelId::Ml4,
            MlModelId::Ml11,
            MlModelId::Ml13,
            MlModelId::Ml14,
            MlModelId::Ml18,
        ],
        ..FlowConfig::default()
    }
}

fn assert_matches_goldens(outcome: &FlowOutcome) {
    assert_eq!(
        outcome.subset,
        vec![
            0, 4, 7, 8, 17, 20, 22, 23, 30, 32, 34, 36, 38, 58, 65, 68, 73, 80, 81, 82, 83, 94, 97,
            98
        ]
    );
    assert_eq!(
        outcome.synthesized.iter().copied().collect::<Vec<_>>(),
        vec![
            0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
            26, 27, 28, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 42, 46, 49, 58, 59, 60, 61, 62,
            63, 64, 65, 67, 68, 71, 73, 74, 77, 80, 81, 82, 83, 85, 88, 89, 90, 91, 94, 95, 97, 98
        ]
    );

    // Coverage pinned to the exact bit pattern, not an epsilon.
    assert_eq!(
        outcome.coverage[&FpgaParam::Latency].to_bits(),
        0x3feccccccccccccd
    );
    assert_eq!(
        outcome.coverage[&FpgaParam::Power].to_bits(),
        0x3ff0000000000000
    );
    assert_eq!(
        outcome.coverage[&FpgaParam::Area].to_bits(),
        0x3ff0000000000000
    );
    assert_eq!(outcome.mean_coverage().to_bits(), 0x3feeeeeeeeeeeeef);

    assert_eq!(
        outcome.final_fronts[&FpgaParam::Latency],
        vec![0, 1, 3, 10, 16, 20, 26, 28, 61]
    );
    assert_eq!(
        outcome.final_fronts[&FpgaParam::Power],
        vec![0, 1, 7, 11, 16, 17, 22, 32, 59, 60, 61, 62, 63, 64, 65]
    );
    assert_eq!(
        outcome.final_fronts[&FpgaParam::Area],
        vec![0, 59, 60, 61, 62, 63, 64, 65]
    );

    assert_eq!(
        outcome.selected_models[&FpgaParam::Latency],
        vec![MlModelId::Ml13, MlModelId::Ml14, MlModelId::Ml4]
    );
    assert_eq!(
        outcome.selected_models[&FpgaParam::Power],
        vec![MlModelId::Ml4, MlModelId::Ml11, MlModelId::Ml13]
    );
    assert_eq!(
        outcome.selected_models[&FpgaParam::Area],
        vec![MlModelId::Ml4, MlModelId::Ml11, MlModelId::Ml13]
    );

    assert_eq!(outcome.time.flow_count, 68);

    // With finite estimates the quarantine stage is a no-op.
    assert_eq!(outcome.runtime.estimates_quarantined, 0);
    assert!(outcome.dropped_models.values().all(|v| v.is_empty()));
}

#[test]
fn default_flow_outputs_match_pre_migration_goldens() {
    let outcome = Flow::new(golden_config()).run();
    assert_matches_goldens(&outcome);
}

#[test]
fn default_target_profile_reproduces_the_goldens_bit_exactly() {
    // `lut6-7series` is the registry spelling of the historical default
    // fabric: routing the same run through the profile registry must not
    // move a single golden bit.
    let mut config = golden_config();
    let profile = approxfpgas_suite::fpga::target::named(approxfpgas_suite::fpga::DEFAULT_TARGET)
        .expect("default target registered");
    config.fpga = profile.apply(&config.fpga);
    let outcome = Flow::new(config).run();
    assert_matches_goldens(&outcome);
}

#[test]
fn tracing_enabled_flow_matches_the_same_goldens_bit_exactly() {
    // Tracing is strictly observational: an enabled recorder must not
    // move a single golden bit relative to the untraced run.
    let recorder = Recorder::enabled();
    let outcome = Flow::new(golden_config()).run_traced(&recorder);
    assert_matches_goldens(&outcome);
    if recorder.is_enabled() {
        // Every golden model has a train stage; every *selected* model
        // additionally has an estimate stage.
        let names: Vec<String> = recorder.stages().into_iter().map(|(n, _)| n).collect();
        for id in golden_config().models {
            assert!(
                names.contains(&format!("train/{}", id.label())),
                "no train stage for {}",
                id.label()
            );
        }
        for models in outcome.selected_models.values() {
            for id in models {
                assert!(
                    names.contains(&format!("estimate/{}", id.label())),
                    "no estimate stage for selected model {}",
                    id.label()
                );
            }
        }
    }
}

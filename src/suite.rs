//! Umbrella library for the ApproxFPGAs reproduction workspace.
//!
//! This crate exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). It re-exports the member crates so
//! examples can use one coherent namespace.

#![forbid(unsafe_code)]

pub use afp_asic as asic;
pub use afp_autoax as autoax;
pub use afp_circuits as circuits;
pub use afp_error as error;
pub use afp_fpga as fpga;
pub use afp_ml as ml;
pub use afp_netlist as netlist;
pub use afp_obs as obs;
pub use afp_runtime as runtime;
pub use afp_store as store;
pub use approxfpgas as flow;

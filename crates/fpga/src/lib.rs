//! FPGA synthesis model: LUT technology mapping, slice packing, timing,
//! power and synthesis-time estimation.
//!
//! This crate plays the role Vivado plays in the ApproxFPGAs paper: it
//! turns a gate-level netlist into FPGA cost numbers — `#LUTs`, `#slices`,
//! delay and power — for a LUT-6 fabric with DSP blocks disabled (the
//! paper's setup). The core is a cut-based technology mapper
//! ([`cuts`]/[`map`]): K-feasible cuts are enumerated per node with
//! priority-cut pruning, a depth-optimal cover with area-flow tie-breaking
//! selects the LUT network, and packing/timing/power models are evaluated
//! on the mapped network.
//!
//! Because a LUT absorbs *any* function of up to K inputs, the relative
//! cost of circuits here differs systematically from their standard-cell
//! cost (an XOR tree is as cheap as an AND tree, inverters are free, ...).
//! That asymmetry is exactly the phenomenon the paper is built on.
//!
//! The [`synth_time`] module models the *wall-clock synthesis time* a real
//! tool-flow would spend on each circuit; the methodology accounts with it
//! when comparing exhaustive exploration to ML-driven exploration (Fig. 3).
//!
//! # Example
//!
//! ```
//! use afp_circuits::multipliers::wallace_multiplier;
//! use afp_fpga::{synthesize_fpga, FpgaConfig};
//!
//! let m = wallace_multiplier(8);
//! let report = synthesize_fpga(m.netlist(), &FpgaConfig::default());
//! assert!(report.luts > 0);
//! assert!(report.luts < m.netlist().num_logic_gates()); // LUTs absorb gates
//! assert!(report.delay_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cuts;
pub mod luts;
pub mod map;
pub mod mapper;
pub mod synth_time;
pub mod target;

pub use mapper::{Mapper, MapperStats};
pub use target::{TargetProfile, DEFAULT_TARGET};

use afp_netlist::Netlist;

/// Target-architecture description (LUT-6 fabric defaults).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FpgaArch {
    /// LUT input count K.
    pub lut_inputs: usize,
    /// LUTs per slice (used by the packer).
    pub luts_per_slice: usize,
    /// LUT intrinsic delay in ns.
    pub lut_delay_ns: f64,
    /// Routing delay base per net hop in ns.
    pub route_base_ns: f64,
    /// Additional routing delay per `ln(1+fanout)` in ns.
    pub route_fanout_ns: f64,
    /// Dynamic energy per LUT output toggle in pJ.
    pub lut_energy_pj: f64,
    /// Dynamic routing energy per toggle per fanout in pJ.
    pub route_energy_pj: f64,
    /// Static power per used LUT in µW.
    pub lut_static_uw: f64,
}

impl Default for FpgaArch {
    fn default() -> FpgaArch {
        // Roughly 7-series-like relative numbers.
        FpgaArch {
            lut_inputs: 6,
            luts_per_slice: 4,
            lut_delay_ns: 0.124,
            route_base_ns: 0.35,
            route_fanout_ns: 0.18,
            lut_energy_pj: 0.9,
            route_energy_pj: 0.35,
            lut_static_uw: 3.5,
        }
    }
}

/// Configuration for [`synthesize_fpga`].
#[derive(Clone, Debug)]
pub struct FpgaConfig {
    /// Target architecture.
    pub arch: FpgaArch,
    /// Cuts kept per node during enumeration (priority cuts).
    pub cuts_per_node: usize,
    /// Operating clock in MHz (scales dynamic power).
    pub clock_mhz: f64,
    /// Random-stimulus passes for activity estimation.
    pub activity_passes: usize,
    /// Stimulus seed.
    pub seed: u64,
    /// Magnitude of the deterministic per-circuit place&route jitter
    /// applied to delay and power (0.0 disables; default 0.08 = ±8%).
    ///
    /// Real P&R outcomes vary with netlist hash-like details; the jitter
    /// makes the ML estimation task realistically noisy.
    pub pnr_jitter: f64,
    /// Prune candidate cuts whose leaf set is a *proper superset* of a
    /// kept cut's during enumeration.
    ///
    /// Dominated cuts can never improve a node's best depth or area flow,
    /// so pruning them preserves LUT count, depth and synthesis time —
    /// but evicting them admits other cuts into the bounded keep window,
    /// which can flip area-recovery tie-breaks and perturb delay/power in
    /// the last few percent (see DESIGN.md "Cut engine"). The default
    /// `false` keeps reports bit-identical to the historical mapper;
    /// equal-leaf-set (mutual-dominance) pruning is always on.
    pub prune_dominated: bool,
    /// Identity of the device profile this configuration targets (a
    /// [`target::REGISTRY`] name for registry profiles, or any caller
    /// label for hand-built configurations).
    ///
    /// The identity travels with every characterization-cache key,
    /// circuit record and run report, so results from different fabrics
    /// can never be conflated even when two profiles happen to share
    /// cost constants.
    pub target: String,
}

impl Default for FpgaConfig {
    fn default() -> FpgaConfig {
        FpgaConfig {
            arch: FpgaArch::default(),
            cuts_per_node: 8,
            clock_mhz: 200.0,
            activity_passes: 32,
            seed: 0xF96A,
            pnr_jitter: 0.08,
            prune_dominated: false,
            target: target::DEFAULT_TARGET.to_string(),
        }
    }
}

/// FPGA implementation report for one netlist.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FpgaReport {
    /// Number of LUTs in the mapped network.
    pub luts: usize,
    /// Number of occupied slices after packing.
    pub slices: usize,
    /// LUT levels on the critical path.
    pub depth_levels: u32,
    /// Critical-path delay in ns (LUT + routing, with P&R jitter).
    pub delay_ns: f64,
    /// Total power in mW at the configured clock (dynamic + static).
    pub power_mw: f64,
    /// Modeled synthesis + implementation wall-clock time in seconds.
    pub synth_time_s: f64,
}

/// Synthesize `netlist` for the configured FPGA fabric.
///
/// Runs cut enumeration, depth-optimal covering with area recovery, slice
/// packing, timing and power models, and the synthesis-time model. The
/// result is deterministic for a given netlist and configuration.
///
/// One-shot wrapper around [`Mapper::synthesize`]; callers sweeping many
/// netlists should hold a [`Mapper`] to reuse its scratch buffers.
pub fn synthesize_fpga(netlist: &Netlist, config: &FpgaConfig) -> FpgaReport {
    Mapper::new().synthesize(netlist, config)
}

impl afp_runtime::Fingerprint for FpgaConfig {
    fn fingerprint(&self, h: &mut afp_runtime::StableHasher) {
        h.write_str("fpga-config");
        h.write_usize(self.arch.lut_inputs);
        h.write_usize(self.arch.luts_per_slice);
        h.write_f64(self.arch.lut_delay_ns);
        h.write_f64(self.arch.route_base_ns);
        h.write_f64(self.arch.route_fanout_ns);
        h.write_f64(self.arch.lut_energy_pj);
        h.write_f64(self.arch.route_energy_pj);
        h.write_f64(self.arch.lut_static_uw);
        h.write_usize(self.cuts_per_node);
        h.write_f64(self.clock_mhz);
        h.write_usize(self.activity_passes);
        h.write_u64(self.seed);
        h.write_f64(self.pnr_jitter);
        h.write_u64(self.prune_dominated as u64);
        h.write_str(&self.target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::{adders, multipliers};

    fn report(netlist: &Netlist) -> FpgaReport {
        synthesize_fpga(netlist, &FpgaConfig::default())
    }

    #[test]
    fn wire_costs_nothing() {
        let mut n = Netlist::new("wire");
        let a = n.add_input();
        n.set_outputs(vec![a]);
        let r = report(&n);
        assert_eq!(r.luts, 0);
        assert_eq!(r.slices, 0);
        assert_eq!(r.depth_levels, 0);
    }

    #[test]
    fn small_function_fits_one_lut() {
        // A 6-input function must map to exactly one LUT-6.
        let mut n = Netlist::new("f6");
        let ins = n.add_inputs(6);
        let x1 = n.and(ins[0], ins[1]);
        let x2 = n.xor(ins[2], ins[3]);
        let x3 = n.or(ins[4], ins[5]);
        let x4 = n.maj(x1, x2, x3);
        n.set_outputs(vec![x4]);
        let r = report(&n);
        assert_eq!(r.luts, 1);
        assert_eq!(r.slices, 1);
        assert_eq!(r.depth_levels, 1);
    }

    #[test]
    fn luts_fewer_than_gates() {
        for nl in [
            adders::ripple_carry(8).into_netlist(),
            multipliers::wallace_multiplier(8).into_netlist(),
        ] {
            let r = report(&nl);
            assert!(r.luts > 0);
            assert!(
                r.luts < nl.num_logic_gates(),
                "mapper should absorb gates: {} LUTs for {} gates",
                r.luts,
                nl.num_logic_gates()
            );
        }
    }

    #[test]
    fn ripple_adder_cost_is_about_two_luts_per_bit() {
        // Without a dedicated carry chain a 16-bit RCA maps to roughly one
        // sum LUT and one carry LUT per position, minus what the mapper
        // absorbs. Accept a generous envelope: 8..=40 LUTs.
        let r = report(adders::ripple_carry(16).netlist());
        assert!(r.luts >= 8 && r.luts <= 40, "got {} LUTs", r.luts);
    }

    #[test]
    fn fpga_cost_ranking_differs_from_gate_count() {
        // XOR-heavy and NAND-heavy structures of similar gate count should
        // land differently in LUTs than in gates — the paper's asymmetry.
        let cla = adders::carry_lookahead(16);
        let rca = adders::ripple_carry(16);
        let r_cla = report(cla.netlist());
        let r_rca = report(rca.netlist());
        let gate_ratio =
            cla.netlist().num_logic_gates() as f64 / rca.netlist().num_logic_gates() as f64;
        let lut_ratio = r_cla.luts as f64 / r_rca.luts.max(1) as f64;
        assert!(
            (gate_ratio - lut_ratio).abs() > 0.25,
            "gate ratio {gate_ratio:.2} vs lut ratio {lut_ratio:.2} too similar"
        );
    }

    #[test]
    fn packing_matches_lut_count() {
        let r = report(multipliers::array_multiplier(8).netlist());
        let per = FpgaArch::default().luts_per_slice;
        assert_eq!(r.slices, r.luts.div_ceil(per));
    }

    #[test]
    fn delay_grows_with_depth() {
        let shallow = report(adders::carry_lookahead(16).netlist());
        let deep = report(adders::ripple_carry(16).netlist());
        assert!(deep.depth_levels > shallow.depth_levels);
        assert!(deep.delay_ns > shallow.delay_ns);
    }

    #[test]
    fn reports_are_deterministic() {
        let m = multipliers::wallace_multiplier(8);
        assert_eq!(report(m.netlist()), report(m.netlist()));
    }

    #[test]
    fn jitter_is_bounded_and_seeded_by_structure() {
        let m = multipliers::wallace_multiplier(8);
        let no_jitter_cfg = FpgaConfig {
            pnr_jitter: 0.0,
            ..FpgaConfig::default()
        };
        let clean = synthesize_fpga(m.netlist(), &no_jitter_cfg);
        let noisy = report(m.netlist());
        let rel = (noisy.delay_ns - clean.delay_ns).abs() / clean.delay_ns;
        assert!(rel <= 0.085, "jitter out of bounds: {rel}");
    }

    #[test]
    fn synth_time_grows_with_circuit_size() {
        let small = report(adders::ripple_carry(8).netlist());
        let large = report(multipliers::wallace_multiplier(16).netlist());
        assert!(large.synth_time_s > small.synth_time_s);
        assert!(small.synth_time_s > 0.0);
    }

    #[test]
    fn truncated_multiplier_uses_fewer_luts() {
        let exact = report(multipliers::wallace_multiplier(8).netlist());
        let mut t = multipliers::truncated(8, 8);
        t.simplify();
        let approx = report(t.netlist());
        assert!(approx.luts < exact.luts);
        assert!(approx.power_mw < exact.power_mw);
    }
}

//! K-feasible cut enumeration with priority-cut pruning.
//!
//! A *cut* of node `n` is a set of nodes ("leaves") such that every path
//! from the primary inputs to `n` passes through a leaf; a K-feasible cut
//! (|leaves| ≤ K) corresponds to a K-input LUT implementing `n`. This
//! module enumerates, bottom-up, the best few cuts per node ranked by
//! mapping depth and area flow — the standard priority-cuts scheme.

use afp_netlist::Netlist;

/// Maximum LUT input count supported by the enumeration.
pub const MAX_K: usize = 8;

/// One cut: a sorted leaf set plus its ranking metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct Cut {
    leaves: [u32; MAX_K],
    len: u8,
    /// LUT levels needed to produce this node when using the cut.
    pub depth: u32,
    /// Area-flow heuristic (shared-logic-aware area estimate).
    pub area_flow: f64,
}

impl Cut {
    /// The trivial cut `{node}` (the node used as a leaf by its readers).
    pub fn trivial(node: u32, depth: u32, area_flow: f64) -> Cut {
        let mut leaves = [0u32; MAX_K];
        leaves[0] = node;
        Cut {
            leaves,
            len: 1,
            depth,
            area_flow,
        }
    }

    /// Leaf nodes of this cut (sorted).
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Merge two sorted leaf sets; `None` if the union exceeds `k`.
    fn merge(a: &Cut, b: &Cut, k: usize) -> Option<Cut> {
        let (mut i, mut j, mut out_len) = (0usize, 0usize, 0usize);
        let mut out = [u32::MAX; MAX_K];
        let (la, lb) = (a.leaves(), b.leaves());
        while i < la.len() || j < lb.len() {
            let v = match (la.get(i), lb.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            if out_len == k {
                return None;
            }
            out[out_len] = v;
            out_len += 1;
        }
        Some(Cut {
            leaves: out,
            len: out_len as u8,
            depth: 0,
            area_flow: 0.0,
        })
    }
}

/// Per-node cut sets for a whole netlist.
#[derive(Debug)]
pub struct CutSets {
    /// `cuts[n]` — the kept cuts of node `n`, best first. For inputs and
    /// constants this is just the trivial cut.
    pub cuts: Vec<Vec<Cut>>,
    /// Best achievable LUT depth per node.
    pub best_depth: Vec<u32>,
    /// Area flow of the best cut per node.
    pub best_area_flow: Vec<f64>,
}

/// Enumerate priority cuts for every node.
///
/// `k` is the LUT input count (≤ [`MAX_K`]), `keep` the number of cuts
/// retained per node.
///
/// # Panics
///
/// Panics if `k < 2` (two-input gates need two leaves) or `k` exceeds
/// [`MAX_K`].
pub fn enumerate(netlist: &Netlist, k: usize, keep: usize) -> CutSets {
    assert!((2..=MAX_K).contains(&k), "k must be 2..={MAX_K}");
    let n_nodes = netlist.len();
    let fanout = afp_netlist::analyze::fanout(netlist);
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(n_nodes);
    let mut best_depth = vec![0u32; n_nodes];
    let mut best_area_flow = vec![0.0f64; n_nodes];

    for (idx, gate) in netlist.gates().iter().enumerate() {
        if !gate.is_logic() {
            // Inputs and constants: depth 0, free.
            cuts.push(vec![Cut::trivial(idx as u32, 0, 0.0)]);
            best_depth[idx] = 0;
            best_area_flow[idx] = 0.0;
            continue;
        }
        let ops: Vec<usize> = gate.operands().map(|o| o.index()).collect();
        let mut candidates: Vec<Cut> = Vec::new();
        // Cross product of operand cut sets.
        match ops.len() {
            1 => {
                for c in &cuts[ops[0]] {
                    // Compare by reference; clone only cuts that survive
                    // the duplicate check.
                    if !is_duplicate(&candidates, c) {
                        candidates.push(c.clone());
                    }
                }
            }
            2 => {
                for ca in &cuts[ops[0]] {
                    for cb in &cuts[ops[1]] {
                        if let Some(cut) = Cut::merge(ca, cb, k) {
                            push_candidate(&mut candidates, cut);
                        }
                    }
                }
            }
            3 => {
                for ca in &cuts[ops[0]] {
                    for cb in &cuts[ops[1]] {
                        let Some(ab) = Cut::merge(ca, cb, k) else {
                            continue;
                        };
                        for cc in &cuts[ops[2]] {
                            if let Some(cut) = Cut::merge(&ab, cc, k) {
                                push_candidate(&mut candidates, cut);
                            }
                        }
                    }
                }
            }
            _ => unreachable!("gates have 1..=3 operands"),
        }
        // Score candidates.
        let fo = fanout[idx].max(1) as f64;
        let mut scored: Vec<Cut> = candidates
            .into_iter()
            .map(|mut c| {
                let mut d = 0u32;
                let mut af = 1.0; // this LUT
                for &leaf in c.leaves() {
                    d = d.max(best_depth[leaf as usize]);
                    af += best_area_flow[leaf as usize];
                }
                c.depth = d + 1;
                c.area_flow = af / fo;
                c
            })
            .collect();
        scored.sort_by(|a, b| {
            a.depth.cmp(&b.depth).then(
                a.area_flow
                    .partial_cmp(&b.area_flow)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        scored.dedup_by(|a, b| a.leaves() == b.leaves());
        scored.truncate(keep);
        let best = scored.first().expect("every logic gate has a cut");
        best_depth[idx] = best.depth;
        best_area_flow[idx] = best.area_flow;
        // The trivial cut lets consumers treat this node as a leaf.
        scored.push(Cut::trivial(idx as u32, best.depth, best.area_flow));
        cuts.push(scored);
    }

    CutSets {
        cuts,
        best_depth,
        best_area_flow,
    }
}

#[inline]
fn is_duplicate(candidates: &[Cut], cut: &Cut) -> bool {
    candidates.iter().any(|c| c.leaves() == cut.leaves())
}

/// Push a freshly merged cut (already owned — never clones).
fn push_candidate(candidates: &mut Vec<Cut>, cut: Cut) {
    if !is_duplicate(candidates, &cut) {
        candidates.push(cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::adders;
    use afp_netlist::Netlist;

    #[test]
    fn trivial_cut_for_inputs() {
        let mut n = Netlist::new("i");
        let a = n.add_input();
        n.set_outputs(vec![a]);
        let cs = enumerate(&n, 6, 8);
        assert_eq!(cs.cuts[0].len(), 1);
        assert_eq!(cs.cuts[0][0].leaves(), &[0]);
        assert_eq!(cs.best_depth[0], 0);
    }

    #[test]
    fn chain_of_gates_collapses_into_one_cut() {
        // x = ((a&b)^c)|d : 4 inputs, depth-1 with K=6.
        let mut n = Netlist::new("c");
        let ins = n.add_inputs(4);
        let x1 = n.and(ins[0], ins[1]);
        let x2 = n.xor(x1, ins[2]);
        let x3 = n.or(x2, ins[3]);
        n.set_outputs(vec![x3]);
        let cs = enumerate(&n, 6, 8);
        assert_eq!(cs.best_depth[x3.index()], 1);
        let best = &cs.cuts[x3.index()][0];
        assert_eq!(best.leaves(), &[0, 1, 2, 3]);
    }

    #[test]
    fn k_limits_cut_width() {
        // A 3-level XOR tree over 8 inputs cannot be one LUT-6.
        let mut n = Netlist::new("x8");
        let ins = n.add_inputs(8);
        let l1: Vec<_> = (0..4).map(|i| n.xor(ins[2 * i], ins[2 * i + 1])).collect();
        let l2a = n.xor(l1[0], l1[1]);
        let l2b = n.xor(l1[2], l1[3]);
        let root = n.xor(l2a, l2b);
        n.set_outputs(vec![root]);
        let cs = enumerate(&n, 6, 8);
        assert_eq!(cs.best_depth[root.index()], 2);
        let cs4 = enumerate(&n, 8, 12);
        assert_eq!(cs4.best_depth[root.index()], 1);
    }

    #[test]
    #[should_panic(expected = "k must be 2..=")]
    fn k1_is_rejected() {
        let mut n = Netlist::new("k1");
        let a = n.add_input();
        let b = n.add_input();
        let y = n.and(a, b);
        n.set_outputs(vec![y]);
        let _ = enumerate(&n, 1, 4);
    }

    #[test]
    fn k2_maps_every_gate_individually() {
        let mut n = Netlist::new("k2");
        let ins = n.add_inputs(3);
        let x = n.and(ins[0], ins[1]);
        let y = n.or(x, ins[2]);
        n.set_outputs(vec![y]);
        let cs = enumerate(&n, 2, 4);
        // With K=2 a LUT can absorb at most one 2-input gate.
        assert_eq!(cs.best_depth[y.index()], 2);
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut::trivial(1, 0, 0.0);
        let b = Cut::trivial(2, 0, 0.0);
        let m = Cut::merge(&a, &b, 6).unwrap();
        assert_eq!(m.leaves(), &[1, 2]);
        assert!(Cut::merge(&m, &Cut::trivial(3, 0, 0.0), 2).is_none());
    }

    #[test]
    fn duplicate_leaves_merge_once() {
        let a = Cut::merge(&Cut::trivial(1, 0, 0.0), &Cut::trivial(5, 0, 0.0), 6).unwrap();
        let b = Cut::merge(&Cut::trivial(5, 0, 0.0), &Cut::trivial(9, 0, 0.0), 6).unwrap();
        let m = Cut::merge(&a, &b, 6).unwrap();
        assert_eq!(m.leaves(), &[1, 5, 9]);
    }

    #[test]
    fn depth_monotone_along_netlist() {
        let add = adders::ripple_carry(8);
        let cs = enumerate(add.netlist(), 6, 8);
        for out in add.netlist().outputs() {
            // Every output is coverable.
            assert!(!cs.cuts[out.index()].is_empty());
        }
        // MSB carry needs more levels than the LSB sum.
        let lsb = add.netlist().outputs()[0].index();
        let msb = add.netlist().outputs()[8].index();
        assert!(cs.best_depth[msb] >= cs.best_depth[lsb]);
    }
}

//! K-feasible cut enumeration with priority-cut pruning.
//!
//! A *cut* of node `n` is a set of nodes ("leaves") such that every path
//! from the primary inputs to `n` passes through a leaf; a K-feasible cut
//! (|leaves| ≤ K) corresponds to a K-input LUT implementing `n`. This
//! module enumerates, bottom-up, the best few cuts per node ranked by
//! mapping depth and area flow — the standard priority-cuts scheme.
//!
//! The enumeration itself lives in [`crate::mapper::Mapper`], which owns
//! all scratch state so a whole circuit library can be mapped with zero
//! steady-state allocation; [`enumerate`] is the one-shot convenience
//! entry point. Two classic accelerations keep the merge cross products
//! cheap (see DESIGN.md "Cut engine"):
//!
//! * every cut carries a 64-bit **leaf signature** (bit `leaf % 64`), so
//!   an infeasible merge (`popcount(sigA | sigB) > K`) or a non-subset
//!   pair is rejected in O(1) before any leaf array is touched;
//! * **dominance pruning** drops any candidate whose leaf set is a
//!   superset of another candidate's — the dominated cut can never beat
//!   the dominating one on depth or area flow.

use afp_netlist::Netlist;

/// Maximum LUT input count supported by the enumeration.
pub const MAX_K: usize = 8;

/// One cut: a sorted leaf set plus its ranking metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct Cut {
    pub(crate) leaves: [u32; MAX_K],
    pub(crate) len: u8,
    pub(crate) sig: u64,
    /// LUT levels needed to produce this node when using the cut.
    pub depth: u32,
    /// Area-flow heuristic (shared-logic-aware area estimate).
    pub area_flow: f64,
}

impl Cut {
    /// The trivial cut `{node}` (the node used as a leaf by its readers).
    pub fn trivial(node: u32, depth: u32, area_flow: f64) -> Cut {
        let mut leaves = [0u32; MAX_K];
        leaves[0] = node;
        Cut {
            leaves,
            len: 1,
            sig: sig_bit(node),
            depth,
            area_flow,
        }
    }

    /// Leaf nodes of this cut (sorted).
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// 64-bit leaf signature: the OR of `1 << (leaf % 64)` over all
    /// leaves. A superset of leaves always has a superset of signature
    /// bits, so `sigA & !sigB != 0` proves "A ⊄ B" without touching the
    /// leaf arrays, and `popcount(sigA | sigB) > k` proves a merge is
    /// infeasible (the true union is at least as large).
    pub fn signature(&self) -> u64 {
        self.sig
    }

    /// True when `self`'s leaf set is a subset of (or equal to) `other`'s.
    /// `self` then *dominates* `other`: any LUT realizable from `other`'s
    /// leaves is realizable from `self`'s, at depth/area-flow no worse.
    pub(crate) fn subsumes(&self, other: &Cut) -> bool {
        if self.len > other.len || self.sig & !other.sig != 0 {
            return false;
        }
        // Both leaf sets are sorted: one linear scan.
        let (a, b) = (self.leaves(), other.leaves());
        let mut j = 0usize;
        'outer: for &x in a {
            while j < b.len() {
                match b[j].cmp(&x) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Merge two sorted leaf sets; `None` if the union exceeds `k`.
    ///
    /// Callers are expected to have applied the signature pre-filter
    /// already; the exact length bound is still enforced here because
    /// distinct leaves can collide modulo 64.
    pub(crate) fn merge(a: &Cut, b: &Cut, k: usize) -> Option<Cut> {
        let (mut i, mut j, mut out_len) = (0usize, 0usize, 0usize);
        let mut out = [u32::MAX; MAX_K];
        let (la, lb) = (a.leaves(), b.leaves());
        while i < la.len() || j < lb.len() {
            let v = match (la.get(i), lb.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            if out_len == k {
                return None;
            }
            out[out_len] = v;
            out_len += 1;
        }
        Some(Cut {
            leaves: out,
            len: out_len as u8,
            sig: a.sig | b.sig,
            depth: 0,
            area_flow: 0.0,
        })
    }
}

/// The signature bit of one leaf.
#[inline]
pub(crate) fn sig_bit(leaf: u32) -> u64 {
    1u64 << (leaf % 64)
}

/// Per-node cut sets for a whole netlist.
///
/// Cuts are stored in one flat arena with per-node `(offset, len)` ranges
/// instead of a `Vec<Vec<Cut>>`, so enumeration performs O(1) allocations
/// regardless of netlist size and node ranges stay contiguous in memory.
#[derive(Debug)]
pub struct CutSets {
    /// All kept cuts, node ranges back to back in node-index order.
    pub(crate) arena: Vec<Cut>,
    /// `ranges[n]` — `(offset, len)` of node `n`'s cuts in the arena.
    pub(crate) ranges: Vec<(u32, u32)>,
    /// Best achievable LUT depth per node.
    pub best_depth: Vec<u32>,
    /// Area flow of the best cut per node.
    pub best_area_flow: Vec<f64>,
}

impl CutSets {
    /// The kept cuts of node `node`, best first, ending with the trivial
    /// cut. For inputs and constants this is just the trivial cut.
    pub fn cuts(&self, node: usize) -> &[Cut] {
        let (off, len) = self.ranges[node];
        &self.arena[off as usize..(off + len) as usize]
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of cuts kept across all nodes.
    pub fn total_cuts(&self) -> usize {
        self.arena.len()
    }
}

/// Enumerate priority cuts for every node.
///
/// `k` is the LUT input count (≤ [`MAX_K`]), `keep` the number of cuts
/// retained per node. One-shot wrapper around
/// [`crate::mapper::Mapper::enumerate`]; callers mapping many netlists
/// should hold a [`crate::Mapper`] instead to reuse its scratch arena.
///
/// # Panics
///
/// Panics if `k < 2` (two-input gates need two leaves) or `k` exceeds
/// [`MAX_K`].
pub fn enumerate(netlist: &Netlist, k: usize, keep: usize) -> CutSets {
    crate::mapper::Mapper::new().enumerate(netlist, k, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::adders;
    use afp_netlist::Netlist;

    #[test]
    fn trivial_cut_for_inputs() {
        let mut n = Netlist::new("i");
        let a = n.add_input();
        n.set_outputs(vec![a]);
        let cs = enumerate(&n, 6, 8);
        assert_eq!(cs.cuts(0).len(), 1);
        assert_eq!(cs.cuts(0)[0].leaves(), &[0]);
        assert_eq!(cs.best_depth[0], 0);
    }

    #[test]
    fn chain_of_gates_collapses_into_one_cut() {
        // x = ((a&b)^c)|d : 4 inputs, depth-1 with K=6.
        let mut n = Netlist::new("c");
        let ins = n.add_inputs(4);
        let x1 = n.and(ins[0], ins[1]);
        let x2 = n.xor(x1, ins[2]);
        let x3 = n.or(x2, ins[3]);
        n.set_outputs(vec![x3]);
        let cs = enumerate(&n, 6, 8);
        assert_eq!(cs.best_depth[x3.index()], 1);
        let best = &cs.cuts(x3.index())[0];
        assert_eq!(best.leaves(), &[0, 1, 2, 3]);
    }

    #[test]
    fn k_limits_cut_width() {
        // A 3-level XOR tree over 8 inputs cannot be one LUT-6.
        let mut n = Netlist::new("x8");
        let ins = n.add_inputs(8);
        let l1: Vec<_> = (0..4).map(|i| n.xor(ins[2 * i], ins[2 * i + 1])).collect();
        let l2a = n.xor(l1[0], l1[1]);
        let l2b = n.xor(l1[2], l1[3]);
        let root = n.xor(l2a, l2b);
        n.set_outputs(vec![root]);
        let cs = enumerate(&n, 6, 8);
        assert_eq!(cs.best_depth[root.index()], 2);
        let cs4 = enumerate(&n, 8, 12);
        assert_eq!(cs4.best_depth[root.index()], 1);
    }

    #[test]
    #[should_panic(expected = "k must be 2..=")]
    fn k1_is_rejected() {
        let mut n = Netlist::new("k1");
        let a = n.add_input();
        let b = n.add_input();
        let y = n.and(a, b);
        n.set_outputs(vec![y]);
        let _ = enumerate(&n, 1, 4);
    }

    #[test]
    fn k2_maps_every_gate_individually() {
        let mut n = Netlist::new("k2");
        let ins = n.add_inputs(3);
        let x = n.and(ins[0], ins[1]);
        let y = n.or(x, ins[2]);
        n.set_outputs(vec![y]);
        let cs = enumerate(&n, 2, 4);
        // With K=2 a LUT can absorb at most one 2-input gate.
        assert_eq!(cs.best_depth[y.index()], 2);
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut::trivial(1, 0, 0.0);
        let b = Cut::trivial(2, 0, 0.0);
        let m = Cut::merge(&a, &b, 6).unwrap();
        assert_eq!(m.leaves(), &[1, 2]);
        assert!(Cut::merge(&m, &Cut::trivial(3, 0, 0.0), 2).is_none());
    }

    #[test]
    fn duplicate_leaves_merge_once() {
        let a = Cut::merge(&Cut::trivial(1, 0, 0.0), &Cut::trivial(5, 0, 0.0), 6).unwrap();
        let b = Cut::merge(&Cut::trivial(5, 0, 0.0), &Cut::trivial(9, 0, 0.0), 6).unwrap();
        let m = Cut::merge(&a, &b, 6).unwrap();
        assert_eq!(m.leaves(), &[1, 5, 9]);
    }

    #[test]
    fn signature_is_union_of_leaf_bits() {
        let a = Cut::merge(&Cut::trivial(3, 0, 0.0), &Cut::trivial(67, 0, 0.0), 6).unwrap();
        // 3 and 67 collide modulo 64: two leaves, one signature bit.
        assert_eq!(a.leaves(), &[3, 67]);
        assert_eq!(a.signature(), sig_bit(3));
        let b = Cut::merge(&a, &Cut::trivial(10, 0, 0.0), 6).unwrap();
        assert_eq!(b.signature(), sig_bit(3) | sig_bit(10));
    }

    #[test]
    fn subsumes_is_subset_of_leaves() {
        let ab = Cut::merge(&Cut::trivial(1, 0, 0.0), &Cut::trivial(2, 0, 0.0), 6).unwrap();
        let abc = Cut::merge(&ab, &Cut::trivial(3, 0, 0.0), 6).unwrap();
        assert!(ab.subsumes(&abc));
        assert!(ab.subsumes(&ab));
        assert!(!abc.subsumes(&ab));
        // Signature-equal but not subset: 3 vs 67 (collide mod 64).
        let x = Cut::trivial(3, 0, 0.0);
        let y = Cut::trivial(67, 0, 0.0);
        assert_eq!(x.signature(), y.signature());
        assert!(!x.subsumes(&y));
        assert!(!y.subsumes(&x));
    }

    #[test]
    fn depth_monotone_along_netlist() {
        let add = adders::ripple_carry(8);
        let cs = enumerate(add.netlist(), 6, 8);
        for out in add.netlist().outputs() {
            // Every output is coverable.
            assert!(!cs.cuts(out.index()).is_empty());
        }
        // MSB carry needs more levels than the LSB sum.
        let lsb = add.netlist().outputs()[0].index();
        let msb = add.netlist().outputs()[8].index();
        assert!(cs.best_depth[msb] >= cs.best_depth[lsb]);
    }

    #[test]
    fn arena_ranges_are_contiguous_and_complete() {
        let add = adders::ripple_carry(8);
        let nl = add.netlist();
        let cs = enumerate(nl, 6, 8);
        assert_eq!(cs.num_nodes(), nl.len());
        let mut expect_off = 0u32;
        for node in 0..nl.len() {
            let (off, len) = cs.ranges[node];
            assert_eq!(off, expect_off, "node {node} range not contiguous");
            assert!(len >= 1, "node {node} has no cuts");
            expect_off += len;
            // Last cut of every node is the trivial one.
            let cuts = cs.cuts(node);
            assert_eq!(cuts[cuts.len() - 1].leaves(), &[node as u32]);
        }
        assert_eq!(expect_off as usize, cs.total_cuts());
    }
}

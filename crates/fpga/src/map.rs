//! LUT covering, slice packing and the timing/power models evaluated on
//! the mapped network.

use std::collections::HashMap;

use afp_netlist::{Netlist, Simulator};

use crate::cuts::{self, Cut};
use crate::{FpgaConfig, FpgaReport};

/// One mapped LUT: the node it produces and the nodes feeding it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lut {
    /// Netlist node whose value this LUT computes.
    pub root: usize,
    /// LUT input nets (netlist node indices).
    pub leaves: Vec<usize>,
}

/// Result of technology mapping.
#[derive(Clone, Debug, Default)]
pub struct LutMapping {
    /// Selected LUTs (roots are unique).
    pub luts: Vec<Lut>,
    /// LUT levels on the critical path.
    pub depth: u32,
}

/// Map `netlist` onto K-input LUTs: depth-optimal covering over priority
/// cuts, followed by one area-recovery re-selection pass on non-critical
/// nodes.
pub fn map_luts(netlist: &Netlist, config: &FpgaConfig) -> LutMapping {
    let k = config.arch.lut_inputs;
    let sets = cuts::enumerate(netlist, k, config.cuts_per_node);

    // Global depth target: best achievable depth over the outputs.
    let target: u32 = netlist
        .outputs()
        .iter()
        .map(|o| sets.best_depth[o.index()])
        .max()
        .unwrap_or(0);

    // Required times, seeded at the outputs, refined as we select covers in
    // reverse topological order (node indices are topological, so a simple
    // reverse sweep visits consumers before producers).
    let mut required = vec![u32::MAX; netlist.len()];
    let mut needed = vec![false; netlist.len()];
    for out in netlist.outputs() {
        let i = out.index();
        required[i] = target;
        if netlist.gates()[i].is_logic() {
            needed[i] = true;
        }
    }

    let mut chosen: HashMap<usize, Cut> = HashMap::new();
    for i in (0..netlist.len()).rev() {
        if !needed[i] {
            continue;
        }
        let req = required[i];
        // Among non-trivial cuts (all but the trailing trivial one), pick
        // the min-area-flow cut meeting the required time; fall back to the
        // depth-best cut.
        let node_cuts = &sets.cuts[i];
        let non_trivial = &node_cuts[..node_cuts.len() - 1];
        let pick = non_trivial
            .iter()
            .filter(|c| c.depth <= req)
            .min_by(|a, b| {
                a.area_flow
                    .partial_cmp(&b.area_flow)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(&non_trivial[0]);
        for &leaf in pick.leaves() {
            let leaf = leaf as usize;
            let leaf_req = req.saturating_sub(1);
            required[leaf] = required[leaf].min(leaf_req);
            if netlist.gates()[leaf].is_logic() {
                needed[leaf] = true;
            }
        }
        chosen.insert(i, pick.clone());
    }

    // Materialize LUTs and compute levels.
    let mut luts = Vec::with_capacity(chosen.len());
    let mut level = vec![0u32; netlist.len()];
    for i in 0..netlist.len() {
        if let Some(cut) = chosen.get(&i) {
            let leaves: Vec<usize> = cut.leaves().iter().map(|&l| l as usize).collect();
            level[i] = 1 + leaves.iter().map(|&l| level[l]).max().unwrap_or(0);
            luts.push(Lut { root: i, leaves });
        }
    }
    let depth = netlist
        .outputs()
        .iter()
        .map(|o| level[o.index()])
        .max()
        .unwrap_or(0);
    LutMapping { luts, depth }
}

/// Evaluate packing, timing, power and synthesis-time models on a mapped
/// network, producing the final [`FpgaReport`].
pub fn evaluate(netlist: &Netlist, mapping: &LutMapping, config: &FpgaConfig) -> FpgaReport {
    let arch = &config.arch;
    let luts = mapping.luts.len();
    let slices = luts.div_ceil(arch.luts_per_slice.max(1));

    // Fanout of each LUT output net within the mapped network (+ primary
    // outputs).
    let mut fanout = vec![0u32; netlist.len()];
    for lut in &mapping.luts {
        for &leaf in &lut.leaves {
            fanout[leaf] += 1;
        }
    }
    for out in netlist.outputs() {
        fanout[out.index()] += 1;
    }

    // Timing: topological arrival over the LUT network (roots ascend).
    let mut arrival = vec![0.0f64; netlist.len()];
    for lut in &mapping.luts {
        let in_arr = lut
            .leaves
            .iter()
            .map(|&l| arrival[l])
            .fold(0.0f64, f64::max);
        let route =
            arch.route_base_ns + arch.route_fanout_ns * (1.0 + fanout[lut.root] as f64).ln();
        arrival[lut.root] = in_arr + arch.lut_delay_ns + route;
    }
    let raw_delay = netlist
        .outputs()
        .iter()
        .map(|o| arrival[o.index()])
        .fold(0.0f64, f64::max);

    // Power: switching activities of the LUT output nets.
    let mut sim = Simulator::new(netlist);
    let probs = sim.signal_probabilities(config.activity_passes, config.seed);
    let mut dyn_pj_per_cycle = 0.0f64;
    for lut in &mapping.luts {
        let p = probs[lut.root];
        let activity = 2.0 * p * (1.0 - p);
        dyn_pj_per_cycle +=
            activity * (arch.lut_energy_pj + arch.route_energy_pj * fanout[lut.root] as f64);
    }
    // pJ/cycle * MHz = µW.
    let dynamic_uw = dyn_pj_per_cycle * config.clock_mhz;
    let static_uw = luts as f64 * arch.lut_static_uw;
    let raw_power_mw = (dynamic_uw + static_uw) * 1e-3;

    // Deterministic per-circuit P&R jitter.
    let (dj, pj) = pnr_jitter(netlist, config.pnr_jitter);
    let delay_ns = raw_delay * dj;
    let power_mw = raw_power_mw * pj;

    let synth_time_s = crate::synth_time::estimate(
        netlist.num_logic_gates(),
        luts,
        mapping.depth,
        structural_hash(netlist),
    );

    FpgaReport {
        luts,
        slices,
        depth_levels: mapping.depth,
        delay_ns,
        power_mw,
        synth_time_s,
    }
}

/// FNV-1a hash of the netlist structure; seeds the P&R jitter and the
/// synthesis-time noise so they are deterministic per circuit yet
/// uncorrelated with its size.
pub fn structural_hash(netlist: &Netlist) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for gate in netlist.gates() {
        mix(gate.kind() as u64);
        for op in gate.operands() {
            mix(op.index() as u64);
        }
    }
    for out in netlist.outputs() {
        mix(out.index() as u64);
    }
    h
}

fn pnr_jitter(netlist: &Netlist, magnitude: f64) -> (f64, f64) {
    if magnitude == 0.0 {
        return (1.0, 1.0);
    }
    let h = structural_hash(netlist);
    let u1 = ((h >> 8) & 0xFFFF) as f64 / 65535.0; // [0,1]
    let u2 = ((h >> 32) & 0xFFFF) as f64 / 65535.0;
    (
        1.0 + magnitude * (2.0 * u1 - 1.0),
        1.0 + magnitude * (2.0 * u2 - 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::{adders, multipliers};

    fn cfg() -> FpgaConfig {
        FpgaConfig::default()
    }

    #[test]
    fn mapping_covers_all_outputs() {
        let m = multipliers::wallace_multiplier(8);
        let mapping = map_luts(m.netlist(), &cfg());
        let roots: std::collections::HashSet<usize> = mapping.luts.iter().map(|l| l.root).collect();
        for out in m.netlist().outputs() {
            let g = m.netlist().gates()[out.index()];
            if g.is_logic() {
                assert!(roots.contains(&out.index()), "uncovered output");
            }
        }
    }

    #[test]
    fn mapping_is_a_closed_cover() {
        // Every LUT leaf is either an input, a constant, or another LUT root.
        let m = adders::carry_select(16);
        let mapping = map_luts(m.netlist(), &cfg());
        let roots: std::collections::HashSet<usize> = mapping.luts.iter().map(|l| l.root).collect();
        for lut in &mapping.luts {
            for &leaf in &lut.leaves {
                let g = m.netlist().gates()[leaf];
                assert!(
                    !g.is_logic() || roots.contains(&leaf),
                    "leaf {leaf} is unmapped logic"
                );
            }
        }
    }

    #[test]
    fn mapped_depth_not_worse_than_target() {
        let m = adders::carry_lookahead(16);
        let mapping = map_luts(m.netlist(), &cfg());
        let sets = cuts::enumerate(m.netlist(), 6, 8);
        let target: u32 = m
            .netlist()
            .outputs()
            .iter()
            .map(|o| sets.best_depth[o.index()])
            .max()
            .unwrap();
        assert_eq!(mapping.depth, target, "area recovery broke depth");
    }

    #[test]
    fn area_recovery_does_not_exceed_pure_depth_mapping_size() {
        // With recovery the LUT count should be <= a naive "always best
        // depth cut" cover. We approximate the check by ensuring LUT count
        // is well under gate count.
        let m = multipliers::array_multiplier(8);
        let mapping = map_luts(m.netlist(), &cfg());
        assert!(mapping.luts.len() < m.netlist().num_logic_gates());
    }

    #[test]
    fn structural_hash_distinguishes_netlists() {
        let a = adders::ripple_carry(8);
        let b = adders::carry_skip(8);
        assert_ne!(structural_hash(a.netlist()), structural_hash(b.netlist()));
        assert_eq!(structural_hash(a.netlist()), structural_hash(a.netlist()));
    }

    #[test]
    fn jitter_magnitude_zero_is_identity() {
        let m = adders::ripple_carry(8);
        assert_eq!(pnr_jitter(m.netlist(), 0.0), (1.0, 1.0));
        let (d, p) = pnr_jitter(m.netlist(), 0.1);
        assert!((0.9..=1.1).contains(&d));
        assert!((0.9..=1.1).contains(&p));
    }
}

//! LUT covering, slice packing and the timing/power models evaluated on
//! the mapped network.
//!
//! The algorithms live in the reusable [`crate::Mapper`] engine; the free
//! functions here are one-shot conveniences that build (and drop) a
//! mapper per call. Callers sweeping many netlists — the characterization
//! flow, benches — should hold a [`crate::Mapper`] instead.

use afp_netlist::Netlist;

use crate::mapper::Mapper;
use crate::{FpgaConfig, FpgaReport};

/// One mapped LUT: the node it produces and the nodes feeding it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lut {
    /// Netlist node whose value this LUT computes.
    pub root: usize,
    /// LUT input nets (netlist node indices).
    pub leaves: Vec<usize>,
}

/// Result of technology mapping.
#[derive(Clone, Debug, Default)]
pub struct LutMapping {
    /// Selected LUTs (roots are unique).
    pub luts: Vec<Lut>,
    /// LUT levels on the critical path.
    pub depth: u32,
}

/// Map `netlist` onto K-input LUTs: depth-optimal covering over priority
/// cuts, followed by one area-recovery re-selection pass on non-critical
/// nodes.
pub fn map_luts(netlist: &Netlist, config: &FpgaConfig) -> LutMapping {
    Mapper::new().map_luts(netlist, config)
}

/// Evaluate packing, timing, power and synthesis-time models on a mapped
/// network, producing the final [`FpgaReport`].
pub fn evaluate(netlist: &Netlist, mapping: &LutMapping, config: &FpgaConfig) -> FpgaReport {
    Mapper::new().evaluate(netlist, mapping, config)
}

/// FNV-1a hash of the netlist structure; seeds the P&R jitter and the
/// synthesis-time noise so they are deterministic per circuit yet
/// uncorrelated with its size.
pub fn structural_hash(netlist: &Netlist) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for gate in netlist.gates() {
        mix(gate.kind() as u64);
        for op in gate.operands() {
            mix(op.index() as u64);
        }
    }
    for out in netlist.outputs() {
        mix(out.index() as u64);
    }
    h
}

pub(crate) fn pnr_jitter(netlist: &Netlist, magnitude: f64) -> (f64, f64) {
    if magnitude == 0.0 {
        return (1.0, 1.0);
    }
    let h = structural_hash(netlist);
    let u1 = ((h >> 8) & 0xFFFF) as f64 / 65535.0; // [0,1]
    let u2 = ((h >> 32) & 0xFFFF) as f64 / 65535.0;
    (
        1.0 + magnitude * (2.0 * u1 - 1.0),
        1.0 + magnitude * (2.0 * u2 - 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts;
    use afp_circuits::{adders, multipliers};

    fn cfg() -> FpgaConfig {
        FpgaConfig::default()
    }

    #[test]
    fn mapping_covers_all_outputs() {
        let m = multipliers::wallace_multiplier(8);
        let mapping = map_luts(m.netlist(), &cfg());
        let roots: std::collections::HashSet<usize> = mapping.luts.iter().map(|l| l.root).collect();
        for out in m.netlist().outputs() {
            let g = m.netlist().gates()[out.index()];
            if g.is_logic() {
                assert!(roots.contains(&out.index()), "uncovered output");
            }
        }
    }

    #[test]
    fn mapping_is_a_closed_cover() {
        // Every LUT leaf is either an input, a constant, or another LUT root.
        let m = adders::carry_select(16);
        let mapping = map_luts(m.netlist(), &cfg());
        let roots: std::collections::HashSet<usize> = mapping.luts.iter().map(|l| l.root).collect();
        for lut in &mapping.luts {
            for &leaf in &lut.leaves {
                let g = m.netlist().gates()[leaf];
                assert!(
                    !g.is_logic() || roots.contains(&leaf),
                    "leaf {leaf} is unmapped logic"
                );
            }
        }
    }

    #[test]
    fn mapped_depth_not_worse_than_target() {
        let m = adders::carry_lookahead(16);
        let mapping = map_luts(m.netlist(), &cfg());
        let sets = cuts::enumerate(m.netlist(), 6, 8);
        let target: u32 = m
            .netlist()
            .outputs()
            .iter()
            .map(|o| sets.best_depth[o.index()])
            .max()
            .unwrap();
        assert_eq!(mapping.depth, target, "area recovery broke depth");
    }

    #[test]
    fn area_recovery_does_not_exceed_pure_depth_mapping_size() {
        // With recovery the LUT count should be <= a naive "always best
        // depth cut" cover. We approximate the check by ensuring LUT count
        // is well under gate count.
        let m = multipliers::array_multiplier(8);
        let mapping = map_luts(m.netlist(), &cfg());
        assert!(mapping.luts.len() < m.netlist().num_logic_gates());
    }

    #[test]
    fn structural_hash_distinguishes_netlists() {
        let a = adders::ripple_carry(8);
        let b = adders::carry_skip(8);
        assert_ne!(structural_hash(a.netlist()), structural_hash(b.netlist()));
        assert_eq!(structural_hash(a.netlist()), structural_hash(a.netlist()));
    }

    #[test]
    fn jitter_magnitude_zero_is_identity() {
        let m = adders::ripple_carry(8);
        assert_eq!(pnr_jitter(m.netlist(), 0.0), (1.0, 1.0));
        let (d, p) = pnr_jitter(m.netlist(), 0.1);
        assert!((0.9..=1.1).contains(&d));
        assert!((0.9..=1.1).contains(&p));
    }
}

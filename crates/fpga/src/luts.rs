//! LUT truth-table (INIT mask) computation and mapped-network
//! verification.
//!
//! The mapper in [`crate::map`] selects a structural cover; this module
//! makes it *functional*: each selected cut is folded into the K-input
//! truth table its LUT must be programmed with (the `INIT` value of a
//! Xilinx `LUTK` primitive), the whole mapped network can be re-simulated
//! from those masks alone, and [`verify_mapping`] proves the LUT network
//! equivalent to the source netlist on random stimulus. A Verilog writer
//! emits the mapped netlist as LUT primitives.

use afp_netlist::{Gate, Netlist};

use crate::map::LutMapping;

/// Truth-table masks of the first six LUT input variables over 64
/// simulation lanes: variable `i` toggles with period `2^i`.
const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A programmed LUT: root node, input nets and the truth-table mask.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgrammedLut {
    /// Netlist node whose value this LUT computes.
    pub root: usize,
    /// Input nets (netlist node indices), LSB variable first.
    pub leaves: Vec<usize>,
    /// Truth table: bit `b` is the output for input assignment `b`
    /// (leaf 0 = bit 0 of `b`). Only the low `2^leaves.len()` bits are
    /// meaningful.
    pub init: u64,
}

/// Compute the INIT mask of every mapped LUT by evaluating each cut cone
/// over all leaf assignments (bit-parallel, one pass per LUT).
///
/// # Panics
///
/// Panics if a LUT has more than 6 inputs (masks are single `u64`s).
pub fn program_luts(netlist: &Netlist, mapping: &LutMapping) -> Vec<ProgrammedLut> {
    mapping
        .luts
        .iter()
        .map(|lut| {
            assert!(lut.leaves.len() <= 6, "INIT masks support up to LUT-6");
            let init = cone_truth_table(netlist, lut.root, &lut.leaves);
            ProgrammedLut {
                root: lut.root,
                leaves: lut.leaves.clone(),
                init,
            }
        })
        .collect()
}

/// Truth table of `root` as a function of `leaves`, computed by a
/// bit-parallel sweep over the cut cone.
fn cone_truth_table(netlist: &Netlist, root: usize, leaves: &[usize]) -> u64 {
    // Values for every node in the cone between the leaves and the root.
    let mut value: Vec<Option<u64>> = vec![None; root + 1];
    for (i, &leaf) in leaves.iter().enumerate() {
        value[leaf] = Some(VAR_MASKS[i]);
    }
    // The netlist is topologically ordered, so a forward sweep suffices;
    // nodes outside the cone simply stay `None` and are never read.
    let min_leaf = leaves.iter().copied().min().unwrap_or(root);
    for idx in min_leaf..=root {
        if value[idx].is_some() {
            continue;
        }
        let gate = netlist.gates()[idx];
        let get = |v: &Vec<Option<u64>>, id: afp_netlist::NetId| v[id.index()];
        let computed = match gate {
            Gate::Input(_) => None, // an input that is not a leaf: outside cone
            Gate::Const(c) => Some(if c { u64::MAX } else { 0 }),
            Gate::Buf(a) => get(&value, a),
            Gate::Not(a) => get(&value, a).map(|v| !v),
            Gate::And(a, b) => two(get(&value, a), get(&value, b), |x, y| x & y),
            Gate::Or(a, b) => two(get(&value, a), get(&value, b), |x, y| x | y),
            Gate::Xor(a, b) => two(get(&value, a), get(&value, b), |x, y| x ^ y),
            Gate::Nand(a, b) => two(get(&value, a), get(&value, b), |x, y| !(x & y)),
            Gate::Nor(a, b) => two(get(&value, a), get(&value, b), |x, y| !(x | y)),
            Gate::Xnor(a, b) => two(get(&value, a), get(&value, b), |x, y| !(x ^ y)),
            Gate::Mux(s, a, b) => match (get(&value, s), get(&value, a), get(&value, b)) {
                (Some(sv), Some(av), Some(bv)) => Some((av & !sv) | (bv & sv)),
                _ => None,
            },
            Gate::Maj(a, b, c) => match (get(&value, a), get(&value, b), get(&value, c)) {
                (Some(x), Some(y), Some(z)) => Some((x & y) | (x & z) | (y & z)),
                _ => None,
            },
        };
        value[idx] = computed;
    }
    let table = value[root].expect("root is covered by its own cut cone");
    let bits = 1usize << leaves.len();
    if bits >= 64 {
        table
    } else {
        table & ((1u64 << bits) - 1)
    }
}

fn two(a: Option<u64>, b: Option<u64>, f: impl Fn(u64, u64) -> u64) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(f(x, y)),
        _ => None,
    }
}

/// Evaluate the programmed LUT network on one boolean input assignment.
///
/// Returns the value of every netlist node that is either a primary
/// input, a constant, or a mapped LUT root — enough to read the outputs.
pub fn eval_lut_network(netlist: &Netlist, luts: &[ProgrammedLut], inputs: &[bool]) -> Vec<bool> {
    assert_eq!(inputs.len(), netlist.num_inputs(), "input arity mismatch");
    let mut value = vec![false; netlist.len()];
    for (i, &b) in inputs.iter().enumerate() {
        value[i] = b;
    }
    for (i, gate) in netlist.gates().iter().enumerate() {
        if let Gate::Const(c) = gate {
            value[i] = *c;
        }
    }
    // LUT roots ascend in node order, so one forward pass settles them.
    for lut in luts {
        let mut idx = 0usize;
        for (v, &leaf) in lut.leaves.iter().enumerate() {
            if value[leaf] {
                idx |= 1 << v;
            }
        }
        value[lut.root] = (lut.init >> idx) & 1 == 1;
    }
    netlist.outputs().iter().map(|o| value[o.index()]).collect()
}

/// Check the mapped + programmed LUT network against the source netlist
/// on `vectors` random input assignments (seeded). Returns the number of
/// mismatching vectors (0 = equivalent on the sample).
pub fn verify_mapping(
    netlist: &Netlist,
    luts: &[ProgrammedLut],
    vectors: usize,
    seed: u64,
) -> usize {
    let n = netlist.num_inputs();
    let mut state = seed | 1;
    let mut mismatches = 0usize;
    for _ in 0..vectors {
        let bits: Vec<bool> = (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D) & 1 == 1
            })
            .collect();
        if netlist.eval_bits(&bits) != eval_lut_network(netlist, luts, &bits) {
            mismatches += 1;
        }
    }
    mismatches
}

/// Emit the mapped network as Verilog `LUTK` primitive instances with
/// INIT parameters (the netlist a place-and-route tool would consume).
pub fn to_lut_verilog(netlist: &Netlist, luts: &[ProgrammedLut]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let name: String = netlist
        .name()
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut ports: Vec<String> = (0..netlist.num_inputs())
        .map(|i| format!("pi{i}"))
        .collect();
    ports.extend((0..netlist.num_outputs()).map(|i| format!("po{i}")));
    let _ = writeln!(s, "module {name}_mapped({});", ports.join(", "));
    for i in 0..netlist.num_inputs() {
        let _ = writeln!(s, "  input pi{i};");
    }
    for i in 0..netlist.num_outputs() {
        let _ = writeln!(s, "  output po{i};");
    }
    let net = |idx: usize| -> String {
        match netlist.gates()[idx] {
            Gate::Input(ord) => format!("pi{ord}"),
            Gate::Const(c) => format!("1'b{}", c as u8),
            _ => format!("n{idx}"),
        }
    };
    for lut in luts {
        let _ = writeln!(s, "  wire n{};", lut.root);
    }
    for lut in luts {
        let k = lut.leaves.len().max(1);
        let width = 1usize << k;
        let mut conns: Vec<String> = lut
            .leaves
            .iter()
            .enumerate()
            .map(|(v, &leaf)| format!(".I{v}({})", net(leaf)))
            .collect();
        conns.push(format!(".O(n{})", lut.root));
        let _ = writeln!(
            s,
            "  LUT{k} #(.INIT({width}'h{:0hexw$X})) lut_n{} ({});",
            lut.init
                & if width >= 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                },
            lut.root,
            conns.join(", "),
            hexw = width.div_ceil(4),
        );
    }
    for (p, out) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(s, "  assign po{p} = {};", net(out.index()));
    }
    let _ = writeln!(s, "endmodule");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::map_luts;
    use crate::FpgaConfig;
    use afp_circuits::{adders, multipliers};

    fn program(netlist: &Netlist) -> Vec<ProgrammedLut> {
        let mapping = map_luts(netlist, &FpgaConfig::default());
        program_luts(netlist, &mapping)
    }

    #[test]
    fn single_and_gate_init_is_8() {
        let mut n = Netlist::new("and2");
        let a = n.add_input();
        let b = n.add_input();
        let y = n.and(a, b);
        n.set_outputs(vec![y]);
        let luts = program(&n);
        assert_eq!(luts.len(), 1);
        assert_eq!(luts[0].leaves, vec![a.index(), b.index()]);
        // AND truth table over (v1 v0): only assignment 0b11 -> bit 3.
        assert_eq!(luts[0].init, 0b1000);
    }

    #[test]
    fn xor_chain_collapses_with_correct_table() {
        let mut n = Netlist::new("x3");
        let ins = n.add_inputs(3);
        let x1 = n.xor(ins[0], ins[1]);
        let x2 = n.xor(x1, ins[2]);
        n.set_outputs(vec![x2]);
        let luts = program(&n);
        assert_eq!(luts.len(), 1, "3-input XOR is one LUT");
        // Parity function: 0b1001_0110.
        assert_eq!(luts[0].init, 0b1001_0110);
    }

    #[test]
    fn mapped_adder_is_equivalent_exhaustively() {
        let c = adders::ripple_carry(6);
        let luts = program(c.netlist());
        for a in 0..64u64 {
            for b in 0..64u64 {
                let mut bits = Vec::with_capacity(12);
                for i in 0..6 {
                    bits.push((a >> i) & 1 == 1);
                }
                for i in 0..6 {
                    bits.push((b >> i) & 1 == 1);
                }
                let got = eval_lut_network(c.netlist(), &luts, &bits);
                let want = c.netlist().eval_bits(&bits);
                assert_eq!(got, want, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn verify_mapping_reports_zero_mismatches_on_real_circuits() {
        for nl in [
            adders::carry_lookahead(16).into_netlist(),
            adders::carry_select(12).into_netlist(),
            multipliers::wallace_multiplier(8).into_netlist(),
            multipliers::broken_array(8, 5, 2).into_netlist(),
        ] {
            let luts = program(&nl);
            assert_eq!(
                verify_mapping(&nl, &luts, 256, 0xBEEF),
                0,
                "{} mapping not equivalent",
                nl.name()
            );
        }
    }

    #[test]
    fn verify_mapping_catches_a_corrupted_init() {
        let c = adders::ripple_carry(8);
        let mut luts = program(c.netlist());
        luts[3].init ^= 1; // flip one truth-table entry
        assert!(verify_mapping(c.netlist(), &luts, 256, 0xBEEF) > 0);
    }

    #[test]
    fn lut_verilog_contains_primitives_and_inits() {
        let c = adders::ripple_carry(4);
        let mapping = map_luts(c.netlist(), &FpgaConfig::default());
        let luts = program_luts(c.netlist(), &mapping);
        let v = to_lut_verilog(c.netlist(), &luts);
        assert!(v.contains("module add4u_rca_mapped("));
        assert!(v.contains("LUT"));
        assert!(v.contains(".INIT("));
        assert_eq!(v.matches("LUT").count(), luts.len());
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn constants_inside_cuts_fold_into_the_mask() {
        let mut n = Netlist::new("with_const");
        let a = n.add_input();
        let k = n.constant(true);
        let y = n.xor(a, k); // == NOT a
        n.set_outputs(vec![y]);
        let luts = program(&n);
        assert_eq!(luts.len(), 1);
        // Depending on cut choice the const may be a leaf or folded; in
        // both cases the network must behave as NOT a.
        assert_eq!(eval_lut_network(&n, &luts, &[false]), vec![true]);
        assert_eq!(eval_lut_network(&n, &luts, &[true]), vec![false]);
    }
}

//! The reusable technology-mapping engine.
//!
//! [`Mapper`] owns every scratch buffer the cut enumeration, cover
//! selection and cost evaluation need — the flat cut arena, candidate and
//! keep windows, required/needed/level/fanout/arrival vectors and the
//! simulator stimulus buffers. Mapping a netlist through an existing
//! `Mapper` therefore performs no steady-state allocation: the
//! characterization flow keeps one `Mapper` per worker thread and sweeps
//! the whole circuit library through it.
//!
//! Results are a pure function of `(netlist, config)` — the scratch
//! buffers are fully re-initialized per call — so reusing a `Mapper`, or
//! distributing circuits over any number of worker-owned mappers, yields
//! bit-identical reports (pinned by `tests/cut_engine.rs` and
//! `tests/parallel_determinism.rs`).

use afp_netlist::{Netlist, SimScratch};

use crate::cuts::{Cut, CutSets, MAX_K};
use crate::map::{Lut, LutMapping};
use crate::{FpgaConfig, FpgaReport};

/// Work counters accumulated by a [`Mapper`] across calls.
///
/// Drained with [`Mapper::take_stats`] (the flow workers flush them into
/// the shared `afp-runtime` counters after each circuit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MapperStats {
    /// Leaf-set merges actually performed (passed the signature filter).
    pub cuts_merged: u64,
    /// Merges rejected in O(1) by the signature popcount filter.
    pub cuts_sig_rejected: u64,
    /// Candidate cuts dropped by dominance (superset-of-kept) pruning.
    pub cuts_dominance_pruned: u64,
    /// Calls that reused an already-initialized mapper's buffers.
    pub mapper_reuses: u64,
}

impl MapperStats {
    /// Sum counters element-wise.
    pub fn merge(&mut self, other: &MapperStats) {
        self.cuts_merged += other.cuts_merged;
        self.cuts_sig_rejected += other.cuts_sig_rejected;
        self.cuts_dominance_pruned += other.cuts_dominance_pruned;
        self.mapper_reuses += other.mapper_reuses;
    }
}

/// Reusable LUT-mapping engine: cut enumeration, cover selection and
/// model evaluation with zero steady-state allocation.
///
/// # Example
///
/// ```
/// use afp_circuits::adders;
/// use afp_fpga::{synthesize_fpga, FpgaConfig, Mapper};
///
/// let cfg = FpgaConfig::default();
/// let mut mapper = Mapper::new();
/// for width in [4usize, 8, 12] {
///     let add = adders::ripple_carry(width);
///     let report = mapper.synthesize(add.netlist(), &cfg);
///     // Same numbers as the one-shot entry point.
///     assert_eq!(report, synthesize_fpga(add.netlist(), &cfg));
/// }
/// assert_eq!(mapper.stats().mapper_reuses, 2);
/// ```
#[derive(Debug, Default)]
pub struct Mapper {
    // --- cut enumeration ---
    arena: Vec<Cut>,
    ranges: Vec<(u32, u32)>,
    best_depth: Vec<u32>,
    best_area_flow: Vec<f64>,
    fanout: Vec<u32>,
    /// Sorted bounded keep-window of the node currently being enumerated.
    window: Vec<Cut>,
    prune_dominated: bool,
    // --- cover selection ---
    required: Vec<u32>,
    needed: Vec<bool>,
    /// Arena index of the selected cut per node (`u32::MAX` = unmapped).
    chosen: Vec<u32>,
    level: Vec<u32>,
    // --- mapped network, flat (parallel to `lut_roots`) ---
    lut_roots: Vec<u32>,
    lut_leaf_off: Vec<u32>,
    lut_leaves: Vec<u32>,
    // --- evaluation ---
    net_fanout: Vec<u32>,
    arrival: Vec<f64>,
    sim: SimScratch,
    probs: Vec<f64>,
    stats: MapperStats,
    used: bool,
}

impl Mapper {
    /// A fresh mapper; buffers grow to the largest netlist mapped.
    pub fn new() -> Mapper {
        Mapper::default()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> MapperStats {
        self.stats
    }

    /// Drain the accumulated counters, resetting them to zero.
    pub fn take_stats(&mut self) -> MapperStats {
        std::mem::take(&mut self.stats)
    }

    /// Enable/disable proper-superset dominance pruning for direct
    /// [`Mapper::enumerate`] calls. [`Mapper::synthesize`] and
    /// [`Mapper::map_luts`] take the setting from
    /// [`FpgaConfig::prune_dominated`] instead.
    pub fn set_prune_dominated(&mut self, on: bool) {
        self.prune_dominated = on;
    }

    /// Full synthesis: map `netlist` onto LUTs and evaluate the packing,
    /// timing, power and synthesis-time models.
    ///
    /// Equivalent to [`crate::synthesize_fpga`] but allocation-free after
    /// the first call.
    pub fn synthesize(&mut self, netlist: &Netlist, config: &FpgaConfig) -> FpgaReport {
        self.note_use();
        let depth = self.cover(netlist, config);
        self.evaluate_flat(netlist, config, depth)
    }

    /// Map `netlist` onto K-input LUTs: depth-optimal covering over
    /// priority cuts with area-flow recovery on non-critical nodes.
    ///
    /// Allocates only the returned [`LutMapping`].
    pub fn map_luts(&mut self, netlist: &Netlist, config: &FpgaConfig) -> LutMapping {
        self.note_use();
        let depth = self.cover(netlist, config);
        let luts = (0..self.lut_roots.len())
            .map(|li| {
                let (s, e) = self.leaf_range(li);
                Lut {
                    root: self.lut_roots[li] as usize,
                    leaves: self.lut_leaves[s..e].iter().map(|&l| l as usize).collect(),
                }
            })
            .collect();
        LutMapping { luts, depth }
    }

    /// Evaluate the packing/timing/power/synthesis-time models on an
    /// existing mapping. Equivalent to [`crate::map::evaluate`] but reuses
    /// this mapper's buffers.
    pub fn evaluate(
        &mut self,
        netlist: &Netlist,
        mapping: &LutMapping,
        config: &FpgaConfig,
    ) -> FpgaReport {
        self.note_use();
        self.lut_roots.clear();
        self.lut_leaf_off.clear();
        self.lut_leaves.clear();
        for lut in &mapping.luts {
            self.lut_roots.push(lut.root as u32);
            self.lut_leaf_off.push(self.lut_leaves.len() as u32);
            self.lut_leaves.extend(lut.leaves.iter().map(|&l| l as u32));
        }
        self.lut_leaf_off.push(self.lut_leaves.len() as u32);
        self.evaluate_flat(netlist, config, mapping.depth)
    }

    /// Enumerate priority cuts for every node, returning an owned
    /// [`CutSets`] (the arena buffers move out; the mapper regrows them
    /// on its next call).
    pub fn enumerate(&mut self, netlist: &Netlist, k: usize, keep: usize) -> CutSets {
        self.note_use();
        self.enumerate_into(netlist, k, keep);
        CutSets {
            arena: std::mem::take(&mut self.arena),
            ranges: std::mem::take(&mut self.ranges),
            best_depth: std::mem::take(&mut self.best_depth),
            best_area_flow: std::mem::take(&mut self.best_area_flow),
        }
    }

    fn note_use(&mut self) {
        if self.used {
            self.stats.mapper_reuses += 1;
        }
        self.used = true;
    }

    #[inline]
    fn leaf_range(&self, li: usize) -> (usize, usize) {
        (
            self.lut_leaf_off[li] as usize,
            self.lut_leaf_off[li + 1] as usize,
        )
    }

    /// Enumerate + select + materialize; returns the mapped depth.
    fn cover(&mut self, netlist: &Netlist, config: &FpgaConfig) -> u32 {
        self.prune_dominated = config.prune_dominated;
        self.enumerate_into(netlist, config.arch.lut_inputs, config.cuts_per_node);
        let (target, fallback_used) = self.select_cover(netlist);
        let depth = self.materialize(netlist);
        // With consistent required times the fallback never fires and the
        // cover meets the depth target exactly (see DESIGN.md); if it ever
        // does fire the relaxed required times make depth > target legal.
        if !fallback_used {
            assert_eq!(
                depth, target,
                "LUT cover depth diverged from the depth target without a fallback"
            );
        }
        depth
    }

    /// Priority-cut enumeration into the flat arena.
    fn enumerate_into(&mut self, netlist: &Netlist, k: usize, keep: usize) {
        assert!((2..=MAX_K).contains(&k), "k must be 2..={MAX_K}");
        let n = netlist.len();
        self.arena.clear();
        self.ranges.clear();
        self.ranges.reserve(n);
        self.best_depth.clear();
        self.best_depth.resize(n, 0);
        self.best_area_flow.clear();
        self.best_area_flow.resize(n, 0.0);
        // Fanout (consumers + primary outputs), same convention as
        // `afp_netlist::analyze::fanout`.
        self.fanout.clear();
        self.fanout.resize(n, 0);
        for gate in netlist.gates() {
            for op in gate.operands() {
                self.fanout[op.index()] += 1;
            }
        }
        for out in netlist.outputs() {
            self.fanout[out.index()] += 1;
        }

        for (idx, gate) in netlist.gates().iter().enumerate() {
            if !gate.is_logic() {
                // Inputs and constants: depth 0, free.
                self.ranges.push((self.arena.len() as u32, 1));
                self.arena.push(Cut::trivial(idx as u32, 0, 0.0));
                continue;
            }
            let mut ops = [0usize; 3];
            let mut nops = 0usize;
            for o in gate.operands() {
                ops[nops] = o.index();
                nops += 1;
            }
            let fo = self.fanout[idx].max(1) as f64;
            self.window.clear();
            // Cross product of operand cut sets (each ends with the
            // operand's trivial cut, so "use the operand as a leaf" is
            // always represented). Merging and scoring are fused, and
            // every scored cut goes straight into the bounded keep-window
            // — candidates are never collected, sorted wholesale, or
            // allocated.
            match nops {
                1 => {
                    let (o0, l0) = self.ranges[ops[0]];
                    for ia in o0..o0 + l0 {
                        let mut cut = self.arena[ia as usize].clone();
                        score(&mut cut, &self.best_depth, &self.best_area_flow, fo);
                        insert_window(
                            &mut self.window,
                            cut,
                            keep,
                            self.prune_dominated,
                            &mut self.stats,
                        );
                    }
                }
                2 => {
                    let (o0, l0) = self.ranges[ops[0]];
                    let (o1, l1) = self.ranges[ops[1]];
                    for ia in o0..o0 + l0 {
                        let sa = self.arena[ia as usize].sig;
                        for ib in o1..o1 + l1 {
                            let cb = &self.arena[ib as usize];
                            if (sa | cb.sig).count_ones() as usize > k {
                                self.stats.cuts_sig_rejected += 1;
                                continue;
                            }
                            self.stats.cuts_merged += 1;
                            if let Some(cut) = merge_scored(
                                &self.arena[ia as usize],
                                cb,
                                k,
                                &self.best_depth,
                                &self.best_area_flow,
                                fo,
                            ) {
                                insert_window(
                                    &mut self.window,
                                    cut,
                                    keep,
                                    self.prune_dominated,
                                    &mut self.stats,
                                );
                            }
                        }
                    }
                }
                3 => {
                    let (o0, l0) = self.ranges[ops[0]];
                    let (o1, l1) = self.ranges[ops[1]];
                    let (o2, l2) = self.ranges[ops[2]];
                    for ia in o0..o0 + l0 {
                        let sa = self.arena[ia as usize].sig;
                        for ib in o1..o1 + l1 {
                            let cb = &self.arena[ib as usize];
                            if (sa | cb.sig).count_ones() as usize > k {
                                self.stats.cuts_sig_rejected += 1;
                                continue;
                            }
                            self.stats.cuts_merged += 1;
                            let Some(ab) = Cut::merge(&self.arena[ia as usize], cb, k) else {
                                continue;
                            };
                            for ic in o2..o2 + l2 {
                                let cc = &self.arena[ic as usize];
                                if (ab.sig | cc.sig).count_ones() as usize > k {
                                    self.stats.cuts_sig_rejected += 1;
                                    continue;
                                }
                                self.stats.cuts_merged += 1;
                                if let Some(cut) = merge_scored(
                                    &ab,
                                    cc,
                                    k,
                                    &self.best_depth,
                                    &self.best_area_flow,
                                    fo,
                                ) {
                                    insert_window(
                                        &mut self.window,
                                        cut,
                                        keep,
                                        self.prune_dominated,
                                        &mut self.stats,
                                    );
                                }
                            }
                        }
                    }
                }
                _ => unreachable!("gates have 1..=3 operands"),
            }

            let best = self.window.first().expect("every logic gate has a cut");
            let (best_d, best_af) = (best.depth, best.area_flow);
            self.best_depth[idx] = best_d;
            self.best_area_flow[idx] = best_af;
            let off = self.arena.len() as u32;
            self.arena.append(&mut self.window);
            // The trivial cut lets consumers treat this node as a leaf.
            self.arena.push(Cut::trivial(idx as u32, best_d, best_af));
            self.ranges.push((off, self.arena.len() as u32 - off));
        }
    }

    /// Depth-target cover selection with area-flow recovery, in reverse
    /// topological order. Returns `(depth target, fallback fired)`.
    fn select_cover(&mut self, netlist: &Netlist) -> (u32, bool) {
        let n = netlist.len();
        // Global depth target: best achievable depth over the outputs.
        let target: u32 = netlist
            .outputs()
            .iter()
            .map(|o| self.best_depth[o.index()])
            .max()
            .unwrap_or(0);

        self.required.clear();
        self.required.resize(n, u32::MAX);
        self.needed.clear();
        self.needed.resize(n, false);
        self.chosen.clear();
        self.chosen.resize(n, u32::MAX);
        for out in netlist.outputs() {
            let i = out.index();
            self.required[i] = target;
            if netlist.gates()[i].is_logic() {
                self.needed[i] = true;
            }
        }

        let mut fallback_used = false;
        for i in (0..n).rev() {
            if !self.needed[i] {
                continue;
            }
            let req = self.required[i];
            let (off, len) = self.ranges[i];
            let (off, len) = (off as usize, len as usize);
            // Among non-trivial cuts (all but the trailing trivial one),
            // pick the first min-area-flow cut meeting the required time.
            let mut pick = usize::MAX;
            let mut pick_af = 0.0f64;
            for j in off..off + len - 1 {
                let c = &self.arena[j];
                if c.depth <= req && (pick == usize::MAX || c.area_flow < pick_af) {
                    pick = j;
                    pick_af = c.area_flow;
                }
            }
            let (pick, eff_req) = if pick != usize::MAX {
                (pick, req)
            } else {
                // No cut meets the required time — unreachable when the
                // required times are seeded from the cut sets themselves
                // (see DESIGN.md), but handled explicitly: take the
                // depth-best cut and relax this node's deadline so its
                // leaves inherit consistent required times.
                fallback_used = true;
                (off, req.max(self.arena[off].depth))
            };
            let leaf_req = eff_req.saturating_sub(1);
            for li in 0..self.arena[pick].len as usize {
                let leaf = self.arena[pick].leaves[li] as usize;
                if leaf_req < self.required[leaf] {
                    self.required[leaf] = leaf_req;
                }
                if netlist.gates()[leaf].is_logic() {
                    self.needed[leaf] = true;
                }
            }
            self.chosen[i] = pick as u32;
        }
        (target, fallback_used)
    }

    /// Materialize the flat LUT network from `chosen` and compute levels;
    /// returns the mapped depth.
    fn materialize(&mut self, netlist: &Netlist) -> u32 {
        let n = netlist.len();
        self.level.clear();
        self.level.resize(n, 0);
        self.lut_roots.clear();
        self.lut_leaf_off.clear();
        self.lut_leaves.clear();
        for i in 0..n {
            let ci = self.chosen[i];
            if ci == u32::MAX {
                continue;
            }
            let cut = &self.arena[ci as usize];
            let mut lvl = 0u32;
            for &l in cut.leaves() {
                lvl = lvl.max(self.level[l as usize]);
            }
            self.level[i] = lvl + 1;
            self.lut_roots.push(i as u32);
            self.lut_leaf_off.push(self.lut_leaves.len() as u32);
            self.lut_leaves.extend_from_slice(cut.leaves());
        }
        self.lut_leaf_off.push(self.lut_leaves.len() as u32);
        netlist
            .outputs()
            .iter()
            .map(|o| self.level[o.index()])
            .max()
            .unwrap_or(0)
    }

    /// Packing, timing, power and synthesis-time models over the flat
    /// mapped network (same arithmetic, in the same order, as the
    /// original `map::evaluate`).
    fn evaluate_flat(&mut self, netlist: &Netlist, config: &FpgaConfig, depth: u32) -> FpgaReport {
        let arch = &config.arch;
        let n = netlist.len();
        let luts = self.lut_roots.len();
        let slices = luts.div_ceil(arch.luts_per_slice.max(1));

        // Fanout of each LUT output net within the mapped network
        // (+ primary outputs).
        self.net_fanout.clear();
        self.net_fanout.resize(n, 0);
        for &leaf in &self.lut_leaves {
            self.net_fanout[leaf as usize] += 1;
        }
        for out in netlist.outputs() {
            self.net_fanout[out.index()] += 1;
        }

        // Timing: topological arrival over the LUT network (roots ascend).
        self.arrival.clear();
        self.arrival.resize(n, 0.0);
        for li in 0..luts {
            let root = self.lut_roots[li] as usize;
            let (s, e) = self.leaf_range(li);
            let mut in_arr = 0.0f64;
            for &l in &self.lut_leaves[s..e] {
                in_arr = f64::max(in_arr, self.arrival[l as usize]);
            }
            let route = arch.route_base_ns
                + arch.route_fanout_ns * (1.0 + self.net_fanout[root] as f64).ln();
            self.arrival[root] = in_arr + arch.lut_delay_ns + route;
        }
        let raw_delay = netlist
            .outputs()
            .iter()
            .map(|o| self.arrival[o.index()])
            .fold(0.0f64, f64::max);

        // Power: switching activities of the LUT output nets.
        self.sim.signal_probabilities(
            netlist,
            config.activity_passes,
            config.seed,
            &mut self.probs,
        );
        let mut dyn_pj_per_cycle = 0.0f64;
        for li in 0..luts {
            let root = self.lut_roots[li] as usize;
            let p = self.probs[root];
            let activity = 2.0 * p * (1.0 - p);
            dyn_pj_per_cycle += activity
                * (arch.lut_energy_pj + arch.route_energy_pj * self.net_fanout[root] as f64);
        }
        // pJ/cycle * MHz = µW.
        let dynamic_uw = dyn_pj_per_cycle * config.clock_mhz;
        let static_uw = luts as f64 * arch.lut_static_uw;
        let raw_power_mw = (dynamic_uw + static_uw) * 1e-3;

        // Deterministic per-circuit P&R jitter.
        let (dj, pj) = crate::map::pnr_jitter(netlist, config.pnr_jitter);
        let delay_ns = raw_delay * dj;
        let power_mw = raw_power_mw * pj;

        let synth_time_s = crate::synth_time::estimate(
            netlist.num_logic_gates(),
            luts,
            depth,
            crate::map::structural_hash(netlist),
        );

        FpgaReport {
            luts,
            slices,
            depth_levels: depth,
            delay_ns,
            power_mw,
            synth_time_s,
        }
    }
}

/// Ranking order: depth first, then area flow. Area flow is compared
/// with the workspace total-order policy ([`afp_ord::asc`]): a NaN (never
/// produced by well-formed netlists, but possible on pathological inputs)
/// ranks worst instead of poisoning the keep-window order.
#[inline]
fn cut_order(a: &Cut, b: &Cut) -> std::cmp::Ordering {
    a.depth
        .cmp(&b.depth)
        .then_with(|| afp_ord::asc(a.area_flow, b.area_flow))
}

/// Score `cut` for a node with fanout `fo` from its leaves' best metrics.
#[inline]
fn score(cut: &mut Cut, best_depth: &[u32], best_area_flow: &[f64], fo: f64) {
    let mut d = 0u32;
    let mut af = 1.0; // this LUT
    for &leaf in cut.leaves() {
        d = d.max(best_depth[leaf as usize]);
        af += best_area_flow[leaf as usize];
    }
    cut.depth = d + 1;
    cut.area_flow = af / fo;
}

/// [`Cut::merge`] fused with [`score`]: the depth/area-flow accumulation
/// rides the merge loop so each leaf is visited exactly once.
fn merge_scored(
    a: &Cut,
    b: &Cut,
    k: usize,
    best_depth: &[u32],
    best_area_flow: &[f64],
    fo: f64,
) -> Option<Cut> {
    let (mut i, mut j, mut out_len) = (0usize, 0usize, 0usize);
    let mut out = [u32::MAX; MAX_K];
    let mut d = 0u32;
    let mut af = 1.0; // this LUT
    let (la, lb) = (a.leaves(), b.leaves());
    while i < la.len() || j < lb.len() {
        let v = match (la.get(i), lb.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if out_len == k {
            return None;
        }
        out[out_len] = v;
        out_len += 1;
        d = d.max(best_depth[v as usize]);
        af += best_area_flow[v as usize];
    }
    Some(Cut {
        leaves: out,
        len: out_len as u8,
        sig: a.sig | b.sig,
        depth: d + 1,
        area_flow: af / fo,
    })
}

/// Insert a scored cut into the sorted bounded keep-window.
///
/// Stable upper-bound insertion with worst-element eviction is equivalent
/// to collecting every candidate, stable-sorting by (depth, area_flow),
/// deduplicating equal leaf sets and truncating to `keep` — the historical
/// algorithm — because the window maximum is non-increasing once the
/// window is full, so a cut rejected (or evicted) once can never have a
/// later duplicate admitted. With `prune_dominated` the window also
/// rejects proper supersets of kept cuts and evicts kept supersets of the
/// newcomer.
fn insert_window(
    window: &mut Vec<Cut>,
    cut: Cut,
    keep: usize,
    prune_dominated: bool,
    stats: &mut MapperStats,
) {
    let pos = window.partition_point(|x| cut_order(x, &cut) != std::cmp::Ordering::Greater);
    if pos >= keep {
        // Window full and the cut ranks at/after its end: drop it. (Any
        // duplicate or dominated cut landing here is already accounted
        // for by ranking alone.)
        return;
    }
    if prune_dominated {
        for c in window.iter() {
            if c.subsumes(&cut) {
                stats.cuts_dominance_pruned += 1;
                return;
            }
        }
        let before = window.len();
        window.retain(|c| !cut.subsumes(c));
        stats.cuts_dominance_pruned += (before - window.len()) as u64;
        // Evictions may have shifted the insertion point.
        let pos = window.partition_point(|x| cut_order(x, &cut) != std::cmp::Ordering::Greater);
        if window.len() == keep {
            window.pop();
        }
        window.insert(pos, cut);
    } else {
        // Equal leaf sets rank identically, so a duplicate of any kept
        // cut is nearby in the window; the signature prefilter makes the
        // scan cheap.
        for c in window.iter() {
            if c.sig == cut.sig && c.leaves() == cut.leaves() {
                stats.cuts_dominance_pruned += 1;
                return;
            }
        }
        if window.len() == keep {
            window.pop();
        }
        window.insert(pos, cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::{adders, multipliers};

    #[test]
    fn reuse_is_bit_identical_to_fresh() {
        let cfg = FpgaConfig::default();
        let circuits = [
            adders::ripple_carry(8).into_netlist(),
            multipliers::wallace_multiplier(8).into_netlist(),
            adders::carry_lookahead(16).into_netlist(),
        ];
        let mut shared = Mapper::new();
        for nl in &circuits {
            let fresh = Mapper::new().synthesize(nl, &cfg);
            let reused = shared.synthesize(nl, &cfg);
            assert_eq!(fresh, reused, "{}", nl.name());
        }
        assert_eq!(shared.stats().mapper_reuses, 2);
        assert!(shared.stats().cuts_merged > 0);
        assert!(shared.stats().cuts_sig_rejected > 0);
        assert!(shared.stats().cuts_dominance_pruned > 0);
    }

    #[test]
    fn mapper_matches_free_functions() {
        let cfg = FpgaConfig::default();
        let nl = multipliers::wallace_multiplier(6).into_netlist();
        let mut m = Mapper::new();
        let mapping_a = m.map_luts(&nl, &cfg);
        let mapping_b = crate::map::map_luts(&nl, &cfg);
        assert_eq!(mapping_a.depth, mapping_b.depth);
        assert_eq!(mapping_a.luts, mapping_b.luts);
        let ra = m.evaluate(&nl, &mapping_a, &cfg);
        let rb = crate::map::evaluate(&nl, &mapping_b, &cfg);
        assert_eq!(ra, rb);
    }

    #[test]
    fn take_stats_drains() {
        let cfg = FpgaConfig::default();
        let nl = adders::ripple_carry(4).into_netlist();
        let mut m = Mapper::new();
        m.synthesize(&nl, &cfg);
        let s = m.take_stats();
        assert!(s.cuts_merged > 0);
        assert_eq!(m.stats(), MapperStats::default());
    }

    #[test]
    fn dominated_candidates_are_pruned() {
        // {1} dominates {1,2}: inserting the superset second must drop
        // it, inserting it first must evict it. Give the subset a lower
        // area flow so it ranks ahead of the superset either way.
        let mut a = Cut::trivial(1, 0, 0.0);
        let mut ab = Cut::merge(&Cut::trivial(1, 0, 0.0), &Cut::trivial(2, 0, 0.0), 6).unwrap();
        a.depth = 1;
        a.area_flow = 1.0;
        ab.depth = 1;
        ab.area_flow = 2.0;
        let mut stats = MapperStats::default();
        let mut window = Vec::new();
        insert_window(&mut window, a.clone(), 8, true, &mut stats);
        insert_window(&mut window, ab.clone(), 8, true, &mut stats);
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].leaves(), &[1]);
        let mut window = Vec::new();
        insert_window(&mut window, ab, 8, true, &mut stats);
        insert_window(&mut window, a, 8, true, &mut stats);
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].leaves(), &[1]);
        assert_eq!(stats.cuts_dominance_pruned, 2);
    }

    #[test]
    fn duplicate_insertion_is_rejected_in_legacy_mode() {
        let mut a = Cut::merge(&Cut::trivial(1, 0, 0.0), &Cut::trivial(2, 0, 0.0), 6).unwrap();
        a.depth = 1;
        a.area_flow = 1.0;
        let mut stats = MapperStats::default();
        let mut window = Vec::new();
        insert_window(&mut window, a.clone(), 8, false, &mut stats);
        insert_window(&mut window, a, 8, false, &mut stats);
        assert_eq!(window.len(), 1);
        assert_eq!(stats.cuts_dominance_pruned, 1);
    }

    #[test]
    fn pruned_mode_never_worse_and_dominance_free() {
        // Pruning dominated cuts frees window slots for otherwise
        // truncated candidates, so per-node best depth can only improve
        // (the subset of every dropped cut stays kept), and no kept cut
        // may dominate another.
        for nl in [
            adders::carry_lookahead(16).into_netlist(),
            multipliers::wallace_multiplier(8).into_netlist(),
        ] {
            let legacy = Mapper::new().enumerate(&nl, 6, 8);
            let mut m = Mapper::new();
            m.set_prune_dominated(true);
            let pruned = m.enumerate(&nl, 6, 8);
            assert!(m.stats().cuts_dominance_pruned > 0, "{}", nl.name());
            for node in 0..nl.len() {
                assert!(
                    pruned.best_depth[node] <= legacy.best_depth[node],
                    "{} node {node}: pruning worsened depth",
                    nl.name()
                );
                let cuts = pruned.cuts(node);
                let non_trivial = &cuts[..cuts.len() - 1];
                for (i, a) in non_trivial.iter().enumerate() {
                    for (j, b) in non_trivial.iter().enumerate() {
                        assert!(
                            i == j || !a.subsumes(b),
                            "{} node {node}: kept cut dominates another",
                            nl.name()
                        );
                    }
                }
            }
        }
    }
}

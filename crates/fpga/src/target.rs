//! Named device profiles: curated [`FpgaArch`] + clocking defaults for
//! the fabrics the flow can retarget.
//!
//! The paper's central observation is that cost *rankings* shift when the
//! implementation fabric changes (ASIC standard cells vs a LUT-6 FPGA);
//! its follow-up Xel-FPGAs generalizes the methodology across FPGA
//! platforms, where the same shift happens again between LUT-4, LUT-6 and
//! ALM-based devices. This module gives those fabrics stable names so the
//! rest of the workspace — the characterization cache, circuit records,
//! run reports and the CLI — can ask the retargeting question explicitly:
//! *does the pareto front survive a move from target A to target B?*
//!
//! Every profile is a curated [`FpgaArch`] plus clock and P&R-jitter
//! defaults. The relative numbers are calibrated against public device
//! characteristics, not measured silicon; what matters for the
//! methodology is that the *ratios* between LUT delay, routing delay and
//! energy differ across profiles the way they do across real device
//! families.
//!
//! [`DEFAULT_TARGET`] (`lut6-7series`) reproduces [`FpgaConfig::default`]
//! byte-for-byte: retargeting is strictly additive, and the historical
//! goldens stay pinned to the default profile.

use crate::{FpgaArch, FpgaConfig};

/// A named device profile: architecture plus clocking defaults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetProfile {
    /// Stable registry name (kebab-case, e.g. `lut6-7series`).
    pub name: &'static str,
    /// One-line description of what the profile models.
    pub description: &'static str,
    /// Architecture constants (LUT size, packing, delay/energy model).
    pub arch: FpgaArch,
    /// Default operating clock in MHz.
    pub clock_mhz: f64,
    /// Default P&R jitter magnitude (see [`FpgaConfig::pnr_jitter`]).
    pub pnr_jitter: f64,
}

/// Name of the default profile — the 7-series-like LUT-6 fabric every
/// historical golden was captured on.
pub const DEFAULT_TARGET: &str = "lut6-7series";

/// The built-in device-profile registry, in stable presentation order.
///
/// `lut6-7series` is byte-for-byte the workspace default; the other
/// profiles change the LUT size, packing density, delay/energy ratios and
/// clocking the way the corresponding real device families do relative to
/// 7-series.
pub const REGISTRY: [TargetProfile; 4] = [
    TargetProfile {
        name: "lut4-ice40",
        description: "iCE40-like low-power LUT-4 fabric: small logic cells, \
                      slow routing, very low static power",
        arch: FpgaArch {
            lut_inputs: 4,
            luts_per_slice: 8,
            lut_delay_ns: 0.44,
            route_base_ns: 0.65,
            route_fanout_ns: 0.30,
            lut_energy_pj: 0.5,
            route_energy_pj: 0.25,
            lut_static_uw: 1.1,
        },
        clock_mhz: 48.0,
        pnr_jitter: 0.10,
    },
    TargetProfile {
        name: DEFAULT_TARGET,
        description: "7-series-like LUT-6 fabric (the workspace default; \
                      all historical goldens are pinned to it)",
        arch: FpgaArch {
            lut_inputs: 6,
            luts_per_slice: 4,
            lut_delay_ns: 0.124,
            route_base_ns: 0.35,
            route_fanout_ns: 0.18,
            lut_energy_pj: 0.9,
            route_energy_pj: 0.35,
            lut_static_uw: 3.5,
        },
        clock_mhz: 200.0,
        pnr_jitter: 0.08,
    },
    TargetProfile {
        name: "lut6-ultrascale",
        description: "UltraScale+-like LUT-6 fabric: denser CLB packing, \
                      faster LUTs and routing, higher default clock",
        arch: FpgaArch {
            lut_inputs: 6,
            luts_per_slice: 8,
            lut_delay_ns: 0.09,
            route_base_ns: 0.25,
            route_fanout_ns: 0.14,
            lut_energy_pj: 0.7,
            route_energy_pj: 0.28,
            lut_static_uw: 2.8,
        },
        clock_mhz: 400.0,
        pnr_jitter: 0.06,
    },
    TargetProfile {
        name: "alm-stratix",
        description: "Stratix-like ALM fabric: adaptive 6-input logic \
                      modules, wide LABs, higher per-toggle energy",
        arch: FpgaArch {
            lut_inputs: 6,
            luts_per_slice: 10,
            lut_delay_ns: 0.11,
            route_base_ns: 0.30,
            route_fanout_ns: 0.16,
            lut_energy_pj: 1.1,
            route_energy_pj: 0.40,
            lut_static_uw: 4.2,
        },
        clock_mhz: 300.0,
        pnr_jitter: 0.07,
    },
];

/// The built-in registry in presentation order.
pub fn registry() -> &'static [TargetProfile] {
    &REGISTRY
}

/// Look up a profile by its registry name.
pub fn named(name: &str) -> Option<&'static TargetProfile> {
    REGISTRY.iter().find(|p| p.name == name)
}

/// The default profile (`lut6-7series`).
pub fn default_profile() -> &'static TargetProfile {
    named(DEFAULT_TARGET).expect("default profile is registered")
}

impl TargetProfile {
    /// A fresh [`FpgaConfig`] for this target: profile architecture and
    /// clocking on top of the workspace defaults for everything else
    /// (cut budget, activity passes, seed, pruning).
    pub fn config(&self) -> FpgaConfig {
        self.apply(&FpgaConfig::default())
    }

    /// Retarget an existing configuration: replace the architecture,
    /// clock, jitter and target identity, keep every other knob
    /// (`cuts_per_node`, `activity_passes`, `seed`, `prune_dominated`)
    /// from `base`.
    pub fn apply(&self, base: &FpgaConfig) -> FpgaConfig {
        FpgaConfig {
            arch: self.arch,
            clock_mhz: self.clock_mhz,
            pnr_jitter: self.pnr_jitter,
            target: self.name.to_string(),
            ..base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
        assert!(REGISTRY.len() >= 4);
        for p in registry() {
            assert!(!p.description.is_empty(), "{} lacks a description", p.name);
            assert!(named(p.name).is_some());
        }
        assert!(named("no-such-fabric").is_none());
    }

    #[test]
    fn default_profile_is_byte_identical_to_default_config() {
        let d = FpgaConfig::default();
        let p = default_profile().config();
        assert_eq!(p.target, DEFAULT_TARGET);
        assert_eq!(p.arch.lut_inputs, d.arch.lut_inputs);
        assert_eq!(p.arch.luts_per_slice, d.arch.luts_per_slice);
        assert_eq!(p.arch.lut_delay_ns.to_bits(), d.arch.lut_delay_ns.to_bits());
        assert_eq!(
            p.arch.route_base_ns.to_bits(),
            d.arch.route_base_ns.to_bits()
        );
        assert_eq!(
            p.arch.route_fanout_ns.to_bits(),
            d.arch.route_fanout_ns.to_bits()
        );
        assert_eq!(
            p.arch.lut_energy_pj.to_bits(),
            d.arch.lut_energy_pj.to_bits()
        );
        assert_eq!(
            p.arch.route_energy_pj.to_bits(),
            d.arch.route_energy_pj.to_bits()
        );
        assert_eq!(
            p.arch.lut_static_uw.to_bits(),
            d.arch.lut_static_uw.to_bits()
        );
        assert_eq!(p.clock_mhz.to_bits(), d.clock_mhz.to_bits());
        assert_eq!(p.pnr_jitter.to_bits(), d.pnr_jitter.to_bits());
        assert_eq!(p.cuts_per_node, d.cuts_per_node);
        assert_eq!(p.activity_passes, d.activity_passes);
        assert_eq!(p.seed, d.seed);
        assert_eq!(p.prune_dominated, d.prune_dominated);
    }

    #[test]
    fn apply_preserves_non_target_knobs() {
        let base = FpgaConfig {
            cuts_per_node: 12,
            activity_passes: 7,
            seed: 42,
            prune_dominated: true,
            ..FpgaConfig::default()
        };
        let retargeted = named("lut4-ice40").unwrap().apply(&base);
        assert_eq!(retargeted.target, "lut4-ice40");
        assert_eq!(retargeted.arch.lut_inputs, 4);
        assert_eq!(retargeted.cuts_per_node, 12);
        assert_eq!(retargeted.activity_passes, 7);
        assert_eq!(retargeted.seed, 42);
        assert!(retargeted.prune_dominated);
    }

    #[test]
    fn all_luts_fit_init_masks() {
        // `luts::program_luts` stores truth tables in single u64 INIT
        // masks, so no registered profile may exceed LUT-6; gates have up
        // to three operands, so cut enumeration needs at least K=3.
        for p in registry() {
            assert!(
                (3..=6).contains(&p.arch.lut_inputs),
                "{}: K={} outside the supported 3..=6",
                p.name,
                p.arch.lut_inputs
            );
            assert!(p.arch.luts_per_slice >= 1);
            assert!(p.clock_mhz > 0.0);
            assert!((0.0..0.5).contains(&p.pnr_jitter));
        }
    }
}

//! Synthesis wall-clock time model.
//!
//! The ApproxFPGAs paper's headline efficiency claim (Fig. 3) is about the
//! *time a commercial tool-flow spends* synthesizing and implementing each
//! candidate circuit — on their machine roughly 100 s to half an hour per
//! arithmetic block, dominated by placement/routing heuristics rather than
//! circuit evaluation. This reproduction's mapper runs in microseconds, so
//! the flow instead *accounts* modeled per-circuit synthesis time and uses
//! it everywhere the paper reports exploration time.
//!
//! The model is affine in circuit size with a deterministic ±15% noise
//! term seeded by the circuit's structural hash:
//!
//! `t = BASE + GATE_S·gates + LUT_S·luts + DEPTH_S·depth` (seconds).
//!
//! Constants are calibrated so the six default library sizes land near the
//! paper's cumulative 82.4 days for exhaustive exploration (see
//! EXPERIMENTS.md).

/// Fixed tool start-up / elaboration cost in seconds.
pub const BASE_S: f64 = 60.0;
/// Seconds per logic gate (synthesis + optimization passes).
pub const GATE_S: f64 = 1.0;
/// Seconds per mapped LUT (placement + routing effort).
pub const LUT_S: f64 = 2.0;
/// Seconds per LUT level (timing closure iterations).
pub const DEPTH_S: f64 = 4.0;
/// Relative magnitude of the deterministic noise term.
pub const NOISE: f64 = 0.15;

/// Modeled synthesis + implementation wall time for one circuit, in
/// seconds.
///
/// `structural_hash` seeds the noise term; see
/// [`crate::map::structural_hash`].
pub fn estimate(gates: usize, luts: usize, depth: u32, structural_hash: u64) -> f64 {
    let nominal = BASE_S + GATE_S * gates as f64 + LUT_S * luts as f64 + DEPTH_S * depth as f64;
    let u = ((structural_hash >> 16) & 0xFFFF) as f64 / 65535.0;
    nominal * (1.0 + NOISE * (2.0 * u - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_with_every_term() {
        let base = estimate(100, 30, 10, 0x8000_0000_0000_0000);
        assert!(estimate(200, 30, 10, 0x8000_0000_0000_0000) > base);
        assert!(estimate(100, 60, 10, 0x8000_0000_0000_0000) > base);
        assert!(estimate(100, 30, 20, 0x8000_0000_0000_0000) > base);
    }

    #[test]
    fn noise_stays_within_bounds() {
        let lo = estimate(100, 30, 10, 0); // u = 0 -> -15%
        let hi = estimate(100, 30, 10, u64::MAX); // u = 1 -> +15%
        let nominal = BASE_S + GATE_S * 100.0 + LUT_S * 30.0 + DEPTH_S * 10.0;
        assert!((lo - nominal * 0.85).abs() < 1e-6);
        assert!((hi - nominal * 1.15).abs() < 1.0);
        assert!(lo < hi);
    }

    #[test]
    fn typical_8bit_multiplier_lands_in_vivado_range() {
        // ~350 gates, ~90 LUTs, ~12 levels: a few hundred seconds.
        let t = estimate(350, 90, 12, 0x1234_5678_9ABC_DEF0);
        assert!((300.0..1200.0).contains(&t), "got {t}");
    }
}

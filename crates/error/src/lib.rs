//! Behavioural error analysis of approximate arithmetic circuits.
//!
//! Computes the error metrics used throughout the ApproxFPGAs reproduction,
//! most importantly the paper's **MED** — the mean absolute error distance
//! normalized by the maximum output value — plus worst-case error, mean
//! relative error, error probability, MSE and signed bias.
//!
//! Evaluation is exhaustive for small operand widths (all `2^(2w)` input
//! pairs) and switches to a deterministic stratified sample for wide
//! operands, mirroring how behavioural models of 12/16-bit circuits are
//! evaluated in practice.
//!
//! # Example
//!
//! ```
//! use afp_circuits::adders::{loa, ripple_carry};
//! use afp_error::{analyze, ErrorConfig};
//!
//! let cfg = ErrorConfig::default();
//! let exact = analyze(&ripple_carry(8), &cfg);
//! assert_eq!(exact.wce, 0);
//! assert_eq!(exact.med, 0.0);
//!
//! let approx = analyze(&loa(8, 4), &cfg);
//! assert!(approx.med > 0.0);
//! assert!(approx.wce > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use afp_circuits::{ArithCircuit, BatchEvaluator};

/// Configuration for [`analyze`].
#[derive(Clone, Debug)]
pub struct ErrorConfig {
    /// Evaluate exhaustively when the total input width `2w` does not
    /// exceed this many bits (default 16, i.e. 8-bit operands).
    pub max_exhaustive_bits: usize,
    /// Sample size for the stratified evaluation of wider circuits.
    pub samples: usize,
    /// Seed for the sampled strata.
    pub seed: u64,
}

impl Default for ErrorConfig {
    fn default() -> ErrorConfig {
        ErrorConfig {
            max_exhaustive_bits: 16,
            samples: 1 << 16,
            seed: 0xE44_0001,
        }
    }
}

/// Error metrics of one circuit against its golden function.
///
/// All means are over the evaluated input set (exhaustive or sampled, see
/// [`ErrorMetrics::samples`] and [`ErrorMetrics::exhaustive`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorMetrics {
    /// Number of input pairs evaluated.
    pub samples: u64,
    /// Whether the evaluation covered every input pair.
    pub exhaustive: bool,
    /// The paper's MED: mean absolute error / maximum output value.
    pub med: f64,
    /// Mean absolute error (unnormalized).
    pub mae: f64,
    /// Worst-case absolute error observed.
    pub wce: u64,
    /// Worst-case error / maximum output value.
    pub wce_rel: f64,
    /// Mean relative error `|err| / exact`, over pairs with `exact != 0`.
    pub mre: f64,
    /// Fraction of input pairs with a non-zero error.
    pub error_prob: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Mean signed error (negative = the circuit under-estimates).
    pub bias: f64,
}

impl ErrorMetrics {
    /// Metrics of a perfectly exact circuit over `samples` pairs.
    pub fn zero(samples: u64, exhaustive: bool) -> ErrorMetrics {
        ErrorMetrics {
            samples,
            exhaustive,
            med: 0.0,
            mae: 0.0,
            wce: 0,
            wce_rel: 0.0,
            mre: 0.0,
            error_prob: 0.0,
            mse: 0.0,
            bias: 0.0,
        }
    }

    /// True if no error was observed on any evaluated pair.
    pub fn is_exact(&self) -> bool {
        self.wce == 0
    }
}

/// Analyze `circuit` against its golden function under `config`.
///
/// Exhaustive when `2 * width <= config.max_exhaustive_bits`, otherwise a
/// deterministic stratified sample of `config.samples` pairs: one third
/// uniform, one third with a short operand (exercising low-magnitude
/// behaviour), one third near the operand maximum (exercising long carry
/// chains), plus the four corner pairs.
pub fn analyze(circuit: &ArithCircuit, config: &ErrorConfig) -> ErrorMetrics {
    let w = circuit.width();
    let exhaustive = 2 * w <= config.max_exhaustive_bits;
    let mut acc = Accumulator::new(circuit.kind().max_output(w) as f64);
    let mut batch = BatchEvaluator::new(circuit);
    if exhaustive {
        let mask = (1u64 << w) - 1;
        let mut chunk: Vec<(u64, u64)> = Vec::with_capacity(64);
        for a in 0..=mask {
            for b in 0..=mask {
                chunk.push((a, b));
                if chunk.len() == 64 {
                    accumulate(circuit, &mut batch, &chunk, &mut acc);
                    chunk.clear();
                }
            }
        }
        if !chunk.is_empty() {
            accumulate(circuit, &mut batch, &chunk, &mut acc);
        }
    } else {
        let pairs = stratified_pairs(w, config.samples, config.seed);
        for chunk in pairs.chunks(64) {
            accumulate(circuit, &mut batch, chunk, &mut acc);
        }
    }
    acc.finish(exhaustive)
}

fn accumulate(
    circuit: &ArithCircuit,
    batch: &mut BatchEvaluator<'_>,
    pairs: &[(u64, u64)],
    acc: &mut Accumulator,
) {
    let got = batch.eval_chunk(pairs);
    for (&(a, b), &g) in pairs.iter().zip(&got) {
        acc.push(circuit.exact(a, b), g);
    }
}

/// The deterministic stratified sample used for wide circuits.
pub fn stratified_pairs(width: usize, samples: usize, seed: u64) -> Vec<(u64, u64)> {
    let mask = (1u64 << width) - 1;
    let mut pairs = Vec::with_capacity(samples + 4);
    pairs.extend_from_slice(&[(0, 0), (mask, mask), (0, mask), (mask, 0)]);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let third = samples / 3;
    for _ in 0..third {
        let v = next();
        pairs.push((v & mask, (v >> 32) & mask));
    }
    // Low-magnitude stratum: one operand confined to the low half bits.
    let low_mask = (1u64 << (width / 2)) - 1;
    for _ in 0..third {
        let v = next();
        pairs.push((v & low_mask, (v >> 32) & mask));
    }
    // Long-carry stratum: operands near the maximum.
    for _ in 0..(samples - 2 * third) {
        let v = next();
        pairs.push((mask - (v & low_mask), mask - ((v >> 32) & low_mask)));
    }
    pairs
}

struct Accumulator {
    max_out: f64,
    n: u64,
    sum_abs: f64,
    sum_signed: f64,
    sum_sq: f64,
    wce: u64,
    nonzero: u64,
    sum_rel: f64,
    rel_n: u64,
}

impl Accumulator {
    fn new(max_out: f64) -> Accumulator {
        Accumulator {
            max_out,
            n: 0,
            sum_abs: 0.0,
            sum_signed: 0.0,
            sum_sq: 0.0,
            wce: 0,
            nonzero: 0,
            sum_rel: 0.0,
            rel_n: 0,
        }
    }

    fn push(&mut self, exact: u64, got: u64) {
        let err = got as i64 - exact as i64;
        let abs = err.unsigned_abs();
        self.n += 1;
        self.sum_abs += abs as f64;
        self.sum_signed += err as f64;
        self.sum_sq += (abs as f64) * (abs as f64);
        self.wce = self.wce.max(abs);
        if abs != 0 {
            self.nonzero += 1;
        }
        if exact != 0 {
            self.sum_rel += abs as f64 / exact as f64;
            self.rel_n += 1;
        }
    }

    fn finish(self, exhaustive: bool) -> ErrorMetrics {
        let n = self.n.max(1) as f64;
        ErrorMetrics {
            samples: self.n,
            exhaustive,
            med: self.sum_abs / n / self.max_out,
            mae: self.sum_abs / n,
            wce: self.wce,
            wce_rel: self.wce as f64 / self.max_out,
            mre: self.sum_rel / self.rel_n.max(1) as f64,
            error_prob: self.nonzero as f64 / n,
            mse: self.sum_sq / n,
            bias: self.sum_signed / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::adders;
    use afp_circuits::multipliers;

    fn cfg() -> ErrorConfig {
        ErrorConfig::default()
    }

    #[test]
    fn exact_adder_has_zero_metrics() {
        for c in [
            adders::ripple_carry(8),
            adders::carry_lookahead(8),
            adders::carry_select(8),
        ] {
            let m = analyze(&c, &cfg());
            assert!(m.is_exact(), "{}", c.name());
            assert_eq!(m.samples, 65536);
            assert!(m.exhaustive);
            assert_eq!(m, ErrorMetrics::zero(65536, true));
        }
    }

    #[test]
    fn truncated_adder_med_matches_closed_form() {
        // Truncated adder k=1: both the LSB sum and its carry are lost, so
        // the error on a pair is a0 + b0: mean (0+1+1+2)/4 = 1.0, worst 2.
        let c = adders::truncated(8, 1);
        let m = analyze(&c, &cfg());
        let expected_mae = 1.0;
        assert!((m.mae - expected_mae).abs() < 1e-9, "mae {}", m.mae);
        assert!((m.med - expected_mae / 511.0).abs() < 1e-12);
        assert_eq!(m.wce, 2);
        assert!(m.bias < 0.0, "truncation under-estimates");
    }

    #[test]
    fn loa_error_probability_is_positive_but_partial() {
        let m = analyze(&adders::loa(8, 4), &cfg());
        assert!(m.error_prob > 0.0 && m.error_prob < 1.0);
        assert!(m.wce < 32, "LOA(4) wce bounded: {}", m.wce);
    }

    #[test]
    fn med_increases_with_truncation_level() {
        let mut last = -1.0;
        for k in [0usize, 2, 4, 6] {
            let m = analyze(&adders::truncated(8, k), &cfg());
            assert!(m.med > last, "k={k}: {} <= {last}", m.med);
            last = m.med;
        }
    }

    #[test]
    fn multiplier_truncation_med_grows() {
        let small = analyze(&multipliers::truncated(8, 2), &cfg());
        let large = analyze(&multipliers::truncated(8, 8), &cfg());
        assert!(large.med > small.med);
        assert!(large.bias < small.bias, "more truncation, more negative bias");
    }

    #[test]
    fn sampled_evaluation_close_to_exhaustive_on_8bit() {
        // Force sampling on an 8-bit circuit and compare with the truth.
        let c = multipliers::broken_array(8, 6, 2);
        let exhaustive = analyze(&c, &cfg());
        let sampled = analyze(
            &c,
            &ErrorConfig {
                max_exhaustive_bits: 8,
                samples: 1 << 14,
                seed: 3,
            },
        );
        assert!(!sampled.exhaustive);
        let rel = (sampled.med - exhaustive.med).abs() / exhaustive.med.max(1e-12);
        assert!(rel < 0.35, "sampled med off by {rel}");
        assert!(sampled.wce <= exhaustive.wce);
    }

    #[test]
    fn wide_circuits_are_sampled() {
        let c = adders::loa(16, 8);
        let m = analyze(&c, &cfg());
        assert!(!m.exhaustive);
        assert_eq!(m.samples, (1 << 16) + 4);
        assert!(m.med > 0.0);
    }

    #[test]
    fn stratified_pairs_are_deterministic_and_in_range() {
        let a = stratified_pairs(12, 1000, 7);
        let b = stratified_pairs(12, 1000, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1004);
        for &(x, y) in &a {
            assert!(x < 4096 && y < 4096);
        }
    }

    #[test]
    fn error_prob_near_one_for_fully_truncated_adder() {
        let m = analyze(&adders::truncated(8, 8), &cfg());
        assert!(m.error_prob > 0.99);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn metrics_are_internally_consistent(k in 0usize..8, vbl in 1usize..8) {
            let c = multipliers::broken_array(8, vbl, k % 4);
            let m = analyze(&c, &cfg());
            // MAE <= WCE, MED = MAE/max, MSE >= MAE^2 (Jensen).
            proptest::prop_assert!(m.mae <= m.wce as f64 + 1e-9);
            proptest::prop_assert!((m.med * 65535.0 - m.mae).abs() < 1e-6);
            proptest::prop_assert!(m.mse + 1e-9 >= m.mae * m.mae);
            proptest::prop_assert!(m.bias.abs() <= m.mae + 1e-9);
            proptest::prop_assert!((0.0..=1.0).contains(&m.error_prob));
        }
    }
}

//! Behavioural error analysis of approximate arithmetic circuits.
//!
//! Computes the error metrics used throughout the ApproxFPGAs reproduction,
//! most importantly the paper's **MED** — the mean absolute error distance
//! normalized by the maximum output value — plus worst-case error, mean
//! relative error, error probability, MSE and signed bias.
//!
//! Evaluation is exhaustive for small operand widths (all `2^(2w)` input
//! pairs) and switches to a deterministic stratified sample for wide
//! operands, mirroring how behavioural models of 12/16-bit circuits are
//! evaluated in practice.
//!
//! # Example
//!
//! ```
//! use afp_circuits::adders::{loa, ripple_carry};
//! use afp_error::{analyze, ErrorConfig};
//!
//! let cfg = ErrorConfig::default();
//! let exact = analyze(&ripple_carry(8), &cfg);
//! assert_eq!(exact.wce, 0);
//! assert_eq!(exact.med, 0.0);
//!
//! let approx = analyze(&loa(8, 4), &cfg);
//! assert!(approx.med > 0.0);
//! assert!(approx.wce > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use afp_circuits::{ArithCircuit, BatchEvaluator};
use afp_netlist::{SimTape, LANES};
use afp_runtime::{Counters, Runtime};

/// Configuration for [`analyze`].
#[derive(Clone, Debug)]
pub struct ErrorConfig {
    /// Evaluate exhaustively when the total input width `2w` does not
    /// exceed this many bits (default 16, i.e. 8-bit operands).
    pub max_exhaustive_bits: usize,
    /// Sample size for the stratified evaluation of wider circuits.
    pub samples: usize,
    /// Seed for the sampled strata.
    pub seed: u64,
}

impl Default for ErrorConfig {
    fn default() -> ErrorConfig {
        ErrorConfig {
            max_exhaustive_bits: 16,
            samples: 1 << 16,
            seed: 0xE44_0001,
        }
    }
}

impl afp_runtime::Fingerprint for ErrorConfig {
    fn fingerprint(&self, h: &mut afp_runtime::StableHasher) {
        h.write_str("error-config");
        h.write_usize(self.max_exhaustive_bits);
        h.write_usize(self.samples);
        h.write_u64(self.seed);
    }
}

/// Error metrics of one circuit against its golden function.
///
/// All means are over the evaluated input set (exhaustive or sampled, see
/// [`ErrorMetrics::samples`] and [`ErrorMetrics::exhaustive`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorMetrics {
    /// Number of input pairs evaluated.
    pub samples: u64,
    /// Whether the evaluation covered every input pair.
    pub exhaustive: bool,
    /// The paper's MED: mean absolute error / maximum output value.
    pub med: f64,
    /// Mean absolute error (unnormalized).
    pub mae: f64,
    /// Worst-case absolute error observed.
    pub wce: u64,
    /// Worst-case error / maximum output value.
    pub wce_rel: f64,
    /// Mean relative error `|err| / exact`, over pairs with `exact != 0`.
    pub mre: f64,
    /// Fraction of input pairs with a non-zero error.
    pub error_prob: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Mean signed error (negative = the circuit under-estimates).
    pub bias: f64,
}

impl ErrorMetrics {
    /// Metrics of a perfectly exact circuit over `samples` pairs.
    pub fn zero(samples: u64, exhaustive: bool) -> ErrorMetrics {
        ErrorMetrics {
            samples,
            exhaustive,
            med: 0.0,
            mae: 0.0,
            wce: 0,
            wce_rel: 0.0,
            mre: 0.0,
            error_prob: 0.0,
            mse: 0.0,
            bias: 0.0,
        }
    }

    /// True if no error was observed on any evaluated pair.
    pub fn is_exact(&self) -> bool {
        self.wce == 0
    }
}

/// Analyze `circuit` against its golden function under `config`.
///
/// Exhaustive when `2 * width <= config.max_exhaustive_bits`, otherwise a
/// deterministic stratified sample of `config.samples` pairs: one third
/// uniform, one third with a short operand (exercising low-magnitude
/// behaviour), one third near the operand maximum (exercising long carry
/// chains), plus the four corner pairs.
pub fn analyze(circuit: &ArithCircuit, config: &ErrorConfig) -> ErrorMetrics {
    analyze_with(circuit, config, &Runtime::serial())
}

/// Pairs per parallel block. Fixed (never derived from the thread count),
/// so the partition — and with it every reduction order — is a pure
/// function of the input and the result is identical for any parallelism.
const BLOCK_PAIRS: usize = 4096;

/// [`analyze`] on an explicit [`Runtime`].
///
/// The input space is split into fixed-size blocks evaluated in parallel;
/// per-block partial sums use exact integer arithmetic and are merged in
/// block order, so the metrics are bit-identical for any thread count.
pub fn analyze_with(circuit: &ArithCircuit, config: &ErrorConfig, rt: &Runtime) -> ErrorMetrics {
    let w = circuit.width();
    let exhaustive = 2 * w <= config.max_exhaustive_bits;
    let max_out = circuit.kind().max_output(w) as f64;
    // Lower the netlist once; every block worker shares the same tape.
    let tape = SimTape::compile(circuit.netlist());
    let partials: Vec<Accumulator> = if exhaustive {
        let mask = (1u64 << w) - 1;
        // Blocks are ranges of `a` rows; each row is `mask + 1` pairs.
        let rows_per_block = (BLOCK_PAIRS >> w).max(1) as u64;
        let row_starts: Vec<u64> = (0..=mask).step_by(rows_per_block as usize).collect();
        rt.par_map(&row_starts, |_, &a_start| {
            let a_end = (a_start + rows_per_block - 1).min(mask);
            let mut acc = Accumulator::new(max_out);
            let mut batch = BatchEvaluator::with_tape(circuit, &tape);
            let mut got: Vec<u64> = Vec::with_capacity(LANES);
            // The block's pairs are the consecutive pair indices
            // `a_start·2^w .. (a_end+1)·2^w` in the row-major order
            // `p = (a << w) | b` — the same order the nested a/b loops
            // used to push, so the accumulator state is unchanged.
            let start = a_start << w;
            let end = (a_end + 1) << w;
            let mut p = start;
            while p < end {
                let n = ((end - p) as usize).min(LANES);
                got.clear();
                batch.eval_exhaustive_block_into(p, n, &mut got);
                for (l, &g) in got.iter().enumerate() {
                    let q = p + l as u64;
                    acc.push(circuit.exact(q >> w, q & mask), g);
                }
                p += n as u64;
            }
            Counters::add(&rt.counters().sim_tape_reuses, 1);
            record_bytes(rt, &acc);
            acc
        })
    } else {
        let pairs = stratified_pairs(w, config.samples, config.seed);
        let blocks: Vec<&[(u64, u64)]> = pairs.chunks(BLOCK_PAIRS).collect();
        rt.par_map(&blocks, |_, block| {
            let mut acc = Accumulator::new(max_out);
            let mut batch = BatchEvaluator::with_tape(circuit, &tape);
            let mut got: Vec<u64> = Vec::with_capacity(LANES);
            for chunk in block.chunks(LANES) {
                accumulate(circuit, &mut batch, chunk, &mut got, &mut acc);
            }
            Counters::add(&rt.counters().sim_tape_reuses, 1);
            record_bytes(rt, &acc);
            acc
        })
    };
    let mut total = Accumulator::new(max_out);
    for p in partials {
        total.merge(&p);
    }
    total.finish(exhaustive)
}

fn record_bytes(rt: &Runtime, acc: &Accumulator) {
    // 16 bytes of operand data per evaluated pair.
    Counters::add(&rt.counters().bytes_simulated, acc.n * 16);
}

fn accumulate(
    circuit: &ArithCircuit,
    batch: &mut BatchEvaluator<'_>,
    pairs: &[(u64, u64)],
    got: &mut Vec<u64>,
    acc: &mut Accumulator,
) {
    got.clear();
    if pairs.len() <= 64 {
        batch.eval_chunk_into(pairs, got);
    } else {
        batch.eval_block_into(pairs, got);
    }
    for (&(a, b), &g) in pairs.iter().zip(got.iter()) {
        acc.push(circuit.exact(a, b), g);
    }
}

/// The deterministic stratified sample used for wide circuits.
pub fn stratified_pairs(width: usize, samples: usize, seed: u64) -> Vec<(u64, u64)> {
    let mask = (1u64 << width) - 1;
    let mut pairs = Vec::with_capacity(samples + 4);
    pairs.extend_from_slice(&[(0, 0), (mask, mask), (0, mask), (mask, 0)]);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let third = samples / 3;
    for _ in 0..third {
        let v = next();
        pairs.push((v & mask, (v >> 32) & mask));
    }
    // Low-magnitude stratum: one operand confined to the low half bits.
    let low_mask = (1u64 << (width / 2)) - 1;
    for _ in 0..third {
        let v = next();
        pairs.push((v & low_mask, (v >> 32) & mask));
    }
    // Long-carry stratum: operands near the maximum.
    for _ in 0..(samples - 2 * third) {
        let v = next();
        pairs.push((mask - (v & low_mask), mask - ((v >> 32) & low_mask)));
    }
    pairs
}

/// Partial error sums over one block of input pairs.
///
/// The absolute/signed/squared error sums are exact integers (`u128` /
/// `i128`), so merging partial accumulators is associative and the final
/// metrics do not depend on how the input space was partitioned. Only
/// `sum_rel` is inherently fractional; it is merged in fixed block order,
/// which keeps it deterministic for any thread count.
struct Accumulator {
    max_out: f64,
    n: u64,
    sum_abs: u128,
    sum_signed: i128,
    sum_sq: u128,
    wce: u64,
    nonzero: u64,
    sum_rel: f64,
    rel_n: u64,
}

impl Accumulator {
    fn new(max_out: f64) -> Accumulator {
        Accumulator {
            max_out,
            n: 0,
            sum_abs: 0,
            sum_signed: 0,
            sum_sq: 0,
            wce: 0,
            nonzero: 0,
            sum_rel: 0.0,
            rel_n: 0,
        }
    }

    fn push(&mut self, exact: u64, got: u64) {
        let err = got as i64 - exact as i64;
        let abs = err.unsigned_abs();
        self.n += 1;
        self.sum_abs += abs as u128;
        self.sum_signed += err as i128;
        self.sum_sq += (abs as u128) * (abs as u128);
        self.wce = self.wce.max(abs);
        if abs != 0 {
            self.nonzero += 1;
        }
        if exact != 0 {
            self.sum_rel += abs as f64 / exact as f64;
            self.rel_n += 1;
        }
    }

    fn merge(&mut self, other: &Accumulator) {
        self.n += other.n;
        self.sum_abs += other.sum_abs;
        self.sum_signed += other.sum_signed;
        self.sum_sq += other.sum_sq;
        self.wce = self.wce.max(other.wce);
        self.nonzero += other.nonzero;
        self.sum_rel += other.sum_rel;
        self.rel_n += other.rel_n;
    }

    fn finish(self, exhaustive: bool) -> ErrorMetrics {
        let n = self.n.max(1) as f64;
        ErrorMetrics {
            samples: self.n,
            exhaustive,
            med: self.sum_abs as f64 / n / self.max_out,
            mae: self.sum_abs as f64 / n,
            wce: self.wce,
            wce_rel: self.wce as f64 / self.max_out,
            mre: self.sum_rel / self.rel_n.max(1) as f64,
            error_prob: self.nonzero as f64 / n,
            mse: self.sum_sq as f64 / n,
            bias: self.sum_signed as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::adders;
    use afp_circuits::multipliers;

    fn cfg() -> ErrorConfig {
        ErrorConfig::default()
    }

    #[test]
    fn exact_adder_has_zero_metrics() {
        for c in [
            adders::ripple_carry(8),
            adders::carry_lookahead(8),
            adders::carry_select(8),
        ] {
            let m = analyze(&c, &cfg());
            assert!(m.is_exact(), "{}", c.name());
            assert_eq!(m.samples, 65536);
            assert!(m.exhaustive);
            assert_eq!(m, ErrorMetrics::zero(65536, true));
        }
    }

    #[test]
    fn truncated_adder_med_matches_closed_form() {
        // Truncated adder k=1: both the LSB sum and its carry are lost, so
        // the error on a pair is a0 + b0: mean (0+1+1+2)/4 = 1.0, worst 2.
        let c = adders::truncated(8, 1);
        let m = analyze(&c, &cfg());
        let expected_mae = 1.0;
        assert!((m.mae - expected_mae).abs() < 1e-9, "mae {}", m.mae);
        assert!((m.med - expected_mae / 511.0).abs() < 1e-12);
        assert_eq!(m.wce, 2);
        assert!(m.bias < 0.0, "truncation under-estimates");
    }

    #[test]
    fn loa_error_probability_is_positive_but_partial() {
        let m = analyze(&adders::loa(8, 4), &cfg());
        assert!(m.error_prob > 0.0 && m.error_prob < 1.0);
        assert!(m.wce < 32, "LOA(4) wce bounded: {}", m.wce);
    }

    #[test]
    fn med_increases_with_truncation_level() {
        let mut last = -1.0;
        for k in [0usize, 2, 4, 6] {
            let m = analyze(&adders::truncated(8, k), &cfg());
            assert!(m.med > last, "k={k}: {} <= {last}", m.med);
            last = m.med;
        }
    }

    #[test]
    fn multiplier_truncation_med_grows() {
        let small = analyze(&multipliers::truncated(8, 2), &cfg());
        let large = analyze(&multipliers::truncated(8, 8), &cfg());
        assert!(large.med > small.med);
        assert!(
            large.bias < small.bias,
            "more truncation, more negative bias"
        );
    }

    #[test]
    fn sampled_evaluation_close_to_exhaustive_on_8bit() {
        // Force sampling on an 8-bit circuit and compare with the truth.
        let c = multipliers::broken_array(8, 6, 2);
        let exhaustive = analyze(&c, &cfg());
        let sampled = analyze(
            &c,
            &ErrorConfig {
                max_exhaustive_bits: 8,
                samples: 1 << 14,
                seed: 3,
            },
        );
        assert!(!sampled.exhaustive);
        let rel = (sampled.med - exhaustive.med).abs() / exhaustive.med.max(1e-12);
        assert!(rel < 0.35, "sampled med off by {rel}");
        assert!(sampled.wce <= exhaustive.wce);
    }

    #[test]
    fn wide_circuits_are_sampled() {
        let c = adders::loa(16, 8);
        let m = analyze(&c, &cfg());
        assert!(!m.exhaustive);
        assert_eq!(m.samples, (1 << 16) + 4);
        assert!(m.med > 0.0);
    }

    #[test]
    fn stratified_pairs_are_deterministic_and_in_range() {
        let a = stratified_pairs(12, 1000, 7);
        let b = stratified_pairs(12, 1000, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1004);
        for &(x, y) in &a {
            assert!(x < 4096 && y < 4096);
        }
    }

    #[test]
    fn error_prob_near_one_for_fully_truncated_adder() {
        let m = analyze(&adders::truncated(8, 8), &cfg());
        assert!(m.error_prob > 0.99);
    }

    #[test]
    fn metrics_are_bit_identical_for_any_thread_count() {
        let circuits = [
            multipliers::broken_array(8, 6, 2),
            adders::loa(8, 4),
            adders::loa(16, 8), // exercises the sampled path
        ];
        for c in &circuits {
            let serial = analyze_with(c, &cfg(), &Runtime::serial());
            for threads in [2, 4, 8] {
                let par = Runtime::install(threads, |rt| analyze_with(c, &cfg(), rt));
                assert_eq!(serial, par, "{} at {threads} threads", c.name());
            }
        }
    }

    #[test]
    fn bytes_simulated_counts_sixteen_per_pair() {
        let rt = Runtime::serial();
        let m = analyze_with(&adders::loa(8, 4), &cfg(), &rt);
        assert_eq!(rt.snapshot().bytes_simulated, m.samples * 16);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn metrics_are_internally_consistent(k in 0usize..8, vbl in 1usize..8) {
            let c = multipliers::broken_array(8, vbl, k % 4);
            let m = analyze(&c, &cfg());
            // MAE <= WCE, MED = MAE/max, MSE >= MAE^2 (Jensen).
            proptest::prop_assert!(m.mae <= m.wce as f64 + 1e-9);
            proptest::prop_assert!((m.med * 65535.0 - m.mae).abs() < 1e-6);
            proptest::prop_assert!(m.mse + 1e-9 >= m.mae * m.mae);
            proptest::prop_assert!(m.bias.abs() <= m.mae + 1e-9);
            proptest::prop_assert!((0.0..=1.0).contains(&m.error_prob));
        }
    }
}

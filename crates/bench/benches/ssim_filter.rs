//! Gaussian-filter datapath + SSIM cost (the inner loop of AutoAx-FPGA).

use afp_autoax::filter::{exact_gaussian, AcceleratorConfig, GaussianAccelerator};
use afp_autoax::image::gradient;
use afp_autoax::ssim::ssim;
use afp_autoax::ComponentLibrary;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("autoax");
    group.sample_size(20);
    let library = ComponentLibrary::paper_defaults(&afp_fpga::FpgaConfig::default());
    let accel = GaussianAccelerator::new(&library);
    let img = gradient(32);
    let exact = exact_gaussian(&img);
    let cfg = AcceleratorConfig {
        mult_slots: [2; 9],
        adder_slots: [1; 5],
    };
    group.bench_function("exact_filter_32x32", |b| {
        b.iter(|| exact_gaussian(std::hint::black_box(&img)))
    });
    group.bench_function("approx_filter_32x32", |b| {
        b.iter(|| accel.filter(std::hint::black_box(&cfg), &img))
    });
    group.bench_function("ssim_32x32", |b| {
        let out = accel.filter(&cfg, &img);
        b.iter(|| ssim(std::hint::black_box(&out), &exact))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Pareto machinery cost: front extraction and 3-front peeling at library
//! scale (the inner loop of the pseudo-pareto construction).

use approxfpgas::{pareto_front, peel_fronts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn cloud(n: usize) -> Vec<(f64, f64)> {
    let mut s = 0x9E3779B97F4A7C15u64;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (
                ((s >> 20) & 0xFFFF) as f64 / 655.35,
                ((s >> 40) & 0xFFFF) as f64 / 655.35,
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto");
    for n in [1000usize, 4494, 10000] {
        let pts = cloud(n);
        group.bench_with_input(BenchmarkId::new("front", n), &pts, |b, pts| {
            b.iter(|| pareto_front(std::hint::black_box(pts)));
        });
        group.bench_with_input(BenchmarkId::new("peel3", n), &pts, |b, pts| {
            b.iter(|| peel_fronts(std::hint::black_box(pts), 3));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Cut enumeration + LUT covering cost (the per-circuit price of the FPGA
//! synthesis model), plus the ablation: depth-only vs area-recovery cover.
//!
//! `enumerate`/`map` separate the two phases of the arena cut engine so a
//! regression in either is visible on its own; `map_reused` runs the same
//! covering through one warm [`afp_fpga::Mapper`], which is how the flow's
//! worker threads actually call it (zero steady-state allocation).

use afp_circuits::{adders, multipliers};
use afp_fpga::{cuts, map, FpgaConfig, Mapper};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_mapping");
    let cases = [
        ("rca16", adders::ripple_carry(16).into_netlist()),
        ("cla16", adders::carry_lookahead(16).into_netlist()),
        (
            "wallace8",
            multipliers::wallace_multiplier(8).into_netlist(),
        ),
        (
            "wallace12",
            multipliers::wallace_multiplier(12).into_netlist(),
        ),
        (
            "wallace16",
            multipliers::wallace_multiplier(16).into_netlist(),
        ),
    ];
    let cfg = FpgaConfig::default();
    for (name, netlist) in &cases {
        // Phase 1 alone: priority-cut enumeration into the flat arena.
        group.bench_with_input(BenchmarkId::new("enumerate", name), netlist, |b, nl| {
            b.iter(|| cuts::enumerate(std::hint::black_box(nl), 6, 8));
        });
        // Enumeration + covering, fresh mapper per call (the old API).
        group.bench_with_input(BenchmarkId::new("map", name), netlist, |b, nl| {
            b.iter(|| map::map_luts(std::hint::black_box(nl), &cfg));
        });
        // Same, through one reused mapper — the flow's steady state.
        group.bench_with_input(BenchmarkId::new("map_reused", name), netlist, |b, nl| {
            let mut mapper = Mapper::new();
            b.iter(|| mapper.map_luts(std::hint::black_box(nl), &cfg));
        });
        group.bench_with_input(BenchmarkId::new("full_synth", name), netlist, |b, nl| {
            b.iter(|| afp_fpga::synthesize_fpga(std::hint::black_box(nl), &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

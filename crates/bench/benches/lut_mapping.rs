//! Cut enumeration + LUT covering cost (the per-circuit price of the FPGA
//! synthesis model), plus the ablation: depth-only vs area-recovery cover.

use afp_circuits::{adders, multipliers};
use afp_fpga::{map, FpgaConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_mapping");
    let cases = [
        ("rca16", adders::ripple_carry(16).into_netlist()),
        (
            "wallace8",
            multipliers::wallace_multiplier(8).into_netlist(),
        ),
        (
            "wallace16",
            multipliers::wallace_multiplier(16).into_netlist(),
        ),
    ];
    let cfg = FpgaConfig::default();
    for (name, netlist) in &cases {
        group.bench_with_input(BenchmarkId::new("map", name), netlist, |b, nl| {
            b.iter(|| map::map_luts(std::hint::black_box(nl), &cfg));
        });
        group.bench_with_input(BenchmarkId::new("full_synth", name), netlist, |b, nl| {
            b.iter(|| afp_fpga::synthesize_fpga(std::hint::black_box(nl), &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

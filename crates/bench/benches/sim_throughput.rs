//! Bit-parallel behavioural simulation throughput: pairs evaluated per
//! second for 8x8 and 16x16 multipliers (design decision #1 of DESIGN.md).

use afp_circuits::multipliers::wallace_multiplier;
use afp_circuits::BatchEvaluator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    for width in [8usize, 16] {
        let m = wallace_multiplier(width);
        let mask = (1u64 << width) - 1;
        let pairs: Vec<(u64, u64)> = (0..4096u64).map(|i| (i & mask, (i * 7) & mask)).collect();
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.bench_with_input(BenchmarkId::new("wallace", width), &pairs, |b, pairs| {
            let mut batch = BatchEvaluator::new(&m);
            b.iter(|| batch.eval_pairs(std::hint::black_box(pairs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

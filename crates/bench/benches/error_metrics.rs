//! Error-metric evaluation cost: exhaustive 8-bit vs sampled 16-bit.

use afp_circuits::multipliers;
use afp_error::{analyze, ErrorConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_metrics");
    group.sample_size(20);
    let cfg = ErrorConfig::default();
    let m8 = multipliers::broken_array(8, 5, 2);
    group.bench_function("mult8_exhaustive_65536", |b| {
        b.iter(|| analyze(std::hint::black_box(&m8), &cfg));
    });
    let m16 = multipliers::truncated(16, 8);
    group.bench_function("mult16_sampled_65536", |b| {
        b.iter(|| analyze(std::hint::black_box(&m16), &cfg));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: cost of mutation with and without the periodic simplify pass
//! (design decision: mutants are re-simplified so libraries compare on
//! minimized structure).

use afp_circuits::multipliers::wallace_multiplier;
use afp_circuits::mutate::{mutate, MutationConfig};
use afp_netlist::opt::simplify;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutation");
    let base = wallace_multiplier(8);
    group.bench_function("mutate3_with_simplify", |b| {
        let cfg = MutationConfig {
            mutations: 3,
            seed: 7,
            ..Default::default()
        };
        b.iter(|| mutate(std::hint::black_box(&base), &cfg))
    });
    group.bench_function("simplify_wallace8", |b| {
        b.iter(|| simplify(std::hint::black_box(base.netlist())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Training cost of representative zoo members (the "ML models train in
//! seconds, synthesis takes hours" premise of the paper).

use afp_ml::boost::GradientBoosting;
use afp_ml::forest::RandomForest;
use afp_ml::kernel::KernelRidge;
use afp_ml::linear::{BayesianRidge, Ridge};
use afp_ml::{Matrix, Regressor};
use criterion::{criterion_group, criterion_main, Criterion};

fn dataset(n: usize, p: usize) -> (Matrix, Vec<f64>) {
    let mut s = 0xDA7Au64;
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(p);
        for _ in 0..p {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            row.push(((s >> 33) & 0xFFFF) as f64 / 65535.0);
        }
        ys.push(
            row.iter()
                .enumerate()
                .map(|(i, v)| v * (i + 1) as f64)
                .sum(),
        );
        rows.push(row);
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    (Matrix::from_rows(&refs), ys)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ml_training");
    group.sample_size(10);
    // Paper-like training size: 80% of a 10% subset of 4494 circuits.
    let (x, y) = dataset(360, 20);
    group.bench_function("ridge", |b| {
        b.iter(|| {
            let mut m = Ridge::new(1e-3);
            m.fit(std::hint::black_box(&x), &y).unwrap();
        })
    });
    group.bench_function("bayesian_ridge", |b| {
        b.iter(|| {
            let mut m = BayesianRidge::default();
            m.fit(std::hint::black_box(&x), &y).unwrap();
        })
    });
    group.bench_function("kernel_ridge", |b| {
        b.iter(|| {
            let mut m = KernelRidge::default();
            m.fit(std::hint::black_box(&x), &y).unwrap();
        })
    });
    group.bench_function("random_forest", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(40, Default::default(), 5);
            m.fit(std::hint::black_box(&x), &y).unwrap();
        })
    });
    group.bench_function("gradient_boosting", |b| {
        b.iter(|| {
            let mut m = GradientBoosting::default();
            m.fit(std::hint::black_box(&x), &y).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Standard-cell mapping + STA + power model cost per circuit.

use afp_asic::{synthesize_asic, AsicConfig};
use afp_circuits::multipliers;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("asic_synthesis");
    let cfg = AsicConfig::default();
    for width in [8usize, 16] {
        let nl = multipliers::wallace_multiplier(width).into_netlist();
        group.bench_with_input(BenchmarkId::new("wallace", width), &nl, |b, nl| {
            b.iter(|| synthesize_asic(std::hint::black_box(nl), &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! End-to-end flow cost on a small library (characterization + zoo +
//! pseudo-pareto + accounting).

use afp_circuits::{ArithKind, LibrarySpec};
use afp_ml::MlModelId;
use approxfpgas::{Flow, FlowConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    group.bench_function("adder8_lib100_fast_models", |b| {
        b.iter(|| {
            let config = FlowConfig {
                library: LibrarySpec::new(ArithKind::Adder, 8, 100),
                models: vec![
                    MlModelId::Ml2,
                    MlModelId::Ml11,
                    MlModelId::Ml14,
                    MlModelId::Ml18,
                ],
                ..FlowConfig::default()
            };
            std::hint::black_box(Flow::new(config).run());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! ASCII rendering of tables and scatter plots for terminal output.

/// Render an ASCII table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+";
    let fmt_row = |cells: &[String]| -> String {
        let mut s = String::new();
        for (c, w) in widths.iter().enumerate() {
            let cell = cells.get(c).map(String::as_str).unwrap_or("");
            s.push_str(&format!("| {cell:w$} "));
        }
        s + "|"
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out
}

/// One scatter series: a glyph and its points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Plot glyph (one char).
    pub glyph: char,
    /// Series label for the legend.
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// Render ASCII scatter plot(s) on shared axes. Later series overdraw
/// earlier ones where they collide.
pub fn scatter(
    series: &[Series],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no points)");
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let xs = (x1 - x0).max(1e-12);
    let ys = (y1 - y0).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let cx = (((x - x0) / xs) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / ys) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = s.glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label} ^\n"));
    for row in &grid {
        out.push_str("  |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push_str(&format!("> {x_label}\n"));
    out.push_str(&format!(
        "    x: [{x0:.4}, {x1:.4}]  y: [{y0:.4}, {y1:.4}]\n"
    ));
    for s in series {
        out.push_str(&format!(
            "    '{}' = {} ({} pts)\n",
            s.glyph,
            s.label,
            s.points.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("| name   | value |"));
        assert!(t.contains("| longer | 22    |"));
    }

    #[test]
    fn scatter_plots_extremes() {
        let s = scatter(
            &[Series {
                glyph: '*',
                label: "demo".into(),
                points: vec![(0.0, 0.0), (1.0, 1.0)],
            }],
            20,
            5,
            "x",
            "y",
        );
        assert!(s.contains('*'));
        assert!(s.contains("demo (2 pts)"));
    }

    #[test]
    fn scatter_empty_is_graceful() {
        assert_eq!(scatter(&[], 10, 5, "x", "y"), "(no points)");
    }
}

//! Shared infrastructure for the figure/table regeneration binaries and
//! Criterion benches.
//!
//! Every `fig*`/`table*` binary accepts `--quick` (shrunken library sizes
//! for smoke runs); without it the paper-scale defaults of DESIGN.md are
//! used. Results are written as CSV into `results/` and rendered as ASCII
//! tables/plots on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;

use std::io::Write as _;
use std::path::{Path, PathBuf};

use afp_circuits::{ArithKind, LibrarySpec};

/// Library sizing for a run (see DESIGN.md "Library sizing").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// 8-bit adder library size.
    pub add8: usize,
    /// 12-bit adder library size.
    pub add12: usize,
    /// 16-bit adder library size.
    pub add16: usize,
    /// 8x8 multiplier library size (the paper's 4,494).
    pub mul8: usize,
    /// 12x12 multiplier library size.
    pub mul12: usize,
    /// 16x16 multiplier library size.
    pub mul16: usize,
}

impl Scale {
    /// Paper-scale sizes.
    pub fn paper() -> Scale {
        Scale {
            add8: 500,
            add12: 1000,
            add16: 1200,
            mul8: 4494,
            mul12: 1200,
            mul16: 1500,
        }
    }

    /// Shrunken sizes for smoke runs (`--quick`).
    pub fn quick() -> Scale {
        Scale {
            add8: 80,
            add12: 90,
            add16: 100,
            mul8: 220,
            mul12: 120,
            mul16: 130,
        }
    }

    /// The paper's *full* 8x8 multiplier library (44,940 circuits, of
    /// which the paper's 4,494 are the 10% subset). Expensive: reserve
    /// for dedicated runs via `--paper-full`.
    pub fn paper_full() -> Scale {
        Scale {
            mul8: 44_940,
            ..Scale::paper()
        }
    }

    /// Select by command-line arguments: `--quick` selects the smoke
    /// sizes, `--paper-full` the full-library sizes, default is
    /// [`Scale::paper`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::quick()
        } else if std::env::args().any(|a| a == "--paper-full") {
            Scale::paper_full()
        } else {
            Scale::paper()
        }
    }

    /// The six library specs (kind, width, size) of Fig. 3 in paper order.
    pub fn all_specs(&self) -> Vec<LibrarySpec> {
        vec![
            LibrarySpec::new(ArithKind::Adder, 8, self.add8),
            LibrarySpec::new(ArithKind::Adder, 12, self.add12),
            LibrarySpec::new(ArithKind::Adder, 16, self.add16),
            LibrarySpec::new(ArithKind::Multiplier, 8, self.mul8),
            LibrarySpec::new(ArithKind::Multiplier, 12, self.mul12),
            LibrarySpec::new(ArithKind::Multiplier, 16, self.mul16),
        ]
    }

    /// Spec of the 8x8 multiplier library.
    pub fn mul8_spec(&self) -> LibrarySpec {
        LibrarySpec::new(ArithKind::Multiplier, 8, self.mul8)
    }

    /// Spec of the 16x16 multiplier library.
    pub fn mul16_spec(&self) -> LibrarySpec {
        LibrarySpec::new(ArithKind::Multiplier, 16, self.mul16)
    }
}

/// Directory where result CSVs are written (`results/` at the workspace
/// root, creatable from any working directory inside the workspace).
pub fn results_dir() -> PathBuf {
    // Walk up from CWD until a directory containing `Cargo.toml` with
    // `[workspace]` is found; fall back to CWD.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    break;
                }
            }
        }
        if !dir.pop() {
            dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            break;
        }
    }
    let results = dir.join("results");
    let _ = std::fs::create_dir_all(&results);
    results
}

/// Write rows as CSV under `results/<name>` (header first), creating the
/// parent directory.
///
/// # Errors
///
/// Returns a typed [`afp_obs::ObsError`] when the directory cannot be
/// created or the file cannot be written.
pub fn try_write_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> Result<PathBuf, afp_obs::ObsError> {
    let path = results_dir().join(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|source| afp_obs::ObsError {
            op: "create results directory",
            path: parent.to_path_buf(),
            source,
        })?;
    }
    let io_err = |source| afp_obs::ObsError {
        op: "write csv",
        path: path.clone(),
        source,
    };
    let mut file = std::fs::File::create(&path).map_err(io_err)?;
    writeln!(file, "{}", header.join(",")).map_err(io_err)?;
    for row in rows {
        writeln!(file, "{}", row.join(",")).map_err(io_err)?;
    }
    println!("wrote {}", path.display());
    Ok(path)
}

/// [`try_write_csv`] for callers that want loud failure (the figure
/// binaries: a missing result file must abort the run).
///
/// # Panics
///
/// Panics with the typed error's message if the file cannot be written.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    try_write_csv(name, header, rows).unwrap_or_else(|e| panic!("{e}"))
}

/// Format seconds as a human-readable duration (`12.3 h`, `4.5 d`, ...).
pub fn human_time(seconds: f64) -> String {
    if seconds < 120.0 {
        format!("{seconds:.1} s")
    } else if seconds < 2.0 * 3600.0 {
        format!("{:.1} min", seconds / 60.0)
    } else if seconds < 48.0 * 3600.0 {
        format!("{:.1} h", seconds / 3600.0)
    } else {
        format!("{:.1} d", seconds / 86400.0)
    }
}

/// Check that `path` exists and is non-empty (used by integration tests).
pub fn assert_csv_written(path: &Path) {
    let meta = std::fs::metadata(path).expect("csv exists");
    assert!(meta.len() > 0, "csv is empty");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let p = Scale::paper();
        let q = Scale::quick();
        assert!(q.mul8 < p.mul8);
        assert_eq!(p.mul8, 4494, "the paper's 8x8 multiplier count");
        assert_eq!(p.all_specs().len(), 6);
    }

    #[test]
    fn human_time_ranges() {
        assert_eq!(human_time(10.0), "10.0 s");
        assert_eq!(human_time(600.0), "10.0 min");
        assert_eq!(human_time(7200.0), "2.0 h");
        assert_eq!(human_time(86400.0 * 82.4), "82.4 d");
    }

    #[test]
    fn csv_round_trip() {
        let p = write_csv(
            "test_roundtrip.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        assert_csv_written(&p);
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn try_write_csv_creates_nested_dirs_and_types_errors() {
        // A name with a subdirectory: the parent is created on demand.
        let p = try_write_csv("test_nested/deep.csv", &["x"], &[vec!["1".into()]]).unwrap();
        assert_csv_written(&p);
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
        // A path *under a file* cannot be created: typed error, no panic.
        let blocker = write_csv("test_blocker.csv", &["x"], &[]);
        let err = try_write_csv("test_blocker.csv/child.csv", &["x"], &[]).unwrap_err();
        assert!(err.to_string().contains("cannot"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
        let _ = std::fs::remove_file(blocker);
    }
}

//! Fig. 5 — Fidelity of the 18 S/ML models for the three FPGA parameters
//! (latency, power, area), evaluated on the validation split of the 10%
//! subset of the 8x8 multiplier library.
//!
//! Usage: `cargo run --release -p afp-bench --bin fig5 [--quick]`

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_ml::MlModelId;
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::train_zoo;
use approxfpgas::record::FpgaParam;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.mul8_spec();
    println!(
        "Fig. 5: characterizing {} 8x8 multipliers...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let records = characterize_library(
        &library,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    );
    let subset = sample_subset(records.len(), 0.10, 40, 0xDAC_2020);
    let (train, validate) = train_validate_split(&subset, 0.80, 0xDAC_2020);
    println!(
        "training the 18-model zoo on {} circuits, validating on {}...",
        train.len(),
        validate.len()
    );
    let zoo = train_zoo(&records, &train, &validate, &MlModelId::ALL, 0.01);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for id in MlModelId::ALL {
        let get = |param: FpgaParam| -> f64 {
            zoo.fidelities
                .iter()
                .find(|f| f.model == id && f.param == param)
                .map(|f| f.fidelity)
                .unwrap_or(0.0)
        };
        let (lat, pow, area) = (
            get(FpgaParam::Latency),
            get(FpgaParam::Power),
            get(FpgaParam::Area),
        );
        rows.push(vec![
            id.label().to_string(),
            id.description().to_string(),
            format!("{:.1}%", 100.0 * lat),
            format!("{:.1}%", 100.0 * pow),
            format!("{:.1}%", 100.0 * area),
        ]);
        csv.push(vec![
            id.label().to_string(),
            format!("{lat:.4}"),
            format!("{pow:.4}"),
            format!("{area:.4}"),
        ]);
    }
    write_csv(
        "fig5_fidelity.csv",
        &[
            "model",
            "fidelity_latency",
            "fidelity_power",
            "fidelity_area",
        ],
        &csv,
    );
    println!(
        "\n{}",
        table(&["Id", "Model", "Latency", "Power", "Area"], &rows)
    );
    println!("\n=== Fig. 5 observations (paper) ===");
    println!("- tree-based methods above average, ridge-family best");
    println!("- top fidelities in the high-80s/low-90s");
}

//! Streaming-flow residency measurement: wall time and peak circuit
//! residency of `Flow::run_source` over persisted corpora of growing
//! size, at a fixed shard size.
//!
//! This is the regenerator behind EXPERIMENTS.md "Streaming flow
//! residency" and the `BENCH_residency.json` baseline. The claim being
//! pinned is the tentpole contract of the streaming path: as the corpus
//! grows, peak resident circuits stay O(shard) — flat — instead of
//! O(corpus), while the normalized outcome stays byte-identical to the
//! in-RAM path (checked here before any timing).
//!
//! Usage: `cargo run --release -p afp-bench --bin flow_residency [--quick]`
//!
//! Writes `results/flow_residency.csv`.

use std::path::PathBuf;
use std::time::Instant;

use afp_bench::render::table;
use afp_bench::write_csv;
use afp_circuits::{build_library, read_library, ArithKind, LibrarySource, LibrarySpec};
use approxfpgas::{Flow, FlowConfig};

/// Circuits pulled per shard — the residency budget every case must
/// respect regardless of corpus size.
const SHARD: usize = 64;

/// Median-of-runs wall time of `f`, in microseconds.
fn time_us(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| afp_ord::asc(*a, *b));
    samples[samples.len() / 2]
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afp-bench-residency-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> FlowConfig {
    FlowConfig {
        min_subset: 24,
        threads: 1,
        shard_circuits: SHARD,
        ..FlowConfig::default()
    }
}

/// Peak RSS high-water mark of this process in KiB, if the platform
/// exposes it (`VmHWM` in `/proc/self/status`). Informational only: the
/// kernel gauge is cumulative across cases, so the per-case pin is the
/// flow's own `peak_resident_circuits` counter.
fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runs = if quick { 1 } else { 3 };
    println!("flow_residency: shard {SHARD}, {runs} run(s) per case (median)\n");

    let dir = temp_dir();
    let cases = [("flow_mul8_120", 120usize), ("flow_mul8_320", 320usize)];

    // Persist each corpus once, untimed.
    let mut corpora = Vec::new();
    for &(name, size) in &cases {
        let path = dir.join(format!("{name}.afps"));
        let library = build_library(&LibrarySpec::new(ArithKind::Multiplier, 8, size));
        let summary = afp_circuits::write_library(&path, &library).unwrap();
        assert_eq!(
            summary.written + summary.deduplicated,
            library.len(),
            "{name}: write_library lost circuits"
        );
        corpora.push((name, path));
    }

    // Equivalence gate before any timing: the streamed path must agree
    // with the in-RAM path on the smallest corpus.
    {
        let (_, path) = &corpora[0];
        let resident = Flow::new(config()).run_on_library(&read_library(path).unwrap());
        let streamed = Flow::new(config())
            .run_source(&LibrarySource::Stored(path.clone()))
            .unwrap();
        assert_eq!(resident.subset, streamed.subset, "subset diverged");
        assert_eq!(
            resident.final_fronts, streamed.final_fronts,
            "fronts diverged"
        );
        assert_eq!(resident.time, streamed.time, "time accounting diverged");
    }

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut peaks = Vec::new();
    for (name, path) in &corpora {
        let source = LibrarySource::Stored(path.clone());
        let outcome = Flow::new(config()).run_source(&source).unwrap();
        let circuits = outcome.records.len();
        let shards = outcome.runtime.shards_streamed;
        let peak = outcome.runtime.peak_resident_circuits;
        assert!(
            peak <= SHARD as u64,
            "{name}: peak residency {peak} exceeds the shard budget {SHARD}"
        );
        peaks.push(peak);
        let flow_us = time_us(runs, || {
            let outcome = Flow::new(config())
                .run_source(std::hint::black_box(&source))
                .unwrap();
            std::hint::black_box(outcome.records.len());
        });
        let hwm = vm_hwm_kib()
            .map(|k| format!("{k}"))
            .unwrap_or_else(|| "n/a".to_string());
        println!(
            "  {name}: {circuits} circuits, {shards} shards, peak {peak} resident, \
             {:.0} ms (VmHWM {hwm} KiB)",
            flow_us / 1e3
        );
        rows.push(vec![
            name.to_string(),
            format!("{circuits}"),
            format!("{shards}"),
            format!("{peak}"),
            format!("{flow_us:.0}"),
            hwm.clone(),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            format!("{circuits}"),
            format!("{shards}"),
            format!("{peak}"),
            format!("{flow_us:.2}"),
            hwm,
        ]);
    }

    // The residency claim itself: the corpus grew, the peak did not.
    assert!(
        peaks.windows(2).all(|w| w[1] <= w[0].max(SHARD as u64)),
        "peak residency grew with corpus size: {peaks:?}"
    );

    write_csv(
        "flow_residency.csv",
        &[
            "case",
            "circuits",
            "shards_streamed",
            "peak_resident",
            "flow_us",
            "vm_hwm_kib",
        ],
        &csv_rows,
    );
    println!(
        "\n{}",
        table(
            &[
                "case",
                "circuits",
                "shards",
                "peak resident",
                "flow us",
                "VmHWM KiB"
            ],
            &rows
        )
    );
    println!("baseline for regression checks: BENCH_residency.json (repo root)");

    let _ = std::fs::remove_dir_all(&dir);
}

//! Ablation: LUT input count K and the shape of the FPGA pareto front.
//!
//! Maps the same multiplier library onto LUT-4 and LUT-6 fabrics and
//! compares cost rankings and pareto fronts — the "pareto-optimality is
//! target-specific" claim taken one step further than ASIC-vs-FPGA.
//!
//! Usage: `cargo run --release -p afp-bench --bin ablation_lutk [--quick]`

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_fpga::{synthesize_fpga, FpgaArch, FpgaConfig};
use afp_ml::metrics::spearman;
use approxfpgas::pareto_front;

fn config_for_k(k: usize) -> FpgaConfig {
    FpgaConfig {
        arch: FpgaArch {
            lut_inputs: k,
            ..FpgaArch::default()
        },
        ..FpgaConfig::default()
    }
}

fn main() {
    let scale = Scale::from_args();
    let mut spec = scale.mul8_spec();
    spec.target_size = spec.target_size.min(1200); // mapping twice; keep it brisk
    println!(
        "ablation_lutk: building {} 8x8 multipliers...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let err_cfg = afp_error::ErrorConfig::default();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut luts_per_k: Vec<Vec<f64>> = Vec::new();
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    for k in [4usize, 6] {
        let cfg = config_for_k(k);
        let mut luts = Vec::with_capacity(library.len());
        let mut meds = Vec::with_capacity(library.len());
        for c in &library {
            luts.push(synthesize_fpga(c.netlist(), &cfg).luts as f64);
            meds.push(afp_error::analyze(c, &err_cfg).med);
        }
        let pts: Vec<(f64, f64)> = luts.iter().copied().zip(meds.iter().copied()).collect();
        let front = pareto_front(&pts);
        let mean_luts = luts.iter().sum::<f64>() / luts.len() as f64;
        rows.push(vec![
            format!("LUT-{k}"),
            format!("{mean_luts:.1}"),
            format!("{}", front.len()),
        ]);
        for (i, c) in library.iter().enumerate() {
            csv.push(vec![
                format!("{k}"),
                c.name().to_string(),
                format!("{}", luts[i] as usize),
                format!("{:.6}", meds[i]),
                format!("{}", front.contains(&i) as u8),
            ]);
        }
        luts_per_k.push(luts);
        fronts.push(front);
    }
    let rho = spearman(&luts_per_k[0], &luts_per_k[1]);
    let overlap = fronts[0].iter().filter(|i| fronts[1].contains(i)).count();

    write_csv(
        "ablation_lutk.csv",
        &["k", "circuit", "luts", "med", "on_front"],
        &csv,
    );
    println!(
        "\n{}",
        table(&["fabric", "mean LUTs", "pareto points"], &rows)
    );
    println!("\nLUT-4 vs LUT-6 rank correlation (Spearman): {rho:.3}");
    println!(
        "front overlap: {overlap}/{} LUT-4-pareto circuits are also LUT-6-pareto ({:.0}%)",
        fronts[0].len(),
        100.0 * overlap as f64 / fronts[0].len().max(1) as f64
    );
    println!("\nreading: even two LUT fabrics disagree on the pareto set — selecting\nACs per target, the paper's core argument, generalizes beyond ASIC-vs-FPGA.");
}

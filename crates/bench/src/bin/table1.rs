//! Table I — the 18 light-weight statistical/ML models used by
//! ApproxFPGAs.
//!
//! Usage: `cargo run --release -p afp-bench --bin table1`

use afp_bench::render::table;
use afp_bench::write_csv;
use afp_ml::MlModelId;

fn main() {
    let rows: Vec<Vec<String>> = MlModelId::ALL
        .iter()
        .map(|m| {
            vec![
                m.label().to_string(),
                m.description().to_string(),
                if m.is_asic_regression() {
                    "statistical".to_string()
                } else {
                    "machine learning".to_string()
                },
            ]
        })
        .collect();
    write_csv("table1_models.csv", &["id", "model", "class"], &rows);
    println!("{}", table(&["Id", "Statistical/ML Model", "Class"], &rows));
}

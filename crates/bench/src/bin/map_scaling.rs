//! Cut-engine scaling measurement: enumeration vs full mapping cost on
//! 8/12/16-bit adders and multipliers, fresh-mapper vs reused-mapper.
//!
//! This is the regenerator behind EXPERIMENTS.md "Cut engine" and the
//! `BENCH_map.json` baseline: `enumerate_us` times priority-cut
//! enumeration into the flat arena alone, `map_us` a full
//! enumerate+cover through the one-shot API, and `map_reused_us` the
//! same covering through a single warm [`afp_fpga::Mapper`] — the flow's
//! steady state, where scratch buffers are recycled across circuits.
//!
//! Usage: `cargo run --release -p afp-bench --bin map_scaling [--quick]`
//!
//! Writes `results/map_scaling.csv`.

use std::time::Instant;

use afp_bench::render::table;
use afp_bench::write_csv;
use afp_circuits::{adders, multipliers};
use afp_fpga::{cuts, map, FpgaConfig, Mapper};
use afp_netlist::Netlist;

/// Median-of-runs wall time of `f`, in microseconds.
fn time_us(iters: u32, runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| afp_ord::asc(*a, *b));
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (iters, runs) = if quick { (20, 3) } else { (200, 5) };
    let cfg = FpgaConfig::default();
    let cases: Vec<(&str, Netlist)> = vec![
        ("add8_rca", adders::ripple_carry(8).into_netlist()),
        ("add16_cla", adders::carry_lookahead(16).into_netlist()),
        (
            "mul8_wallace",
            multipliers::wallace_multiplier(8).into_netlist(),
        ),
        (
            "mul12_wallace",
            multipliers::wallace_multiplier(12).into_netlist(),
        ),
        (
            "mul16_wallace",
            multipliers::wallace_multiplier(16).into_netlist(),
        ),
    ];

    println!("map_scaling: {iters} iters x {runs} runs (median)\n");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut mapper = Mapper::new();
    for (name, nl) in &cases {
        let enum_us = time_us(iters, runs, || {
            std::hint::black_box(cuts::enumerate(std::hint::black_box(nl), 6, 8));
        });
        let map_us = time_us(iters, runs, || {
            std::hint::black_box(map::map_luts(std::hint::black_box(nl), &cfg));
        });
        let reused_us = time_us(iters, runs, || {
            std::hint::black_box(mapper.map_luts(std::hint::black_box(nl), &cfg));
        });
        let st = mapper.take_stats();
        println!(
            "  {name}: enumerate {enum_us:.1} us, map {map_us:.1} us, \
             map(reused) {reused_us:.1} us  [{} merges, {} sig-rejected]",
            st.cuts_merged, st.cuts_sig_rejected
        );
        rows.push(vec![
            name.to_string(),
            format!("{}", nl.num_logic_gates()),
            format!("{enum_us:.1}"),
            format!("{map_us:.1}"),
            format!("{reused_us:.1}"),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            format!("{}", nl.num_logic_gates()),
            format!("{enum_us:.2}"),
            format!("{map_us:.2}"),
            format!("{reused_us:.2}"),
        ]);
    }

    write_csv(
        "map_scaling.csv",
        &[
            "circuit",
            "gates",
            "enumerate_us",
            "map_us",
            "map_reused_us",
        ],
        &csv_rows,
    );
    println!(
        "\n{}",
        table(
            &[
                "circuit",
                "gates",
                "enumerate us",
                "map us",
                "map(reused) us"
            ],
            &rows
        )
    );
    println!("baseline for regression checks: BENCH_map.json (repo root)");
}

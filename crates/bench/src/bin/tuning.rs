//! The Fig. 2 "Modification of ML parameters" loop, quantified: validation
//! fidelity of the untuned zoo vs the hyperparameter-tuned zoo on the 8x8
//! multiplier library.
//!
//! Usage: `cargo run --release -p afp-bench --bin tuning [--quick]`

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_ml::MlModelId;
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::{train_zoo, train_zoo_tuned};
use approxfpgas::record::FpgaParam;

fn main() {
    let scale = Scale::from_args();
    let mut spec = scale.mul8_spec();
    spec.target_size = spec.target_size.min(2000); // tuning multiplies training cost
    println!(
        "tuning: characterizing {} 8x8 multipliers...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let records = characterize_library(
        &library,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    );
    let subset = sample_subset(records.len(), 0.10, 40, 0x7ED);
    let (train, validate) = train_validate_split(&subset, 0.80, 0x7ED);

    println!("training untuned zoo...");
    let base = train_zoo(&records, &train, &validate, &MlModelId::ALL, 0.01);
    println!("training tuned zoo (full hyperparameter grids)...");
    let (tuned, labels) = train_zoo_tuned(&records, &train, &validate, &MlModelId::ALL, 0.01);

    let fid = |zoo: &approxfpgas::fidelity::TrainedZoo, m: MlModelId, p: FpgaParam| {
        zoo.fidelities
            .iter()
            .find(|f| f.model == m && f.param == p)
            .map(|f| f.fidelity)
            .unwrap_or(0.0)
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut improved = 0usize;
    for id in MlModelId::ALL {
        for param in FpgaParam::ALL {
            let b = fid(&base, id, param);
            let t = fid(&tuned, id, param);
            if t > b + 1e-12 {
                improved += 1;
            }
            let label = labels
                .iter()
                .find(|((m, p), _)| *m == id && *p == param)
                .map(|(_, l)| l.as_str())
                .unwrap_or("-");
            if id == MlModelId::Ml14 || t > b + 0.005 {
                rows.push(vec![
                    id.label().to_string(),
                    format!("{param:?}"),
                    format!("{:.1}%", 100.0 * b),
                    format!("{:.1}%", 100.0 * t),
                    label.to_string(),
                ]);
            }
            csv.push(vec![
                id.label().to_string(),
                format!("{param:?}"),
                format!("{b:.4}"),
                format!("{t:.4}"),
                label.to_string(),
            ]);
        }
    }
    write_csv(
        "tuning_gains.csv",
        &[
            "model",
            "param",
            "fidelity_untuned",
            "fidelity_tuned",
            "chosen_config",
        ],
        &csv,
    );
    println!(
        "\n{}",
        table(
            &["model", "param", "untuned", "tuned", "chosen config"],
            &rows
        )
    );
    let mean = |zoo: &approxfpgas::fidelity::TrainedZoo| -> f64 {
        zoo.fidelities.iter().map(|f| f.fidelity).sum::<f64>() / zoo.fidelities.len().max(1) as f64
    };
    println!("\n=== tuning summary ===");
    println!("mean fidelity untuned: {:.1}%", 100.0 * mean(&base));
    println!("mean fidelity tuned:   {:.1}%", 100.0 * mean(&tuned));
    println!("(model, param) pairs improved: {improved}/54");
    println!("\nreading: the Fig. 2 feedback loop buys a consistent but modest gain —\ntuning never hurts (the default is in every grid) and mostly helps the\nkernel/tree models whose bandwidth/depth actually bind.");
}

//! Circuit-store scaling measurement: cache warm-start and circuit-corpus
//! round-trips through the legacy CSV/Verilog disk formats vs the binary
//! frame store.
//!
//! This is the regenerator behind EXPERIMENTS.md "Circuit store" and the
//! `BENCH_store.json` baseline. Three measurements, each with the legacy
//! path as the `csv_us` column and the store path as `store_us`:
//!
//! * `warm_start_mul8` — loading a fully-characterized mul8 cache from
//!   disk: CSV row parsing ([`DiskTier::open`]) vs binary record decode
//!   ([`StoreTier::open`]). Both caches are populated by real flow runs
//!   and the loaded entry sets are checked identical before any timing.
//! * `stream_mul8` — reopening a generated mul8 circuit corpus:
//!   re-parsing structural Verilog vs streaming the sealed store file
//!   ([`afp_circuits::store::read_library`]). The `size_ratio` column is
//!   the on-disk ratio (Verilog bytes / store bytes).
//! * `cold_open_mul8` — answering "how many records, which version?"
//!   without a prior open: parsing every CSV row vs reading the sealed
//!   store's index footer ([`afp_store::inspect`]).
//!
//! Usage: `cargo run --release -p afp-bench --bin store_scaling [--quick]`
//!
//! Writes `results/store_scaling.csv`.

use std::path::{Path, PathBuf};
use std::time::Instant;

use afp_bench::render::table;
use afp_bench::write_csv;
use afp_circuits::store::read_library;
use afp_circuits::{build_library, ArithKind, LibrarySpec};
use afp_netlist::export::to_verilog;
use afp_netlist::parse::from_verilog;
use afp_runtime::cache::DiskTier;
use afp_runtime::Key128;
use afp_store::StoreTier;
use approxfpgas::cache::{CACHE_FILE, STORE_FILE};
use approxfpgas::{CacheBackend, CachedCharacterization, Flow, FlowConfig};

/// Median-of-runs wall time of `f`, in microseconds.
fn time_us(iters: u32, runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| afp_ord::asc(*a, *b));
    samples[samples.len() / 2]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afp-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Populate a characterization cache directory by running the real flow
/// on the mul8 library with the given disk backend.
fn populate_cache(dir: &Path, backend: CacheBackend) {
    let config = FlowConfig {
        library: LibrarySpec::new(ArithKind::Multiplier, 8, 320),
        min_subset: 24,
        threads: 1,
        cache_dir: Some(dir.to_path_buf()),
        cache_backend: backend,
        ..FlowConfig::default()
    };
    let outcome = Flow::new(config).run();
    assert!(!outcome.records.is_empty(), "flow produced no records");
}

/// Load-and-sort every cache entry, so the CSV and store tiers can be
/// compared for exact equality before their load paths are timed.
fn sorted_entries(mut entries: Vec<(Key128, CachedCharacterization)>) -> Vec<(Key128, String)> {
    entries.sort_by_key(|(k, _)| (k.hi, k.lo));
    entries
        .into_iter()
        .map(|(k, v)| (k, format!("{v:?}")))
        .collect()
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (iters, runs) = if quick { (3, 3) } else { (20, 5) };
    println!("store_scaling: {iters} iters x {runs} runs (median)\n");

    // ---- warm_start_mul8: characterization cache load --------------------
    let csv_dir = temp_dir("csv");
    let store_dir = temp_dir("store");
    populate_cache(&csv_dir, CacheBackend::Csv);
    populate_cache(&store_dir, CacheBackend::Store);
    // One settling open: the store tier compacts an append-heavy file into
    // block frames on first open, which is the steady state every later
    // warm start sees.
    drop(StoreTier::<CachedCharacterization>::open(&store_dir, STORE_FILE).unwrap());

    // Equivalence gate: both tiers must decode the exact same entries.
    let csv_entries = sorted_entries(
        DiskTier::<CachedCharacterization>::open(&csv_dir, CACHE_FILE)
            .unwrap()
            .take_loaded(),
    );
    let store_entries = sorted_entries(
        StoreTier::<CachedCharacterization>::open(&store_dir, STORE_FILE)
            .unwrap()
            .take_loaded(),
    );
    assert!(!csv_entries.is_empty(), "cache ended up empty");
    assert_eq!(
        csv_entries, store_entries,
        "csv and store tiers disagree on cache contents"
    );
    let entries = csv_entries.len();

    let csv_bytes = file_len(&csv_dir.join(CACHE_FILE));
    let store_bytes = file_len(&store_dir.join(STORE_FILE));
    let cache_ratio = csv_bytes as f64 / store_bytes as f64;
    let warm_csv_us = time_us(iters, runs, || {
        std::hint::black_box(
            DiskTier::<CachedCharacterization>::open(std::hint::black_box(&csv_dir), CACHE_FILE)
                .unwrap(),
        );
    });
    let warm_store_us = time_us(iters, runs, || {
        std::hint::black_box(
            StoreTier::<CachedCharacterization>::open(std::hint::black_box(&store_dir), STORE_FILE)
                .unwrap(),
        );
    });

    // ---- stream_mul8: circuit corpus round-trip --------------------------
    let corpus_dir = temp_dir("corpus");
    let library = build_library(&LibrarySpec::new(ArithKind::Multiplier, 8, 320));
    let verilog: Vec<String> = library.iter().map(|c| to_verilog(c.netlist())).collect();
    let verilog_path = corpus_dir.join("library.v");
    std::fs::write(&verilog_path, verilog.join("\n")).unwrap();
    let store_path = corpus_dir.join("library.afps");
    let summary = afp_circuits::store::write_library(&store_path, &library).unwrap();
    assert_eq!(
        summary.written + summary.deduplicated,
        library.len(),
        "write_library lost circuits"
    );

    // Equivalence gate, store side: streaming back is structurally exact
    // (modulo the store's structural dedup — compare deduplicated hash
    // sets against the generated library itself).
    let streamed = read_library(&store_path).unwrap();
    let hashes = |ns: &[&afp_netlist::Netlist]| {
        let mut h: Vec<u64> = ns.iter().map(|n| n.structural_hash()).collect();
        h.sort_unstable();
        h.dedup();
        h
    };
    assert_eq!(
        hashes(&streamed.iter().map(|c| c.netlist()).collect::<Vec<_>>()),
        hashes(&library.iter().map(|c| c.netlist()).collect::<Vec<_>>()),
        "store round trip lost circuit structures"
    );
    // Verilog side: parsing rebuilds an equivalent but not gate-identical
    // netlist, so check behaviour on sampled operand pairs instead.
    let parsed: Vec<_> = verilog
        .iter()
        .map(|v| from_verilog(v).expect("exported verilog parses"))
        .collect();
    assert_eq!(parsed.len(), library.len());
    let mut rng_state = 0x5EEDu64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    for (circuit, back) in library.iter().zip(&parsed) {
        let n_in = circuit.netlist().num_inputs();
        assert_eq!(n_in, back.num_inputs());
        for _ in 0..16 {
            let sample = next();
            let bits: Vec<bool> = (0..n_in).map(|i| (sample >> (i % 64)) & 1 == 1).collect();
            assert_eq!(
                circuit.netlist().eval_bits(&bits),
                back.eval_bits(&bits),
                "verilog round trip changed behaviour for {}",
                circuit.name()
            );
        }
    }

    let verilog_bytes = file_len(&verilog_path);
    let corpus_ratio = verilog_bytes as f64 / summary.bytes as f64;
    let stream_csv_us = time_us(iters, runs, || {
        let text = std::fs::read_to_string(std::hint::black_box(&verilog_path)).unwrap();
        for module in text.split("\nmodule ") {
            let src = if module.starts_with("module ") {
                module.to_string()
            } else {
                format!("module {module}")
            };
            std::hint::black_box(from_verilog(&src).unwrap());
        }
    });
    let stream_store_us = time_us(iters, runs, || {
        std::hint::black_box(read_library(std::hint::black_box(&store_path)).unwrap());
    });

    // ---- cold_open_mul8: record count without a warm cache ---------------
    let cold_csv_us = time_us(iters, runs, || {
        let entries = DiskTier::<CachedCharacterization>::read_entries(std::hint::black_box(
            &csv_dir.join(CACHE_FILE),
        ))
        .unwrap();
        std::hint::black_box(entries.len());
    });
    let cold_store_us = time_us(iters, runs, || {
        let info = afp_store::inspect(std::hint::black_box(&store_path)).unwrap();
        std::hint::black_box(info.records);
    });

    // ---- report ----------------------------------------------------------
    let cases = [
        (
            "warm_start_mul8",
            format!("{entries}e"),
            warm_csv_us,
            warm_store_us,
            cache_ratio,
        ),
        (
            "stream_mul8",
            format!("{}c", streamed.len()),
            stream_csv_us,
            stream_store_us,
            corpus_ratio,
        ),
        (
            "cold_open_mul8",
            format!("{entries}e"),
            cold_csv_us,
            cold_store_us,
            cache_ratio,
        ),
    ];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (name, work, legacy_us, store_us, size_ratio) in &cases {
        let speedup = legacy_us / store_us;
        println!(
            "  {name}: legacy {legacy_us:.0} us, store {store_us:.0} us  \
             ({speedup:.2}x, {size_ratio:.2}x smaller)"
        );
        rows.push(vec![
            name.to_string(),
            work.clone(),
            format!("{legacy_us:.1}"),
            format!("{store_us:.1}"),
            format!("{speedup:.2}"),
            format!("{size_ratio:.2}"),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            work.clone(),
            format!("{legacy_us:.2}"),
            format!("{store_us:.2}"),
            format!("{speedup:.2}"),
            format!("{size_ratio:.2}"),
        ]);
    }

    write_csv(
        "store_scaling.csv",
        &[
            "case",
            "work",
            "legacy_us",
            "store_us",
            "speedup",
            "size_ratio",
        ],
        &csv_rows,
    );
    println!(
        "\n{}",
        table(
            &[
                "case",
                "work",
                "legacy us",
                "store us",
                "speedup",
                "size ratio"
            ],
            &rows
        )
    );
    println!("baseline for regression checks: BENCH_store.json (repo root)");

    for dir in [csv_dir, store_dir, corpus_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

//! Parallel-scaling and cache-warm-up measurement of the flow runtime.
//!
//! Runs the 8x8 multiplier flow (exhaustive 2^16 error space per circuit —
//! the heaviest per-circuit workload) at 1/2/4/8 worker threads, reports
//! wall-clock speedup over the serial run, then re-runs on the warm
//! characterization cache and reports the cold/warm ratio.
//!
//! Usage: `cargo run --release -p afp-bench --bin par_scaling [--quick]`
//!
//! Writes `results/par_scaling.csv`.

use std::time::Instant;

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use approxfpgas::{Flow, FlowConfig, FlowOutcome};

fn subset_spec() -> afp_circuits::LibrarySpec {
    // A mult8 subset: large enough to keep 8 workers busy across every
    // stage, small enough for a CI-friendly run.
    let mut scale = Scale::quick();
    if std::env::args().any(|a| a == "--quick") {
        scale.mul8 = 80;
    }
    scale.mul8_spec()
}

fn config(threads: usize) -> FlowConfig {
    FlowConfig {
        library: subset_spec(),
        threads,
        ..FlowConfig::default()
    }
}

fn timed(flow: &Flow) -> (f64, FlowOutcome) {
    let start = Instant::now();
    let outcome = flow.run();
    (start.elapsed().as_secs_f64(), outcome)
}

fn main() {
    let spec = subset_spec();
    println!(
        "par_scaling: mul{} x{} ({} threads available)\n",
        spec.width,
        spec.target_size,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut serial_s = 0.0f64;
    let mut reference: Option<FlowOutcome> = None;
    for threads in [1usize, 2, 4, 8] {
        let flow = Flow::new(config(threads));
        let (secs, outcome) = timed(&flow);
        if threads == 1 {
            serial_s = secs;
        }
        let speedup = serial_s / secs;
        println!(
            "  {threads} thread(s): {secs:.2} s  ({speedup:.2}x)  \
             [{} tasks, {} steals]",
            outcome.runtime.tasks_executed, outcome.runtime.steals
        );
        // The whole point: outputs are identical regardless of threads.
        if let Some(r) = &reference {
            assert_eq!(
                r.final_fronts, outcome.final_fronts,
                "nondeterministic fronts"
            );
            assert_eq!(r.coverage, outcome.coverage, "nondeterministic coverage");
            assert_eq!(r.time, outcome.time, "nondeterministic accounting");
        } else {
            reference = Some(outcome);
        }
        rows.push(vec![
            format!("{threads}"),
            format!("{secs:.2} s"),
            format!("{speedup:.2}x"),
        ]);
        csv_rows.push(vec![
            "cold".to_string(),
            format!("{threads}"),
            format!("{secs:.4}"),
            format!("{speedup:.3}"),
        ]);
    }

    // Warm-cache run: same Flow instance, so the second run hits the
    // characterization cache for every circuit.
    let flow = Flow::new(config(8));
    let (cold_s, _) = timed(&flow);
    let (warm_s, warm) = timed(&flow);
    let ratio = cold_s / warm_s;
    println!(
        "\n  warm cache @8 threads: {cold_s:.2} s cold -> {warm_s:.2} s warm \
         ({ratio:.1}x; {} hits, {} synths)",
        warm.runtime.cache_hits, warm.runtime.fpga_synths
    );
    rows.push(vec![
        "8 (warm cache)".to_string(),
        format!("{warm_s:.2} s"),
        format!("{:.2}x", serial_s / warm_s),
    ]);
    csv_rows.push(vec![
        "warm".to_string(),
        "8".to_string(),
        format!("{warm_s:.4}"),
        format!("{:.3}", serial_s / warm_s),
    ]);

    write_csv(
        "par_scaling.csv",
        &["cache", "threads", "wall_s", "speedup_vs_serial"],
        &csv_rows,
    );
    println!("\n{}", table(&["threads", "wall clock", "speedup"], &rows));
}

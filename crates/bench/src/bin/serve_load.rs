//! Characterization-service load measurement: wall time, throughput and
//! failure count of `afp serve` answering 1000 mixed-target requests
//! from 8 concurrent clients — over fresh connections, over keep-alive,
//! and through the persisted-zoo `GET /estimate` fast path.
//!
//! This is the regenerator behind EXPERIMENTS.md "Serve throughput" and
//! the `BENCH_serve.json` baseline. The claims pinned before any timing
//! is trusted:
//!
//! * **Zero failures** — every one of the 1000 requests in each burst
//!   must come back `200` with a parseable report body; a single
//!   failure aborts the bench.
//! * **Exactly one characterization per distinct request** — after the
//!   cold burst, `asic_synths` must equal the number of distinct
//!   `(spec, target)` pairs: coalescing plus the shared cache guarantee
//!   a repeated request never recomputes. Against a pre-warmed `--addr`
//!   daemon the exact pin relaxes to a bounded delta (and the warm
//!   bursts must still add zero characterizations).
//! * **Keep-alive actually reuses** — the keep-alive burst must advance
//!   `keepalive_reuses` by exactly `requests - clients` (every request
//!   after the first per connection).
//! * **Estimates never synthesize** — the `/estimate` burst must leave
//!   `asic_synths` untouched and advance `estimates_served` by the full
//!   burst size; every response must carry `X-Afp-Estimate: model`.
//!
//! Usage: `cargo run --release -p afp-bench --bin serve_load [--quick]
//!   [--addr HOST:PORT] [--shutdown]`
//!
//! By default an in-process server is started on a loopback port, with a
//! small zoo trained and persisted to a temporary `.afpm` so the
//! estimate path is exercised end to end (train → save → load → serve).
//! With `--addr` the burst targets an already-running `afp serve`
//! instead (counters are then read via `GET /stats`; the estimate burst
//! is skipped unless that daemon was started with `--models`), and
//! `--shutdown` additionally POSTs `/shutdown` when done — that pairing
//! is what the CI serve-smoke job drives.
//!
//! Writes `results/serve_load.csv`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use afp_bench::render::table;
use afp_bench::write_csv;

/// Concurrent client threads per burst.
const CLIENTS: usize = 8;
/// Requests per client per burst (8 x 125 = 1000).
const PER_CLIENT: usize = 125;

/// The mixed request vocabulary: every spec crossed with every target.
const SPECS: [&str; 13] = [
    "add8:rca",
    "add8:cla",
    "add8:csel",
    "add8:cskip",
    "add8:loa:2",
    "add8:trunc:3",
    "add8:nocarry:2",
    "add8:gear:2:2",
    "mul8:array",
    "mul8:wallace",
    "mul8:trunc:4",
    "mul8:broken:6:4",
    "mul8:compressor:3",
];
const TARGETS: [&str; 4] = [
    "lut4-ice40",
    "lut6-7series",
    "lut6-ultrascale",
    "alm-stratix",
];

/// One blocking HTTP request over a fresh connection; returns
/// `(status, body)`.
fn http(addr: &str, request: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparseable response: {response:.60}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn get(addr: &str, target: &str) -> Result<(u16, String), String> {
    http(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"),
    )
}

/// Read one `Content-Length`-delimited response from a kept-alive
/// connection; returns `(status, head, body)`.
fn read_keepalive_response(
    reader: &mut BufReader<TcpStream>,
) -> Result<(u16, String, String), String> {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("recv head: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparseable status line: {head:.60}"))?;
    let length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| "response without Content-Length".to_string())?;
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("recv body: {e}"))?;
    Ok((status, head, String::from_utf8_lossy(&body).into_owned()))
}

/// Pull `"field":N` out of the flat /stats JSON without a parser.
fn stat_u64(stats: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    stats
        .find(&needle)
        .and_then(|at| {
            let digits: String = stats[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// Fire one 1000-request burst from `CLIENTS` threads; returns
/// `(wall_us, failures)`. Failures carry the first error for the panic
/// message.
fn burst(addr: &str) -> (f64, usize, Vec<String>) {
    let t = Instant::now();
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    for i in 0..PER_CLIENT {
                        // Stride by client so concurrent clients collide on
                        // the same (spec, target) pair constantly — the
                        // coalescing-hostile schedule.
                        let n = client * PER_CLIENT + i;
                        let spec = SPECS[n % SPECS.len()];
                        let target = TARGETS[n % TARGETS.len()];
                        let path = format!("/characterize?spec={spec}&target={target}");
                        match get(addr, &path) {
                            Ok((200, body)) if body.contains("\"fpga\"") => {}
                            Ok((status, body)) => {
                                return Err(format!("{path}: status {status}: {body:.120}"))
                            }
                            Err(e) => return Err(format!("{path}: {e}")),
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_us = t.elapsed().as_secs_f64() * 1e6;
    let errors: Vec<String> = results.into_iter().filter_map(Result::err).collect();
    (wall_us, errors.len(), errors)
}

/// Fire one 1000-request burst where every client holds a single
/// kept-alive connection for its whole schedule. `path_of` maps the
/// global request number to a request path; `expect` is a substring
/// every response head+body must contain.
fn burst_keepalive(
    addr: &str,
    path_of: &(dyn Fn(usize) -> String + Sync),
    expect: &str,
) -> (f64, usize, Vec<String>) {
    let t = Instant::now();
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let stream =
                        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    let _ = stream.set_nodelay(true);
                    let mut reader = BufReader::new(stream);
                    for i in 0..PER_CLIENT {
                        let path = path_of(client * PER_CLIENT + i);
                        let request = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
                        reader
                            .get_mut()
                            .write_all(request.as_bytes())
                            .map_err(|e| format!("{path}: send: {e}"))?;
                        let (status, head, body) = read_keepalive_response(&mut reader)
                            .map_err(|e| format!("{path}: {e}"))?;
                        if status != 200 {
                            return Err(format!("{path}: status {status}: {body:.120}"));
                        }
                        if !head.contains(expect) && !body.contains(expect) {
                            return Err(format!("{path}: response without `{expect}`"));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_us = t.elapsed().as_secs_f64() * 1e6;
    let errors: Vec<String> = results.into_iter().filter_map(Result::err).collect();
    (wall_us, errors.len(), errors)
}

/// Train a small adder zoo and persist it as a temporary `.afpm`, so the
/// in-process server exercises the full train → save → load → serve
/// estimate path.
fn train_and_save_zoo() -> std::path::PathBuf {
    let lib = afp_circuits::build_library(&afp_circuits::LibrarySpec::new(
        afp_circuits::ArithKind::Adder,
        8,
        60,
    ));
    let records = approxfpgas::dataset::characterize_library(
        &lib,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    );
    let subset = approxfpgas::dataset::sample_subset(records.len(), 0.5, 24, 7);
    let (train, val) = approxfpgas::dataset::train_validate_split(&subset, 0.8, 7);
    let zoo = approxfpgas::fidelity::train_zoo(
        &records,
        &train,
        &val,
        &[afp_ml::MlModelId::Ml1, afp_ml::MlModelId::Ml14],
        0.01,
    );
    let path = std::env::temp_dir().join(format!("afp-bench-zoo-{}.afpm", std::process::id()));
    approxfpgas::save_zoo(
        &path,
        &zoo,
        afp_fpga::DEFAULT_TARGET,
        &[(afp_circuits::ArithKind::Adder, 8)],
    )
    .expect("zoo saves");
    path
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let external_addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let shutdown_after = args.iter().any(|a| a == "--shutdown");
    let warm_runs = if quick { 1 } else { 3 };
    let distinct = SPECS.len() * TARGETS.len();
    let total = CLIENTS * PER_CLIENT;
    println!(
        "serve_load: {total} requests/burst from {CLIENTS} clients, {distinct} distinct \
         (spec, target) pairs, {warm_runs} warm run(s)\n"
    );

    // In-process server unless --addr points at a live daemon. The
    // in-process server loads a freshly trained-and-persisted zoo (so
    // the estimate burst runs the real `.afpm` load path) and gets one
    // worker per bench client — a kept-alive connection occupies its
    // worker for the whole burst.
    let mut zoo_path = None;
    let (addr, handle) = match &external_addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let path = train_and_save_zoo();
            let handle = afp_serve::serve(afp_serve::ServeConfig {
                queue_depth: 2 * total,
                threads: CLIENTS,
                models: vec![path.clone()],
                ..afp_serve::ServeConfig::default()
            })
            .expect("in-process server starts");
            zoo_path = Some(path);
            (handle.addr().unwrap().to_string(), Some(handle))
        }
    };

    // An external daemon may already have served traffic or carry a warm
    // disk cache; the "exactly `distinct` characterizations" pin is only
    // provable from a genuinely fresh start. The warm-burst pin (no
    // recharacterization) holds either way, as a delta.
    let (status, stats) = get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    let baseline_asic = stat_u64(&stats, "asic_synths");
    let fresh = baseline_asic == 0
        && stat_u64(&stats, "hits") == 0
        && stat_u64(&stats, "misses") == 0
        && stat_u64(&stats, "entries") == 0;
    if !fresh {
        println!(
            "note: daemon not fresh (asic_synths={baseline_asic}); \
             skipping the exact characterization-count pin"
        );
    }

    // Equivalence gate before any timing: a served body must be the
    // request_report of the direct library-level characterization.
    {
        let circuit = afp_circuits::from_spec_ref(SPECS[0]).unwrap();
        let profile = afp_fpga::target::named(TARGETS[0]).unwrap();
        let config = approxfpgas::RequestConfig::for_target_config(
            profile.apply(&afp_fpga::FpgaConfig::default()),
        );
        let record = approxfpgas::characterize_request(
            &circuit,
            &config,
            &afp_runtime::Runtime::serial(),
            None,
            &mut approxfpgas::record::CharacterizeScratch::default(),
        );
        let want = format!("{}\n", approxfpgas::request_report(&record).to_json());
        let (status, got) = get(
            &addr,
            &format!("/characterize?spec={}&target={}", SPECS[0], TARGETS[0]),
        )
        .expect("equivalence request");
        assert_eq!(status, 200, "{got}");
        assert_eq!(got, want, "served body diverged from the direct report");
    }

    let (cold_us, cold_errors, cold_messages) = burst(&addr);
    assert!(
        cold_errors == 0,
        "cold burst had {cold_errors} failed clients: {}",
        cold_messages.join("; ")
    );

    // The coalescing pin: every distinct pair characterized exactly once
    // (from a fresh start; otherwise the cold delta is bounded by it).
    let (status, stats) = get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    let asic_synths = stat_u64(&stats, "asic_synths");
    if fresh {
        assert_eq!(
            asic_synths, distinct as u64,
            "expected exactly one characterization per distinct request\n{stats}"
        );
    } else {
        assert!(
            asic_synths - baseline_asic <= distinct as u64,
            "cold burst characterized more than the distinct vocabulary\n{stats}"
        );
    }
    let coalesced = stat_u64(&stats, "requests_coalesced");

    let mut warm_samples: Vec<f64> = (0..warm_runs)
        .map(|_| {
            let (us, errors, messages) = burst(&addr);
            assert!(
                errors == 0,
                "warm burst had {errors} failed clients: {}",
                messages.join("; ")
            );
            us
        })
        .collect();
    warm_samples.sort_by(|a, b| afp_ord::asc(*a, *b));
    let warm_us = warm_samples[warm_samples.len() / 2];

    let (status, stats) = get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    assert_eq!(
        stat_u64(&stats, "asic_synths"),
        asic_synths,
        "warm bursts must not recharacterize\n{stats}"
    );
    let reuses_before = stat_u64(&stats, "keepalive_reuses");

    // Warm keep-alive burst: the same fully-cached schedule, but each
    // client holds one connection for all of its requests.
    let characterize_path = |n: usize| {
        let spec = SPECS[n % SPECS.len()];
        let target = TARGETS[n % TARGETS.len()];
        format!("/characterize?spec={spec}&target={target}")
    };
    let (keepalive_us, ka_errors, ka_messages) =
        burst_keepalive(&addr, &characterize_path, "\"fpga\"");
    assert!(
        ka_errors == 0,
        "keep-alive burst had {ka_errors} failed clients: {}",
        ka_messages.join("; ")
    );
    let (status, stats) = get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    assert_eq!(
        stat_u64(&stats, "asic_synths"),
        asic_synths,
        "keep-alive burst must not recharacterize\n{stats}"
    );
    assert_eq!(
        stat_u64(&stats, "keepalive_reuses") - reuses_before,
        (total - CLIENTS) as u64,
        "every request after the first per connection must count as a reuse\n{stats}"
    );

    // Estimate burst: model answers only, over keep-alive. Skipped when
    // an external daemon carries no zoo (`--models` not passed to it).
    let models_loaded = stat_u64(&stats, "models_loaded");
    let estimate_us = if models_loaded == 0 {
        println!("note: no model zoo loaded; skipping the /estimate burst");
        None
    } else {
        let covered: Vec<&str> = SPECS
            .iter()
            .copied()
            .filter(|s| s.starts_with("add8:"))
            .collect();
        let estimates_before = stat_u64(&stats, "estimates_served");
        let estimate_path = |n: usize| {
            format!(
                "/estimate?spec={}&target={}",
                covered[n % covered.len()],
                afp_fpga::DEFAULT_TARGET
            )
        };
        let (us, errors, messages) =
            burst_keepalive(&addr, &estimate_path, "X-Afp-Estimate: model");
        assert!(
            errors == 0,
            "estimate burst had {errors} failed clients: {}",
            messages.join("; ")
        );
        let (status, stats) = get(&addr, "/stats").expect("stats");
        assert_eq!(status, 200, "{stats}");
        assert_eq!(
            stat_u64(&stats, "asic_synths"),
            asic_synths,
            "the estimate fast path must never synthesize\n{stats}"
        );
        assert_eq!(
            stat_u64(&stats, "estimates_served") - estimates_before,
            total as u64,
            "every estimate request must be answered from the zoo\n{stats}"
        );
        Some(us)
    };

    let (status, stats) = get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    let served = stat_u64(&stats, "requests_served");

    if shutdown_after {
        let (status, _) = http(
            &addr,
            "POST /shutdown HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n",
        )
        .expect("shutdown");
        assert_eq!(status, 200);
    }
    if let Some(handle) = handle {
        handle.shutdown();
    }
    if let Some(path) = zoo_path {
        let _ = std::fs::remove_file(path);
    }

    let mut cases = vec![
        ("serve_cold_1000", cold_us),
        ("serve_warm_1000", warm_us),
        ("serve_warm_keepalive_1000", keepalive_us),
    ];
    if let Some(us) = estimate_us {
        cases.push(("serve_estimate_1000", us));
    }
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (case, wall_us) in cases {
        let rps = total as f64 / (wall_us / 1e6);
        rows.push(vec![
            case.to_string(),
            format!("{total}"),
            format!("{CLIENTS}"),
            format!("{distinct}"),
            "0".to_string(),
            format!("{:.0}", wall_us),
            format!("{rps:.0}"),
        ]);
        csv_rows.push(vec![
            case.to_string(),
            format!("{total}"),
            format!("{CLIENTS}"),
            format!("{distinct}"),
            "0".to_string(),
            format!("{wall_us:.2}"),
            format!("{rps:.1}"),
        ]);
    }
    write_csv(
        "serve_load.csv",
        &[
            "case", "requests", "clients", "distinct", "errors", "wall_us", "rps",
        ],
        &csv_rows,
    );
    println!(
        "{}",
        table(
            &["case", "requests", "clients", "distinct", "errors", "wall us", "req/s"],
            &rows
        )
    );
    println!(
        "\ncold: {:.0} ms, warm: {:.0} ms, keep-alive: {:.0} ms ({:.2}x warm){}; \
         {served} served total, {coalesced} coalesced after the cold burst, \
         {asic_synths} characterizations",
        cold_us / 1e3,
        warm_us / 1e3,
        keepalive_us / 1e3,
        warm_us / keepalive_us,
        match estimate_us {
            Some(us) => format!(", estimate: {:.0} ms", us / 1e3),
            None => String::new(),
        }
    );
    println!("baseline for regression checks: BENCH_serve.json (repo root)");
}

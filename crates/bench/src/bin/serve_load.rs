//! Characterization-service load measurement: wall time, throughput and
//! failure count of `afp serve` answering 1000 mixed-target requests
//! from 8 concurrent clients.
//!
//! This is the regenerator behind EXPERIMENTS.md "Serve throughput" and
//! the `BENCH_serve.json` baseline. Two claims are pinned before any
//! timing is trusted:
//!
//! * **Zero failures** — every one of the 1000 requests in each burst
//!   must come back `200` with a parseable report body; a single
//!   failure aborts the bench.
//! * **Exactly one characterization per distinct request** — after the
//!   cold burst, `asic_synths` must equal the number of distinct
//!   `(spec, target)` pairs: coalescing plus the shared cache guarantee
//!   a repeated request never recomputes. Against a pre-warmed `--addr`
//!   daemon the exact pin relaxes to a bounded delta (and the warm
//!   bursts must still add zero characterizations).
//!
//! Usage: `cargo run --release -p afp-bench --bin serve_load [--quick]
//!   [--addr HOST:PORT] [--shutdown]`
//!
//! By default an in-process server is started on a loopback port. With
//! `--addr` the burst targets an already-running `afp serve` instead
//! (counters are then read via `GET /stats`), and `--shutdown`
//! additionally POSTs `/shutdown` when done — that pairing is what the
//! CI serve-smoke job drives.
//!
//! Writes `results/serve_load.csv`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use afp_bench::render::table;
use afp_bench::write_csv;

/// Concurrent client threads per burst.
const CLIENTS: usize = 8;
/// Requests per client per burst (8 x 125 = 1000).
const PER_CLIENT: usize = 125;

/// The mixed request vocabulary: every spec crossed with every target.
const SPECS: [&str; 13] = [
    "add8:rca",
    "add8:cla",
    "add8:csel",
    "add8:cskip",
    "add8:loa:2",
    "add8:trunc:3",
    "add8:nocarry:2",
    "add8:gear:2:2",
    "mul8:array",
    "mul8:wallace",
    "mul8:trunc:4",
    "mul8:broken:6:4",
    "mul8:compressor:3",
];
const TARGETS: [&str; 4] = [
    "lut4-ice40",
    "lut6-7series",
    "lut6-ultrascale",
    "alm-stratix",
];

/// One blocking HTTP request over a fresh connection; returns
/// `(status, body)`.
fn http(addr: &str, request: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparseable response: {response:.60}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn get(addr: &str, target: &str) -> Result<(u16, String), String> {
    http(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"),
    )
}

/// Pull `"field":N` out of the flat /stats JSON without a parser.
fn stat_u64(stats: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    stats
        .find(&needle)
        .and_then(|at| {
            let digits: String = stats[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// Fire one 1000-request burst from `CLIENTS` threads; returns
/// `(wall_us, failures)`. Failures carry the first error for the panic
/// message.
fn burst(addr: &str) -> (f64, usize, Vec<String>) {
    let t = Instant::now();
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    for i in 0..PER_CLIENT {
                        // Stride by client so concurrent clients collide on
                        // the same (spec, target) pair constantly — the
                        // coalescing-hostile schedule.
                        let n = client * PER_CLIENT + i;
                        let spec = SPECS[n % SPECS.len()];
                        let target = TARGETS[n % TARGETS.len()];
                        let path = format!("/characterize?spec={spec}&target={target}");
                        match get(addr, &path) {
                            Ok((200, body)) if body.contains("\"fpga\"") => {}
                            Ok((status, body)) => {
                                return Err(format!("{path}: status {status}: {body:.120}"))
                            }
                            Err(e) => return Err(format!("{path}: {e}")),
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_us = t.elapsed().as_secs_f64() * 1e6;
    let errors: Vec<String> = results.into_iter().filter_map(Result::err).collect();
    (wall_us, errors.len(), errors)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let external_addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let shutdown_after = args.iter().any(|a| a == "--shutdown");
    let warm_runs = if quick { 1 } else { 3 };
    let distinct = SPECS.len() * TARGETS.len();
    let total = CLIENTS * PER_CLIENT;
    println!(
        "serve_load: {total} requests/burst from {CLIENTS} clients, {distinct} distinct \
         (spec, target) pairs, {warm_runs} warm run(s)\n"
    );

    // In-process server unless --addr points at a live daemon.
    let (addr, handle) = match &external_addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = afp_serve::serve(afp_serve::ServeConfig {
                queue_depth: 2 * total,
                ..afp_serve::ServeConfig::default()
            })
            .expect("in-process server starts");
            (handle.addr().unwrap().to_string(), Some(handle))
        }
    };

    // An external daemon may already have served traffic or carry a warm
    // disk cache; the "exactly `distinct` characterizations" pin is only
    // provable from a genuinely fresh start. The warm-burst pin (no
    // recharacterization) holds either way, as a delta.
    let (status, stats) = get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    let baseline_asic = stat_u64(&stats, "asic_synths");
    let fresh = baseline_asic == 0
        && stat_u64(&stats, "hits") == 0
        && stat_u64(&stats, "misses") == 0
        && stat_u64(&stats, "entries") == 0;
    if !fresh {
        println!(
            "note: daemon not fresh (asic_synths={baseline_asic}); \
             skipping the exact characterization-count pin"
        );
    }

    // Equivalence gate before any timing: a served body must be the
    // request_report of the direct library-level characterization.
    {
        let circuit = afp_circuits::from_spec_ref(SPECS[0]).unwrap();
        let profile = afp_fpga::target::named(TARGETS[0]).unwrap();
        let config = approxfpgas::RequestConfig::for_target_config(
            profile.apply(&afp_fpga::FpgaConfig::default()),
        );
        let record = approxfpgas::characterize_request(
            &circuit,
            &config,
            &afp_runtime::Runtime::serial(),
            None,
            &mut approxfpgas::record::CharacterizeScratch::default(),
        );
        let want = format!("{}\n", approxfpgas::request_report(&record).to_json());
        let (status, got) = get(
            &addr,
            &format!("/characterize?spec={}&target={}", SPECS[0], TARGETS[0]),
        )
        .expect("equivalence request");
        assert_eq!(status, 200, "{got}");
        assert_eq!(got, want, "served body diverged from the direct report");
    }

    let (cold_us, cold_errors, cold_messages) = burst(&addr);
    assert!(
        cold_errors == 0,
        "cold burst had {cold_errors} failed clients: {}",
        cold_messages.join("; ")
    );

    // The coalescing pin: every distinct pair characterized exactly once
    // (from a fresh start; otherwise the cold delta is bounded by it).
    let (status, stats) = get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    let asic_synths = stat_u64(&stats, "asic_synths");
    if fresh {
        assert_eq!(
            asic_synths, distinct as u64,
            "expected exactly one characterization per distinct request\n{stats}"
        );
    } else {
        assert!(
            asic_synths - baseline_asic <= distinct as u64,
            "cold burst characterized more than the distinct vocabulary\n{stats}"
        );
    }
    let coalesced = stat_u64(&stats, "requests_coalesced");

    let mut warm_samples: Vec<f64> = (0..warm_runs)
        .map(|_| {
            let (us, errors, messages) = burst(&addr);
            assert!(
                errors == 0,
                "warm burst had {errors} failed clients: {}",
                messages.join("; ")
            );
            us
        })
        .collect();
    warm_samples.sort_by(|a, b| afp_ord::asc(*a, *b));
    let warm_us = warm_samples[warm_samples.len() / 2];

    let (status, stats) = get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    assert_eq!(
        stat_u64(&stats, "asic_synths"),
        asic_synths,
        "warm bursts must not recharacterize\n{stats}"
    );
    let served = stat_u64(&stats, "requests_served");

    if shutdown_after {
        let (status, _) = http(
            &addr,
            "POST /shutdown HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n",
        )
        .expect("shutdown");
        assert_eq!(status, 200);
    }
    if let Some(handle) = handle {
        handle.shutdown();
    }

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (case, wall_us) in [("serve_cold_1000", cold_us), ("serve_warm_1000", warm_us)] {
        let rps = total as f64 / (wall_us / 1e6);
        rows.push(vec![
            case.to_string(),
            format!("{total}"),
            format!("{CLIENTS}"),
            format!("{distinct}"),
            "0".to_string(),
            format!("{:.0}", wall_us),
            format!("{rps:.0}"),
        ]);
        csv_rows.push(vec![
            case.to_string(),
            format!("{total}"),
            format!("{CLIENTS}"),
            format!("{distinct}"),
            "0".to_string(),
            format!("{wall_us:.2}"),
            format!("{rps:.1}"),
        ]);
    }
    write_csv(
        "serve_load.csv",
        &[
            "case", "requests", "clients", "distinct", "errors", "wall_us", "rps",
        ],
        &csv_rows,
    );
    println!(
        "{}",
        table(
            &["case", "requests", "clients", "distinct", "errors", "wall us", "req/s"],
            &rows
        )
    );
    println!(
        "\ncold: {:.0} ms, warm: {:.0} ms; {served} served total, {coalesced} coalesced \
         after the cold burst, {asic_synths} characterizations",
        cold_us / 1e3,
        warm_us / 1e3
    );
    println!("baseline for regression checks: BENCH_serve.json (repo root)");
}

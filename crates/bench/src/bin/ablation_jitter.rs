//! Ablation: how the place&route noise floor caps model fidelity.
//!
//! Re-characterizes one library under increasing deterministic P&R jitter
//! and re-trains the top models. As jitter grows, even a perfect model
//! cannot order circuit pairs whose true costs differ by less than the
//! noise — reproducing why the paper's fidelities plateau around 90%
//! rather than approaching 100%.
//!
//! Usage: `cargo run --release -p afp-bench --bin ablation_jitter [--quick]`

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_ml::MlModelId;
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::train_zoo;
use approxfpgas::record::FpgaParam;

fn main() {
    let scale = Scale::from_args();
    let mut spec = scale.mul8_spec();
    spec.target_size = spec.target_size.min(1500);
    println!(
        "ablation_jitter: building {} 8x8 multipliers...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let models = [
        MlModelId::Ml4,
        MlModelId::Ml11,
        MlModelId::Ml14,
        MlModelId::Ml5,
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for jitter in [0.0f64, 0.04, 0.08, 0.16] {
        let fpga_cfg = afp_fpga::FpgaConfig {
            pnr_jitter: jitter,
            ..afp_fpga::FpgaConfig::default()
        };
        let records = characterize_library(
            &library,
            &afp_asic::AsicConfig::default(),
            &fpga_cfg,
            &afp_error::ErrorConfig::default(),
        );
        let subset = sample_subset(records.len(), 0.10, 40, 0x717);
        let (train, validate) = train_validate_split(&subset, 0.80, 0x717);
        let zoo = train_zoo(&records, &train, &validate, &models, 0.01);
        for param in FpgaParam::ALL {
            let best = zoo
                .fidelities
                .iter()
                .filter(|f| f.param == param)
                .map(|f| f.fidelity)
                .fold(0.0f64, f64::max);
            rows.push(vec![
                format!("{:.0}%", 100.0 * jitter),
                format!("{param:?}"),
                format!("{:.1}%", 100.0 * best),
            ]);
            csv.push(vec![
                format!("{jitter:.2}"),
                format!("{param:?}"),
                format!("{best:.4}"),
            ]);
        }
    }
    write_csv(
        "ablation_jitter.csv",
        &["pnr_jitter", "param", "best_fidelity"],
        &csv,
    );
    println!(
        "\n{}",
        table(&["P&R jitter", "param", "best fidelity"], &rows)
    );
    println!("\nreading: fidelity should fall as jitter rises — the noise floor, not\nmodel capacity, limits estimation quality (delay is hit hardest, matching\nthe paper's remark that latency is the least predictable parameter).");
}

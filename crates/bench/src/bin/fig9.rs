//! Fig. 9 — AutoAx-FPGA vs random search on the Gaussian-filter
//! accelerator: three scenarios (latency/power/area vs SSIM), candidate
//! counts and the configuration-space reduction.
//!
//! Usage: `cargo run --release -p afp-bench --bin fig9 [--quick]`

use afp_autoax::search::AutoAx;
use afp_autoax::{AcceleratorConfig, AutoAxConfig, AutoAxOutcome, ComponentLibrary};
use afp_bench::render::{scatter, table, Series};
use afp_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let library = ComponentLibrary::paper_defaults(&afp_fpga::FpgaConfig::default());
    let config = if quick {
        AutoAxConfig {
            training_samples: 150,
            restarts: 12,
            steps: 30,
            random_budget: 60,
            image_size: 24,
            ..AutoAxConfig::default()
        }
    } else {
        AutoAxConfig {
            training_samples: 1200,
            restarts: 60,
            steps: 120,
            random_budget: 300,
            image_size: 32,
            ..AutoAxConfig::default()
        }
    };
    println!(
        "Fig. 9: AutoAx-FPGA on the Gaussian filter ({} training samples)...",
        config.training_samples
    );
    let runner = AutoAx::new(&library, config);
    let outcome = runner.run();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (objective, designs) in &outcome.autoax {
        let front = AutoAxOutcome::front(designs, *objective);
        let dom = AutoAxOutcome::domination_rate(designs, &outcome.random, *objective);
        rows.push(vec![
            objective.label().to_string(),
            format!("{}", designs.len()),
            format!("{}", front.len()),
            format!("{:.0}%", 100.0 * dom),
        ]);
        for d in designs {
            csv.push(vec![
                objective.label().to_string(),
                "autoax".to_string(),
                format!("{:.4}", objective.of(&d.cost)),
                format!("{:.5}", d.ssim),
            ]);
        }
        for d in &outcome.random {
            csv.push(vec![
                objective.label().to_string(),
                "random".to_string(),
                format!("{:.4}", objective.of(&d.cost)),
                format!("{:.5}", d.ssim),
            ]);
        }
        println!(
            "\n{} — AutoAx-FPGA ('A') vs random search ('r'):\n{}",
            objective.label(),
            scatter(
                &[
                    Series {
                        glyph: 'r',
                        label: "random search".into(),
                        points: outcome
                            .random
                            .iter()
                            .map(|d| (objective.of(&d.cost), d.ssim))
                            .collect(),
                    },
                    Series {
                        glyph: 'A',
                        label: "AutoAx-FPGA".into(),
                        points: designs
                            .iter()
                            .map(|d| (objective.of(&d.cost), d.ssim))
                            .collect(),
                    },
                ],
                70,
                14,
                objective.label(),
                "SSIM",
            )
        );
    }
    write_csv(
        "fig9_autoax_vs_random.csv",
        &["scenario", "method", "cost", "ssim"],
        &csv,
    );
    println!(
        "\n{}",
        table(
            &["scenario", "synthesized", "front size", "random dominated"],
            &rows
        )
    );
    println!("\n=== Fig. 9 summary ===");
    println!(
        "configuration space: {:.2e} possible accelerators (paper: 4.95e14)",
        AcceleratorConfig::space_size(&library)
    );
    let explored: usize =
        outcome.autoax.iter().map(|(_, d)| d.len()).sum::<usize>() + outcome.training.len();
    println!(
        "designs actually measured/synthesized: {explored} (paper: 368/444/946 per scenario + 5000 training)"
    );
    println!("AutoAx-FPGA should dominate random search; optimizing area/power transfers to other parameters better than optimizing latency (estimator bias).");
}

//! Ablation: which features carry the estimation signal?
//!
//! Trains the same models on (a) the full feature set, (b) structural
//! features only (gate histogram/depth/fanout), (c) ASIC parameters only —
//! quantifying how much the "ASIC metrics as features" idea (the paper's
//! ML1–ML3 baseline, folded into the richer models) contributes.
//!
//! Usage: `cargo run --release -p afp-bench --bin ablation_features [--quick]`

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_ml::metrics::fidelity;
use afp_ml::zoo::AsicColumns;
use afp_ml::{build_model, Matrix, MlModelId};
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::feature_matrix;
use approxfpgas::record::{FeatureLayout, FpgaParam};

fn mask_columns(x: &Matrix, keep: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        for &c in keep {
            out.set(r, c, x.get(r, c));
        }
    }
    out
}

fn main() {
    let scale = Scale::from_args();
    let spec = scale.mul8_spec();
    println!(
        "ablation_features: characterizing {} 8x8 multipliers...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let records = characterize_library(
        &library,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    );
    let layout = FeatureLayout::standard();
    let subset = sample_subset(records.len(), 0.10, 40, 0xAB1);
    let (train, validate) = train_validate_split(&subset, 0.80, 0xAB1);
    let x_train_full = feature_matrix(&records, &train, &layout);
    let x_val_full = feature_matrix(&records, &validate, &layout);

    let asic = layout.asic_columns();
    let all: Vec<usize> = (0..layout.len()).collect();
    let structural: Vec<usize> = (0..layout.len())
        .filter(|&c| c != asic.power && c != asic.latency && c != asic.area)
        .collect();
    let asic_only = vec![asic.power, asic.latency, asic.area];
    let variants: [(&str, &[usize]); 3] = [
        ("full", &all),
        ("structural-only", &structural),
        ("asic-only", &asic_only),
    ];

    let models = [
        MlModelId::Ml11,
        MlModelId::Ml14,
        MlModelId::Ml5,
        MlModelId::Ml18,
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (vname, keep) in variants {
        let xt = mask_columns(&x_train_full, keep);
        let xv = mask_columns(&x_val_full, keep);
        for param in FpgaParam::ALL {
            let yt: Vec<f64> = train
                .iter()
                .map(|&i| records[i].fpga_param(param))
                .collect();
            let yv: Vec<f64> = validate
                .iter()
                .map(|&i| records[i].fpga_param(param))
                .collect();
            let mut mean = 0.0;
            for id in models {
                let mut m = build_model(
                    id,
                    AsicColumns {
                        power: asic.power,
                        latency: asic.latency,
                        area: asic.area,
                    },
                );
                m.fit(&xt, &yt).expect("ablation training");
                let f = fidelity(&m.predict(&xv), &yv, 0.01);
                mean += f;
                csv.push(vec![
                    vname.to_string(),
                    format!("{param:?}"),
                    id.label().to_string(),
                    format!("{f:.4}"),
                ]);
            }
            rows.push(vec![
                vname.to_string(),
                format!("{param:?}"),
                format!("{:.1}%", 100.0 * mean / models.len() as f64),
            ]);
        }
    }
    write_csv(
        "ablation_features.csv",
        &["variant", "param", "model", "fidelity"],
        &csv,
    );
    println!(
        "\n{}",
        table(&["feature set", "param", "mean fidelity (4 models)"], &rows)
    );
    println!("\nreading: structural features alone should nearly match the full set\n(LUTs follow structure), while ASIC-only features lag — exactly why the\npaper's ML4+ models beat the plain ASIC regressions ML1-ML3.");
}

//! Estimator-driven DSE validated against exhaustive ground truth.
//!
//! The Sobel accelerator's adder-only configuration space (8^5 = 32,768)
//! is small enough to enumerate completely — something the paper could
//! not afford for its 4.95e14-point Gaussian space. This binary:
//!
//! 1. measures *every* configuration (true SSIM + true cost),
//! 2. runs the AutoAx-style loop (random training sample → estimators →
//!    estimate all → peel 3 pseudo-pareto fronts → "synthesize" those),
//! 3. reports exactly how much of the true pareto front the estimator
//!    flow recovers and at what synthesis budget — closing the loop the
//!    paper leaves to trust.
//!
//! Usage: `cargo run --release -p afp-bench --bin sobel_exhaustive [--quick]`

use afp_autoax::image::{plasma, Image};
use afp_autoax::sobel::{exact_sobel, SobelAccelerator, SobelConfig};
use afp_autoax::ssim::ssim;
use afp_autoax::ComponentLibrary;
use afp_bench::render::table;
use afp_bench::write_csv;
use afp_ml::forest::RandomForest;
use afp_ml::linear::Ridge;
use afp_ml::{Matrix, Regressor};
use approxfpgas::pareto::{coverage, pareto_front, peel_fronts};

fn features(cfg: &SobelConfig, n_adders: usize) -> Vec<f64> {
    let mut f = vec![0.0; 5 * n_adders];
    for (slot, &c) in cfg.adder_slots.iter().enumerate() {
        f[slot * n_adders + c] = 1.0;
    }
    f
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let library = ComponentLibrary::paper_defaults(&afp_fpga::FpgaConfig::default());
    let accel = SobelAccelerator::new(&library);
    let img: Image = plasma(if quick { 16 } else { 24 }, 77);
    let reference = exact_sobel(&img);

    let mut all = SobelConfig::enumerate(&library);
    if quick {
        // Deterministic subsample: every 11th configuration.
        all = all.into_iter().step_by(11).collect();
    }
    println!(
        "measuring {} Sobel configurations exhaustively...",
        all.len()
    );
    let measured: Vec<(f64, f64)> = all
        .iter()
        .map(|cfg| {
            let s = ssim(&accel.filter(cfg, &img), &reference);
            let c = accel.hw_cost(cfg);
            (c.luts as f64, 1.0 - s)
        })
        .collect();
    let truth = pareto_front(&measured);
    println!(
        "true pareto front: {} / {} configurations",
        truth.len(),
        all.len()
    );

    // AutoAx-style estimator flow on the same space.
    let n_adders = library.adders().len();
    let train_n = if quick { 150 } else { 800 };
    let mut s = 0xD05Eu64;
    let mut pick = || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        (s >> 33) as usize % all.len()
    };
    let train_idx: Vec<usize> = (0..train_n).map(|_| pick()).collect();
    let rows: Vec<Vec<f64>> = train_idx
        .iter()
        .map(|&i| features(&all[i], n_adders))
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Matrix::from_rows(&refs);
    let y_err: Vec<f64> = train_idx.iter().map(|&i| measured[i].1).collect();
    let y_cost: Vec<f64> = train_idx.iter().map(|&i| measured[i].0).collect();
    // The composed cost is *linear* in the one-hot features, so ridge
    // recovers it (nearly) exactly; quality needs the nonlinear forest.
    let mut qor = RandomForest::new(60, Default::default(), 0x50B3);
    let mut cost = Ridge::new(1e-6);
    qor.fit(&x, &y_err).expect("qor estimator");
    cost.fit(&x, &y_cost).expect("cost estimator");

    // Estimate the whole space (cheap) and peel pseudo-pareto fronts.
    let est: Vec<(f64, f64)> = all
        .iter()
        .map(|cfg| {
            let f = features(cfg, n_adders);
            (cost.predict_row(&f), qor.predict_row(&f))
        })
        .collect();
    let mut rows_out = Vec::new();
    let mut csv = Vec::new();
    for fronts in 1..=3usize {
        let mut selected: std::collections::BTreeSet<usize> = train_idx.iter().copied().collect();
        for front in peel_fronts(&est, fronts) {
            selected.extend(front);
        }
        let sel: Vec<usize> = selected.iter().copied().collect();
        let sel_pts: Vec<(f64, f64)> = sel.iter().map(|&i| measured[i]).collect();
        let found: Vec<usize> = pareto_front(&sel_pts).iter().map(|&k| sel[k]).collect();
        let cov = coverage(&truth, &found, &measured);
        // Near-coverage: a true-front point counts when some found point
        // is within 2% cost and 0.002 of its error — the practically
        //-equivalent-design notion a dense space calls for.
        let near = truth
            .iter()
            .filter(|&&t| {
                found.iter().any(|&f| {
                    (measured[f].0 - measured[t].0).abs() <= 0.02 * measured[t].0.max(1.0)
                        && (measured[f].1 - measured[t].1).abs() <= 0.002
                })
            })
            .count() as f64
            / truth.len().max(1) as f64;
        rows_out.push(vec![
            format!("{fronts}"),
            format!("{}", sel.len()),
            format!("{:.1}%", 100.0 * sel.len() as f64 / all.len() as f64),
            format!("{:.0}%", 100.0 * cov),
            format!("{:.0}%", 100.0 * near),
        ]);
        csv.push(vec![
            format!("{fronts}"),
            format!("{}", sel.len()),
            format!("{cov:.4}"),
            format!("{near:.4}"),
        ]);
    }
    write_csv(
        "sobel_exhaustive.csv",
        &["fronts", "synthesized", "coverage", "near_coverage"],
        &csv,
    );
    println!(
        "\n{}",
        table(
            &[
                "pseudo-fronts",
                "synthesized",
                "% of space",
                "exact coverage",
                "near coverage"
            ],
            &rows_out
        )
    );
    println!("\nreading: the ground truth exposes what coverage numbers hide — in a\ndense space, exact front membership is mostly luck (a few percent), and\neven near-coverage stays partial at this budget. The estimator flow's\nreal product is a good *approximation* of the trade-off curve, not the\nexact pareto set; the paper's ~71% coverage on sparse circuit libraries\nis the easier regime.");
}

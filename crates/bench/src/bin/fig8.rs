//! Fig. 8 — The pareto-optimal FPGA-ACs obtained by the full flow on the
//! 8-/16-bit adder and 8x8/16x16 multiplier libraries: synthesized
//! points, recovered fronts, coverage (~71% avg in the paper) and the
//! ~10x exploration-time reduction.
//!
//! Usage: `cargo run --release -p afp-bench --bin fig8 [--quick]`

use afp_bench::render::{scatter, table, Series};
use afp_bench::{human_time, write_csv, Scale};
use afp_circuits::{ArithKind, LibrarySpec};
use approxfpgas::record::FpgaParam;
use approxfpgas::{Flow, FlowConfig};

fn main() {
    let scale = Scale::from_args();
    let libs = [
        LibrarySpec::new(ArithKind::Adder, 8, scale.add8),
        LibrarySpec::new(ArithKind::Adder, 16, scale.add16),
        LibrarySpec::new(ArithKind::Multiplier, 8, scale.mul8),
        LibrarySpec::new(ArithKind::Multiplier, 16, scale.mul16),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut cov_sum = 0.0;
    let mut cov_n = 0usize;
    for spec in libs {
        let label = format!("{}{}", spec.kind.mnemonic(), spec.width);
        println!("flow on {label} ({} circuits)...", spec.target_size);
        let outcome = Flow::new(FlowConfig {
            library: spec,
            ..FlowConfig::default()
        })
        .run();
        for (&param, front) in &outcome.final_fronts {
            let cov = outcome.coverage[&param];
            cov_sum += cov;
            cov_n += 1;
            rows.push(vec![
                label.clone(),
                format!("{param:?}"),
                format!("{}", outcome.true_fronts[&param].len()),
                format!("{}", front.len()),
                format!("{:.0}%", 100.0 * cov),
                afp_obs::fmt_ratio(outcome.time.speedup()),
            ]);
            for &i in front {
                let r = &outcome.records[i];
                csv.push(vec![
                    label.clone(),
                    format!("{param:?}"),
                    r.name.clone(),
                    format!("{:.5}", r.fpga_param(param)),
                    format!("{:.6}", r.error.med),
                    format!("{}", r.fpga.luts),
                ]);
            }
        }
        // One scatter per library: area vs MED, synthesized vs front.
        let param = FpgaParam::Area;
        let synth_pts: Vec<(f64, f64)> = outcome
            .synthesized
            .iter()
            .map(|&i| {
                (
                    outcome.records[i].fpga_param(param),
                    outcome.records[i].error.med.min(0.2),
                )
            })
            .collect();
        let front_pts: Vec<(f64, f64)> = outcome.final_fronts[&param]
            .iter()
            .map(|&i| {
                (
                    outcome.records[i].fpga_param(param),
                    outcome.records[i].error.med.min(0.2),
                )
            })
            .collect();
        println!(
            "\n{label}: synthesized ('.') and pareto FPGA-ACs ('#'), area vs MED\n{}",
            scatter(
                &[
                    Series {
                        glyph: '.',
                        label: "synthesized".into(),
                        points: synth_pts
                    },
                    Series {
                        glyph: '#',
                        label: "pareto FPGA-ACs".into(),
                        points: front_pts
                    },
                ],
                70,
                14,
                "#LUTs",
                "MED",
            )
        );
        println!(
            "{label}: synthesized {}/{} circuits, flow {} vs exhaustive {}",
            outcome.time.flow_count,
            outcome.time.exhaustive_count,
            human_time(outcome.time.flow_s()),
            human_time(outcome.time.exhaustive_s),
        );
    }
    write_csv(
        "fig8_pareto_fpga_acs.csv",
        &["library", "param", "circuit", "cost", "med", "luts"],
        &csv,
    );
    println!(
        "\n{}",
        table(
            &[
                "library",
                "param",
                "true front",
                "found",
                "coverage",
                "speedup"
            ],
            &rows
        )
    );
    println!("\n=== Fig. 8 summary ===");
    println!(
        "mean pareto coverage: {:.0}% (paper: ~71%)",
        100.0 * cov_sum / cov_n.max(1) as f64
    );
}

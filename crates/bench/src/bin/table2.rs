//! Table II — top-3 ML models per FPGA parameter plus the best plain
//! ASIC-parameter regression, with their validation fidelities.
//!
//! Usage: `cargo run --release -p afp-bench --bin table2 [--quick]`

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_ml::MlModelId;
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::train_zoo;
use approxfpgas::record::FpgaParam;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.mul8_spec();
    println!(
        "Table II: characterizing {} 8x8 multipliers...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let records = characterize_library(
        &library,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    );
    let subset = sample_subset(records.len(), 0.10, 40, 0xDAC_2020);
    let (train, validate) = train_validate_split(&subset, 0.80, 0xDAC_2020);
    let zoo = train_zoo(&records, &train, &validate, &MlModelId::ALL, 0.01);

    let fid = |m: MlModelId, p: FpgaParam| -> f64 {
        zoo.fidelities
            .iter()
            .find(|f| f.model == m && f.param == p)
            .map(|f| f.fidelity)
            .unwrap_or(0.0)
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for rank in 0..3 {
        let mut row = vec![format!("top-{}", rank + 1)];
        for param in FpgaParam::ALL {
            let top = zoo.top_models(param, 3, false);
            let m = top[rank];
            row.push(format!("{} ({:.0}%)", m.label(), 100.0 * fid(m, param)));
            csv.push(vec![
                format!("{param:?}"),
                format!("{}", rank + 1),
                m.label().to_string(),
                format!("{:.4}", fid(m, param)),
            ]);
        }
        rows.push(row);
    }
    // The best plain ASIC regression per parameter (the paper's last row).
    let mut row = vec!["ASIC-regr".to_string()];
    for param in FpgaParam::ALL {
        let m = zoo.best_asic_regression(param).expect("ML1-ML3 trained");
        row.push(format!("{} ({:.0}%)", m.label(), 100.0 * fid(m, param)));
        csv.push(vec![
            format!("{param:?}"),
            "asic_regression".to_string(),
            m.label().to_string(),
            format!("{:.4}", fid(m, param)),
        ]);
    }
    rows.push(row);

    write_csv(
        "table2_top_models.csv",
        &["param", "rank", "model", "fidelity"],
        &csv,
    );
    println!(
        "\n{}",
        table(&["rank", "FPGA Latency", "FPGA Power", "FPGA Area"], &rows)
    );
    println!("\npaper reference: ML11/ML4/ML10 (latency ~87-90%), ML11/ML13/ML4 (power ~89-91%), ML4/ML13/ML11 (area ~86-89%)");
}

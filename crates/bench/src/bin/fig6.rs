//! Fig. 6 — Correlation of estimated vs measured FPGA parameters for the
//! top-3 models on the 16x16 multiplier library (including the latency
//! bias observation).
//!
//! Usage: `cargo run --release -p afp-bench --bin fig6 [--quick]`

use afp_bench::render::{scatter, table, Series};
use afp_bench::{write_csv, Scale};
use afp_ml::metrics::pearson;
use afp_ml::MlModelId;
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::train_zoo;
use approxfpgas::record::FpgaParam;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.mul16_spec();
    println!(
        "Fig. 6: characterizing {} 16x16 multipliers...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let records = characterize_library(
        &library,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    );
    let subset = sample_subset(records.len(), 0.10, 40, 0xDAC_2020);
    let (train, validate) = train_validate_split(&subset, 0.80, 0xDAC_2020);
    let zoo = train_zoo(&records, &train, &validate, &MlModelId::ALL, 0.01);

    let mut summary_rows = Vec::new();
    let mut csv = Vec::new();
    for param in FpgaParam::ALL {
        let mut top = zoo.top_models(param, 3, false);
        if let Some(asic_model) = zoo.best_asic_regression(param) {
            top.push(asic_model);
        }
        for model in top {
            let est = zoo.estimate_all(model, param, &records);
            let mes: Vec<f64> = records.iter().map(|r| r.fpga_param(param)).collect();
            let corr = pearson(&est, &mes);
            let bias: f64 = est
                .iter()
                .zip(&mes)
                .map(|(e, m)| (e - m) / m.max(1e-9))
                .sum::<f64>()
                / est.len() as f64;
            summary_rows.push(vec![
                format!("{param:?}"),
                model.label().to_string(),
                format!("{corr:.3}"),
                format!("{:+.1}%", 100.0 * bias),
            ]);
            for (i, (e, m)) in est.iter().zip(&mes).enumerate().take(400) {
                csv.push(vec![
                    format!("{param:?}"),
                    model.label().to_string(),
                    format!("{i}"),
                    format!("{e:.5}"),
                    format!("{m:.5}"),
                ]);
            }
            if model == zoo.top_models(param, 1, false)[0] {
                let pts: Vec<(f64, f64)> = mes.iter().zip(&est).map(|(&m, &e)| (m, e)).collect();
                let diag_hi = pts.iter().map(|p| p.0.max(p.1)).fold(0.0f64, f64::max);
                println!(
                    "\n{param:?} — {} estimated vs measured ('*', diagonal '+'):\n{}",
                    model.label(),
                    scatter(
                        &[
                            Series {
                                glyph: '*',
                                label: "circuits".into(),
                                points: pts
                            },
                            Series {
                                glyph: '+',
                                label: "ideal".into(),
                                points: (0..20)
                                    .map(|k| {
                                        let v = diag_hi * k as f64 / 19.0;
                                        (v, v)
                                    })
                                    .collect(),
                            },
                        ],
                        64,
                        14,
                        "measured",
                        "estimated",
                    )
                );
            }
        }
    }
    write_csv(
        "fig6_correlation.csv",
        &["param", "model", "circuit", "estimated", "measured"],
        &csv,
    );
    println!(
        "\n{}",
        table(
            &["param", "model", "pearson", "mean rel. bias"],
            &summary_rows
        )
    );
    println!("\npaper observation: Bayesian Ridge / PLS usable standalone; latency estimates carry a bias (~30% in the paper's setup).");
}

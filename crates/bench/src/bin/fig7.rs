//! Fig. 7 — Constructing multiple pseudo-pareto fronts (n = 1, 2, 3) for
//! the 8x8 multiplier library w.r.t. FPGA latency: circuits to
//! re-synthesize and true-front coverage per model, plus the union, plus
//! the overall synthesized-circuit reduction (the paper's ~9.9x / 4,548).
//!
//! Usage: `cargo run --release -p afp-bench --bin fig7 [--quick]`

use std::collections::BTreeSet;

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_ml::MlModelId;
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::train_zoo;
use approxfpgas::pareto::{coverage, pareto_front, peel_fronts};
use approxfpgas::record::FpgaParam;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.mul8_spec();
    println!(
        "Fig. 7: characterizing {} 8x8 multipliers...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let records = characterize_library(
        &library,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    );
    let subset = sample_subset(records.len(), 0.10, 40, 0xDAC_2020);
    let (train, validate) = train_validate_split(&subset, 0.80, 0xDAC_2020);
    let zoo = train_zoo(&records, &train, &validate, &MlModelId::ALL, 0.01);

    let param = FpgaParam::Latency;
    let true_points: Vec<(f64, f64)> = records
        .iter()
        .map(|r| (r.fpga_param(param), r.error.med))
        .collect();
    let truth = pareto_front(&true_points);

    // Models of the paper's figure: top-3 by latency fidelity + the plain
    // ASIC-latency regression (ML2).
    let mut models = zoo.top_models(param, 3, false);
    models.push(MlModelId::Ml2);

    let subset_set: BTreeSet<usize> = subset.iter().copied().collect();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut union_per_n: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); 3];
    for &model in &models {
        let est = zoo.estimate_all(model, param, &records);
        let est_points: Vec<(f64, f64)> = est
            .iter()
            .zip(&records)
            .map(|(&e, r)| (e, r.error.med))
            .collect();
        let fronts = peel_fronts(&est_points, 3);
        let mut cumulative: BTreeSet<usize> = BTreeSet::new();
        for (n, union) in union_per_n.iter_mut().enumerate() {
            if let Some(front) = fronts.get(n) {
                cumulative.extend(front.iter().copied());
            }
            union.extend(cumulative.iter().copied());
            let new_synth = cumulative
                .iter()
                .filter(|i| !subset_set.contains(i))
                .count();
            let found: Vec<usize> = cumulative
                .iter()
                .copied()
                .chain(subset.iter().copied())
                .collect();
            let synth_points: Vec<(f64, f64)> = found.iter().map(|&i| true_points[i]).collect();
            let measured_front = pareto_front(&synth_points);
            let measured: Vec<usize> = measured_front.iter().map(|&k| found[k]).collect();
            let cov = coverage(&truth, &measured, &true_points);
            rows.push(vec![
                model.label().to_string(),
                format!("{}", n + 1),
                format!("{new_synth}"),
                format!("{:.0}%", 100.0 * cov),
            ]);
            csv.push(vec![
                model.label().to_string(),
                format!("{}", n + 1),
                format!("{new_synth}"),
                format!("{cov:.4}"),
            ]);
        }
    }
    // Union across the ML models (excluding the plain ASIC regression),
    // the paper's "combine the pseudo-pareto fronts of multiple models".
    for n in 0..3 {
        let mut union: BTreeSet<usize> = BTreeSet::new();
        for &model in models.iter().filter(|m| !m.is_asic_regression()) {
            let est = zoo.estimate_all(model, param, &records);
            let est_points: Vec<(f64, f64)> = est
                .iter()
                .zip(&records)
                .map(|(&e, r)| (e, r.error.med))
                .collect();
            for front in peel_fronts(&est_points, n + 1) {
                union.extend(front);
            }
        }
        let new_synth = union.iter().filter(|i| !subset_set.contains(i)).count();
        let found: Vec<usize> = union
            .iter()
            .copied()
            .chain(subset.iter().copied())
            .collect();
        let synth_points: Vec<(f64, f64)> = found.iter().map(|&i| true_points[i]).collect();
        let measured: Vec<usize> = pareto_front(&synth_points)
            .iter()
            .map(|&k| found[k])
            .collect();
        let cov = coverage(&truth, &measured, &true_points);
        let total_synth = subset.len() + new_synth;
        rows.push(vec![
            "union(ML)".to_string(),
            format!("{}", n + 1),
            format!("{new_synth}"),
            format!("{:.0}%", 100.0 * cov),
        ]);
        csv.push(vec![
            "union".to_string(),
            format!("{}", n + 1),
            format!("{new_synth}"),
            format!("{cov:.4}"),
        ]);
        if n == 2 {
            println!("\n=== Fig. 7 summary (3 fronts, ML union) ===");
            println!("library size:               {}", records.len());
            println!("subset synthesized:         {}", subset.len());
            println!("pseudo-pareto re-synthesis: {new_synth}");
            println!("total synthesized:          {total_synth}");
            println!(
                "reduction factor:           {:.1}x (paper: ~9.9x)",
                records.len() as f64 / total_synth as f64
            );
            println!("true-front coverage:        {:.0}%", 100.0 * cov);
        }
    }
    write_csv(
        "fig7_pseudo_pareto.csv",
        &["model", "fronts", "extra_synthesized", "coverage"],
        &csv,
    );
    println!(
        "\n{}",
        table(&["model", "#fronts", "extra synth", "coverage"], &rows)
    );
    println!("\npaper observation: the ASIC-latency regression roughly doubles the circuits to re-synthesize vs Bayesian ridge (164 vs 79).");
}

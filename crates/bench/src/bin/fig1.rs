//! Fig. 1 — Motivational analysis: pareto-optimal approximate 8x8
//! multipliers for ASIC vs FPGA, plus the "SoA FPGA" multipliers.
//!
//! Reproduces the paper's three observations: (1) ASIC-pareto circuits are
//! not FPGA-pareto, (2) exhaustive synthesis of the library costs days,
//! (3) the hand-crafted FPGA multipliers are dominated by the evolved
//! library's FPGA front.
//!
//! Usage: `cargo run --release -p afp-bench --bin fig1 [--quick]`

use afp_bench::render::{scatter, Series};
use afp_bench::{human_time, write_csv, Scale};
use approxfpgas::dataset::characterize_library;
use approxfpgas::pareto_front;
use approxfpgas::record::characterize;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.mul8_spec();
    println!(
        "Fig. 1: building the {}-circuit 8x8 multiplier library...",
        spec.target_size
    );
    let library = afp_circuits::build_library(&spec);
    let asic_cfg = afp_asic::AsicConfig::default();
    let fpga_cfg = afp_fpga::FpgaConfig::default();
    let err_cfg = afp_error::ErrorConfig::default();
    let records = characterize_library(&library, &asic_cfg, &fpga_cfg, &err_cfg);

    // SoA FPGA-tailored multipliers as overlay points.
    let soa: Vec<_> = afp_circuits::soa::soa_fpga_multipliers8()
        .iter()
        .enumerate()
        .map(|(i, c)| characterize(records.len() + i, c, &asic_cfg, &fpga_cfg, &err_cfg))
        .collect();

    let asic_pts: Vec<(f64, f64)> = records
        .iter()
        .map(|r| (r.asic.power_mw, r.error.med))
        .collect();
    let fpga_pts: Vec<(f64, f64)> = records
        .iter()
        .map(|r| (r.fpga.power_mw, r.error.med))
        .collect();
    let asic_front = pareto_front(&asic_pts);
    let fpga_front = pareto_front(&fpga_pts);

    // Observation 1: overlap between the two fronts.
    let overlap = asic_front.iter().filter(|i| fpga_front.contains(i)).count();
    // Observation 2: exhaustive synthesis time.
    let exhaustive_s: f64 = records.iter().map(|r| r.fpga.synth_time_s).sum();
    // Observation 3: SoA designs dominated by the FPGA front?
    let dominated_soa = soa
        .iter()
        .filter(|s| {
            fpga_front.iter().any(|&i| {
                approxfpgas::pareto::dominates(
                    (records[i].fpga.power_mw, records[i].error.med),
                    (s.fpga.power_mw, s.error.med),
                )
            })
        })
        .count();

    let mut rows = Vec::new();
    for r in &records {
        rows.push(vec![
            r.name.clone(),
            format!("{:.4}", r.asic.power_mw),
            format!("{:.4}", r.fpga.power_mw),
            format!("{}", r.fpga.luts),
            format!("{:.6}", r.error.med),
            format!("{}", asic_front.contains(&r.id) as u8),
            format!("{}", fpga_front.contains(&r.id) as u8),
            "0".to_string(),
        ]);
    }
    for s in &soa {
        rows.push(vec![
            s.name.clone(),
            format!("{:.4}", s.asic.power_mw),
            format!("{:.4}", s.fpga.power_mw),
            format!("{}", s.fpga.luts),
            format!("{:.6}", s.error.med),
            "0".to_string(),
            "0".to_string(),
            "1".to_string(),
        ]);
    }
    write_csv(
        "fig1_pareto_asic_vs_fpga.csv",
        &[
            "name",
            "asic_power_mw",
            "fpga_power_mw",
            "fpga_luts",
            "med",
            "on_asic_front",
            "on_fpga_front",
            "is_soa",
        ],
        &rows,
    );

    let lim = |pts: &[(f64, f64)]| -> Vec<(f64, f64)> {
        pts.iter().copied().filter(|p| p.1 < 0.05).collect()
    };
    println!(
        "\nASIC power vs MED (front '#', library '.'):\n{}",
        scatter(
            &[
                Series {
                    glyph: '.',
                    label: "library".into(),
                    points: lim(&asic_pts)
                },
                Series {
                    glyph: '#',
                    label: "ASIC pareto".into(),
                    points: asic_front.iter().map(|&i| asic_pts[i]).collect(),
                },
            ],
            72,
            16,
            "ASIC power [mW]",
            "MED",
        )
    );
    println!(
        "\nFPGA power vs MED (front '#', library '.', SoA 'S'):\n{}",
        scatter(
            &[
                Series {
                    glyph: '.',
                    label: "library".into(),
                    points: lim(&fpga_pts)
                },
                Series {
                    glyph: '#',
                    label: "FPGA pareto".into(),
                    points: fpga_front.iter().map(|&i| fpga_pts[i]).collect(),
                },
                Series {
                    glyph: 'S',
                    label: "SoA FPGA multipliers".into(),
                    points: soa.iter().map(|s| (s.fpga.power_mw, s.error.med)).collect(),
                },
            ],
            72,
            16,
            "FPGA power [mW]",
            "MED",
        )
    );

    println!("\n=== Fig. 1 summary ===");
    println!("library size:                  {}", records.len());
    println!("ASIC pareto points:            {}", asic_front.len());
    println!("FPGA pareto points:            {}", fpga_front.len());
    println!(
        "front overlap:                 {} / {} ASIC-pareto circuits are also FPGA-pareto ({:.0}%)",
        overlap,
        asic_front.len(),
        100.0 * overlap as f64 / asic_front.len().max(1) as f64
    );
    println!(
        "exhaustive FPGA synthesis:     {} (modeled, observation 2)",
        human_time(exhaustive_s)
    );
    println!(
        "SoA multipliers dominated:     {} / {} (observation 3)",
        dominated_soa,
        soa.len()
    );
}

//! Simulation-kernel scaling measurement: exhaustive error analysis and
//! activity estimation through the legacy per-gate interpreter vs the
//! compiled-tape / wide-lane kernel.
//!
//! This is the regenerator behind EXPERIMENTS.md "Simulation kernel" and
//! the `BENCH_sim.json` baseline. The legacy column re-runs the exact
//! pre-tape hot loop (64-pair chunks through [`eval_pass_reference`] with
//! per-lane operand packing, or per-pass interpreter sweeps for activity
//! estimation); the tape column runs today's production entry points
//! ([`afp_error::analyze`] and [`SimScratch::signal_probabilities`]).
//! Both sides are checked for bit-identical results before any timing —
//! a speedup over diverging answers would be meaningless.
//!
//! Usage: `cargo run --release -p afp-bench --bin sim_scaling [--quick]`
//!
//! Writes `results/sim_scaling.csv`.

use std::time::Instant;

use afp_bench::render::table;
use afp_bench::write_csv;
use afp_circuits::{adders, multipliers, ArithCircuit};
use afp_error::{analyze, ErrorConfig};
use afp_netlist::{eval_pass_reference, pack_operand, Netlist, SimScratch};

/// Median-of-runs wall time of `f`, in microseconds.
fn time_us(iters: u32, runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| afp_ord::asc(*a, *b));
    samples[samples.len() / 2]
}

/// Exhaustive error analysis exactly as the pre-tape kernel ran it: pack
/// each 64-pair chunk lane by lane, one interpreter pass per chunk,
/// unpack outputs per lane, accumulate the integer error sums. Returns
/// `(samples, sum_abs)` so the caller can check agreement with
/// [`analyze`].
fn legacy_exhaustive(circuit: &ArithCircuit) -> (u64, u128) {
    let nl = circuit.netlist();
    let w = circuit.width();
    let mask = (1u64 << w) - 1;
    let outputs: Vec<usize> = nl.outputs().iter().map(|o| o.index()).collect();
    let n_pairs = 1u64 << (2 * w);
    let mut words = vec![0u64; nl.num_inputs()];
    let mut values: Vec<u64> = Vec::new();
    let (mut n, mut sum_abs): (u64, u128) = (0, 0);
    let mut base = 0u64;
    while base < n_pairs {
        let chunk = 64.min(n_pairs - base);
        for lane in 0..chunk {
            let p = base + lane;
            pack_operand(&mut words, 0, w, lane as usize, p >> w);
            pack_operand(&mut words, w, w, lane as usize, p & mask);
        }
        eval_pass_reference(nl, &words, &mut values);
        for lane in 0..chunk {
            let p = base + lane;
            let mut got = 0u64;
            for (b, &o) in outputs.iter().enumerate() {
                got |= ((values[o] >> lane) & 1) << b;
            }
            let exact = circuit.exact(p >> w, p & mask);
            n += 1;
            sum_abs += (got as i64 - exact as i64).unsigned_abs() as u128;
        }
        base += chunk;
    }
    (n, sum_abs)
}

/// Activity estimation exactly as the pre-tape kernel ran it: one
/// interpreter pass per 64-vector stimulus block, fresh RNG fill and
/// popcount accumulation per pass.
fn legacy_signal_probabilities(nl: &Netlist, passes: usize, seed: u64, out: &mut Vec<f64>) {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut inputs = vec![0u64; nl.num_inputs()];
    let mut values: Vec<u64> = Vec::new();
    let mut ones = vec![0u64; nl.len()];
    let passes = passes.max(1);
    for _ in 0..passes {
        for word in inputs.iter_mut() {
            *word = next();
        }
        eval_pass_reference(nl, &inputs, &mut values);
        for (o, v) in ones.iter_mut().zip(&values) {
            *o += v.count_ones() as u64;
        }
    }
    let total = (passes * 64) as f64;
    out.clear();
    out.extend(ones.iter().map(|&o| o as f64 / total));
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (iters, runs) = if quick { (3, 3) } else { (20, 5) };
    let cfg = ErrorConfig::default();
    let cases: Vec<(&str, ArithCircuit)> = vec![
        ("add8_rca", adders::ripple_carry(8)),
        ("add8_loa4", adders::loa(8, 4)),
        ("mul8_wallace", multipliers::wallace_multiplier(8)),
        ("mul8_bam", multipliers::broken_array(8, 6, 2)),
    ];

    println!("sim_scaling: {iters} iters x {runs} runs (median)\n");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (name, circuit) in &cases {
        // Equivalence gate: the legacy loop and the tape kernel must
        // agree on the exact integer error sum before we compare speed.
        let (n, sum_abs) = legacy_exhaustive(circuit);
        let m = analyze(circuit, &cfg);
        assert!(m.exhaustive, "{name}: expected the exhaustive path");
        assert_eq!(n, m.samples, "{name}: sample count diverged");
        assert_eq!(
            sum_abs as f64 / n as f64,
            m.mae,
            "{name}: legacy and tape kernels disagree on MAE"
        );

        let legacy_us = time_us(iters, runs, || {
            std::hint::black_box(legacy_exhaustive(std::hint::black_box(circuit)));
        });
        let tape_us = time_us(iters, runs, || {
            std::hint::black_box(analyze(std::hint::black_box(circuit), &cfg));
        });
        let speedup = legacy_us / tape_us;
        println!(
            "  {name}: legacy {legacy_us:.0} us, tape {tape_us:.0} us  ({speedup:.2}x, \
             {n} pairs)"
        );
        rows.push(vec![
            name.to_string(),
            format!("{n}"),
            format!("{legacy_us:.1}"),
            format!("{tape_us:.1}"),
            format!("{speedup:.2}"),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            format!("{n}"),
            format!("{legacy_us:.2}"),
            format!("{tape_us:.2}"),
            format!("{speedup:.2}"),
        ]);
    }

    // Activity estimation: the ASIC power model's stimulus sweep.
    let wallace = multipliers::wallace_multiplier(8);
    let nl = wallace.netlist();
    let (passes, seed) = (32usize, 0xA51Cu64);
    let mut legacy_probs = Vec::new();
    legacy_signal_probabilities(nl, passes, seed, &mut legacy_probs);
    let mut scratch = SimScratch::new();
    let mut tape_probs = Vec::new();
    scratch.signal_probabilities(nl, passes, seed, &mut tape_probs);
    assert_eq!(
        legacy_probs.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        tape_probs.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "activity: legacy and tape kernels disagree"
    );
    let act_iters = iters * 20;
    let legacy_us = time_us(act_iters, runs, || {
        legacy_signal_probabilities(
            std::hint::black_box(nl),
            passes,
            seed,
            std::hint::black_box(&mut legacy_probs),
        );
    });
    let tape_us = time_us(act_iters, runs, || {
        scratch.signal_probabilities(
            std::hint::black_box(nl),
            passes,
            seed,
            std::hint::black_box(&mut tape_probs),
        );
    });
    let speedup = legacy_us / tape_us;
    println!(
        "  activity_mul8_wallace: legacy {legacy_us:.0} us, tape {tape_us:.0} us  \
         ({speedup:.2}x, {passes} passes)"
    );
    let work = format!("{passes}p");
    rows.push(vec![
        "activity_mul8_wallace".to_string(),
        work.clone(),
        format!("{legacy_us:.1}"),
        format!("{tape_us:.1}"),
        format!("{speedup:.2}"),
    ]);
    csv_rows.push(vec![
        "activity_mul8_wallace".to_string(),
        work,
        format!("{legacy_us:.2}"),
        format!("{tape_us:.2}"),
        format!("{speedup:.2}"),
    ]);

    write_csv(
        "sim_scaling.csv",
        &["case", "work", "legacy_us", "tape_us", "speedup"],
        &csv_rows,
    );
    println!(
        "\n{}",
        table(&["case", "work", "legacy us", "tape us", "speedup"], &rows)
    );
    println!("baseline for regression checks: BENCH_sim.json (repo root)");
}

//! Cross-target transfer matrix: train the model zoo on fabric A,
//! evaluate its estimates and candidate pareto coverage on fabric B.
//!
//! This is the regenerator behind EXPERIMENTS.md "Cross-target transfer"
//! — the Xel-FPGAs question asked of every (train, eval) pair in the
//! device-profile registry. The diagonal is native quality; off-diagonal
//! cells show how much fidelity and coverage survive a retarget without
//! re-synthesizing a new training subset.
//!
//! Usage: `cargo run --release -p afp-bench --bin cross_target [--quick]`
//!
//! Writes `results/cross_target.csv`.

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_circuits::{ArithKind, LibrarySpec};
use afp_ml::MlModelId;
use approxfpgas::{transfer_matrix, FlowConfig, TargetSet};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let config = FlowConfig {
        library: LibrarySpec::new(ArithKind::Adder, 8, scale.add8),
        min_subset: 24,
        models: vec![
            MlModelId::Ml1,
            MlModelId::Ml2,
            MlModelId::Ml3,
            MlModelId::Ml4,
            MlModelId::Ml11,
            MlModelId::Ml13,
            MlModelId::Ml14,
            MlModelId::Ml18,
        ],
        ..FlowConfig::default()
    };

    let set = TargetSet::all();
    println!(
        "cross_target: {} targets, add8 x{} library ({} zoo models)\n",
        set.len(),
        scale.add8,
        config.models.len()
    );
    let cells = transfer_matrix(&config, &set).expect("registry targets resolve");

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for cell in &cells {
        let native = cell.train_target == cell.eval_target;
        rows.push(vec![
            cell.train_target.clone(),
            cell.eval_target.clone(),
            format!("{:.3}", cell.mean_fidelity()),
            format!("{:.0}%", 100.0 * cell.mean_coverage()),
            format!("{}", cell.candidates),
            if native {
                "native".to_string()
            } else {
                String::new()
            },
        ]);
        csv_rows.push(vec![
            cell.train_target.clone(),
            cell.eval_target.clone(),
            format!("{:.6}", cell.mean_fidelity()),
            format!("{:.6}", cell.mean_coverage()),
            format!("{}", cell.candidates),
        ]);
    }
    write_csv(
        "cross_target.csv",
        &[
            "train_target",
            "eval_target",
            "mean_fidelity",
            "mean_coverage",
            "candidates",
        ],
        &csv_rows,
    );
    println!(
        "{}",
        table(
            &[
                "train on",
                "evaluate on",
                "fidelity",
                "coverage",
                "candidates",
                ""
            ],
            &rows
        )
    );

    // Summary: worst retarget degradation relative to the native diagonal.
    let native_cov = |t: &str| {
        cells
            .iter()
            .find(|c| c.train_target == t && c.eval_target == t)
            .map(|c| c.mean_coverage())
            .unwrap_or(0.0)
    };
    let mut worst: Option<(&str, &str, f64)> = None;
    for c in &cells {
        if c.train_target == c.eval_target {
            continue;
        }
        let drop = native_cov(&c.eval_target) - c.mean_coverage();
        if worst.is_none_or(|(_, _, w)| drop > w) {
            worst = Some((&c.train_target, &c.eval_target, drop));
        }
    }
    if let Some((a, b, drop)) = worst {
        println!(
            "worst retarget: train {a} -> evaluate {b}, coverage drops {:.0} points \
             vs native",
            100.0 * drop
        );
    }
}

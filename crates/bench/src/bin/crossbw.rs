//! Cross-bit-width generalization (§IV text): fidelity of models trained
//! on the 8x8 multiplier library when estimating 12x12/16x16 libraries,
//! vs models trained at the native width. The paper reports an average
//! drop from 88% to 53%.
//!
//! Usage: `cargo run --release -p afp-bench --bin crossbw [--quick]`

use afp_bench::render::table;
use afp_bench::{write_csv, Scale};
use afp_circuits::{ArithKind, LibrarySpec};
use afp_ml::metrics::fidelity;
use afp_ml::MlModelId;
use approxfpgas::dataset::{characterize_library, sample_subset, train_validate_split};
use approxfpgas::fidelity::train_zoo;
use approxfpgas::record::{CircuitRecord, FpgaParam};

fn characterize(spec: &LibrarySpec) -> Vec<CircuitRecord> {
    let library = afp_circuits::build_library(spec);
    characterize_library(
        &library,
        &afp_asic::AsicConfig::default(),
        &afp_fpga::FpgaConfig::default(),
        &afp_error::ErrorConfig::default(),
    )
}

fn main() {
    let scale = Scale::from_args();
    // The comparison models: a representative strong subset.
    let models = [
        MlModelId::Ml4,
        MlModelId::Ml11,
        MlModelId::Ml13,
        MlModelId::Ml14,
        MlModelId::Ml18,
    ];
    println!("crossbw: characterizing mult8/mult12/mult16 libraries...");
    let recs8 = characterize(&scale.mul8_spec());
    let recs12 = characterize(&LibrarySpec::new(ArithKind::Multiplier, 12, scale.mul12));
    let recs16 = characterize(&scale.mul16_spec());

    // Zoo trained on the 8-bit library.
    let subset8 = sample_subset(recs8.len(), 0.10, 40, 0xDAC_2020);
    let (train8, val8) = train_validate_split(&subset8, 0.80, 0xDAC_2020);
    let zoo8 = train_zoo(&recs8, &train8, &val8, &models, 0.01);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut same_sum = 0.0;
    let mut cross_sum = 0.0;
    let mut n = 0usize;
    for (label, recs) in [("mult12", &recs12), ("mult16", &recs16)] {
        // Native-width zoo for the same models.
        let subset = sample_subset(recs.len(), 0.10, 40, 0xDAC_2020);
        let (train, val) = train_validate_split(&subset, 0.80, 0xDAC_2020);
        let zoo_native = train_zoo(recs, &train, &val, &models, 0.01);
        for &model in &models {
            for param in FpgaParam::ALL {
                // Cross: 8-bit-trained model estimating this library's
                // validation circuits.
                let mes: Vec<f64> = val.iter().map(|&i| recs[i].fpga_param(param)).collect();
                let est_cross: Vec<f64> = val
                    .iter()
                    .map(|&i| zoo8.estimate(model, param, &recs[i]))
                    .collect();
                let f_cross = fidelity(&est_cross, &mes, 0.01);
                let f_native = zoo_native
                    .fidelities
                    .iter()
                    .find(|f| f.model == model && f.param == param)
                    .map(|f| f.fidelity)
                    .unwrap_or(0.0);
                same_sum += f_native;
                cross_sum += f_cross;
                n += 1;
                rows.push(vec![
                    label.to_string(),
                    model.label().to_string(),
                    format!("{param:?}"),
                    format!("{:.0}%", 100.0 * f_native),
                    format!("{:.0}%", 100.0 * f_cross),
                ]);
                csv.push(vec![
                    label.to_string(),
                    model.label().to_string(),
                    format!("{param:?}"),
                    format!("{f_native:.4}"),
                    format!("{f_cross:.4}"),
                ]);
            }
        }
    }
    write_csv(
        "crossbw_generalization.csv",
        &[
            "library",
            "model",
            "param",
            "fidelity_native",
            "fidelity_from_8bit",
        ],
        &csv,
    );
    println!(
        "\n{}",
        table(
            &["library", "model", "param", "native-width", "8-bit-trained"],
            &rows
        )
    );
    println!("\n=== cross-bit-width summary ===");
    println!(
        "mean fidelity: native {:.0}% vs 8-bit-trained {:.0}% (paper: 88% -> 53%)",
        100.0 * same_sum / n.max(1) as f64,
        100.0 * cross_sum / n.max(1) as f64
    );
}

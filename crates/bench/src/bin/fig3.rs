//! Fig. 3 — Exploration time: exhaustive synthesis vs the ApproxFPGAs
//! flow, per library and cumulative (the paper's 82.4 d → 8.2 d, ~10x).
//!
//! Usage: `cargo run --release -p afp-bench --bin fig3 [--quick]`

use afp_bench::render::table;
use afp_bench::{human_time, write_csv, Scale};
use afp_obs::fmt_ratio;
use approxfpgas::{Flow, FlowConfig};

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut cum_exhaustive = 0.0f64;
    let mut cum_flow = 0.0f64;
    for spec in scale.all_specs() {
        let label = format!("{}{}-bit", spec.kind.mnemonic(), spec.width);
        println!("running flow on {label} ({} circuits)...", spec.target_size);
        let outcome = Flow::new(FlowConfig {
            library: spec.clone(),
            ..FlowConfig::default()
        })
        .run();
        let t = outcome.time;
        cum_exhaustive += t.exhaustive_s;
        cum_flow += t.flow_s();
        rows.push(vec![
            label.clone(),
            format!("{}", t.exhaustive_count),
            human_time(t.exhaustive_s),
            format!("{}", t.flow_count),
            human_time(t.flow_s()),
            fmt_ratio(t.speedup()),
        ]);
        csv_rows.push(vec![
            label,
            format!("{}", t.exhaustive_count),
            format!("{:.1}", t.exhaustive_s),
            format!("{}", t.flow_count),
            format!("{:.1}", t.flow_s()),
            match t.speedup() {
                Some(s) => format!("{s:.3}"),
                None => String::new(),
            },
        ]);
    }
    write_csv(
        "fig3_exploration_time.csv",
        &[
            "library",
            "exhaustive_circuits",
            "exhaustive_s",
            "flow_circuits",
            "flow_s",
            "speedup",
        ],
        &csv_rows,
    );
    println!(
        "\n{}",
        table(
            &[
                "library",
                "#circuits",
                "exhaustive",
                "#synthesized",
                "ApproxFPGAs",
                "speedup"
            ],
            &rows
        )
    );
    println!("\n=== Fig. 3 summary ===");
    println!(
        "cumulative exhaustive: {}   (paper: 82.4 d)",
        human_time(cum_exhaustive)
    );
    println!(
        "cumulative ApproxFPGAs: {}  (paper: 8.2 d)",
        human_time(cum_flow)
    );
    let overall = if cum_flow > 0.0 {
        Some(cum_exhaustive / cum_flow)
    } else {
        None
    };
    println!(
        "overall exploration-time reduction: {} (paper: ~10x)",
        fmt_ratio(overall)
    );
}

//! A minimal HTTP/1.1 subset, hand-rolled on `std::io`.
//!
//! Exactly what the characterization service needs and nothing more:
//! request line + headers + optional `Content-Length` body, query-string
//! parsing with percent-decoding, and fixed-size caps so a hostile peer
//! can neither balloon memory nor wedge a worker. Connections are
//! keep-alive by default (HTTP/1.1 semantics): a [`RequestReader`] owns
//! the connection's read buffer, so pipelined bytes that arrive behind
//! one request head are retained for the next parse instead of being
//! dropped on the floor. `Connection: close` (or HTTP/1.0 without
//! `Connection: keep-alive`) is honored per request. No chunked
//! encoding, no TLS — the daemon fronts a trusted lab network, and the
//! dep-free LZ codec precedent applies: small, auditable, offline.

use std::io::{self, Read, Write};

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body (a `.afps` batch payload).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string stripped (percent-decoded).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client allows this connection to be reused for the
    /// next request (HTTP/1.1 default unless `Connection: close`;
    /// HTTP/1.0 default off unless `Connection: keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why [`read_request`] returned no request.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection (or went idle past the read
    /// deadline) cleanly *between* requests: no response is owed, the
    /// connection is simply done.
    Closed,
    /// A malformed or truncated request. The reason is suitable for a
    /// 400 body; the connection cannot be resynchronized and must close.
    Bad(String),
}

/// Buffered reader state for one connection.
///
/// Lives for the whole connection, so bytes read past one request head
/// (pipelined requests, body bytes) stay available for the next parse.
/// This is what makes buffered reads safe under pipelining: the buffer
/// is never discarded while the connection is open.
pub struct RequestReader {
    buf: Vec<u8>,
    pos: usize,
    len: usize,
}

impl Default for RequestReader {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestReader {
    /// A fresh reader with an empty buffer.
    pub fn new() -> Self {
        RequestReader {
            buf: vec![0u8; 4096],
            pos: 0,
            len: 0,
        }
    }

    /// True when pipelined bytes already received are waiting to be
    /// parsed — the next request may be servable without touching the
    /// socket at all.
    pub fn has_buffered(&self) -> bool {
        self.pos < self.len
    }

    fn next_byte(&mut self, stream: &mut impl Read) -> io::Result<Option<u8>> {
        if self.pos == self.len {
            self.len = stream.read(&mut self.buf)?;
            self.pos = 0;
            if self.len == 0 {
                return Ok(None);
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    fn read_exact(&mut self, stream: &mut impl Read, out: &mut [u8]) -> io::Result<()> {
        let from_buf = out.len().min(self.len - self.pos);
        out[..from_buf].copy_from_slice(&self.buf[self.pos..self.pos + from_buf]);
        self.pos += from_buf;
        stream.read_exact(&mut out[from_buf..])
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read and parse one request from `stream` via `reader`.
///
/// A clean close (EOF or read timeout before the first head byte)
/// returns [`ReadError::Closed`] — the caller drops the connection
/// without a response. Anything else that prevents a parse returns
/// [`ReadError::Bad`] with a reason suitable for a 400 body; the caller
/// answers best-effort and closes, since the stream cannot be
/// resynchronized after a malformed head.
pub fn read_request(
    stream: &mut impl Read,
    reader: &mut RequestReader,
) -> Result<Request, ReadError> {
    let mut head = Vec::with_capacity(512);
    loop {
        match reader.next_byte(stream) {
            Ok(Some(b)) => head.push(b),
            Ok(None) => {
                return Err(if head.is_empty() {
                    ReadError::Closed
                } else {
                    ReadError::Bad("connection closed mid request head".into())
                });
            }
            Err(e) if head.is_empty() && is_timeout(&e) => return Err(ReadError::Closed),
            Err(e) => return Err(ReadError::Bad(format!("read error in request head: {e}"))),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Bad(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| ReadError::Bad("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, raw_target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(ReadError::Bad(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Bad(format!("unsupported protocol `{version}`")));
    }

    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ReadError::Bad(format!("bad Content-Length `{}`", value.trim()))
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    // `Connection: close` wins over everything; an explicit `keep-alive`
    // token enables reuse on HTTP/1.0; otherwise the protocol default.
    let keep_alive = match connection.as_deref() {
        Some(v) => {
            let mut tokens = v.split(',').map(str::trim);
            if tokens.clone().any(|t| t == "close") {
                false
            } else if tokens.any(|t| t == "keep-alive") {
                true
            } else {
                version == "HTTP/1.1"
            }
        }
        None => version == "HTTP/1.1",
    };

    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Bad(format!(
            "request body exceeds {MAX_BODY_BYTES} bytes"
        )));
    }
    // `Content-Length: 0` and no Content-Length at all take the same
    // path: an empty body and zero reads past the head, so the next
    // pipelined request starts exactly where this head ended.
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(stream, &mut body)
            .map_err(|e| ReadError::Bad(format!("read error in request body: {e}")))?;
    }

    let (raw_path, raw_query) = match raw_target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (raw_target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect();
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path),
        query,
        body,
        keep_alive,
    })
}

/// Decode `%XX` escapes and `+`-as-space. Invalid escapes pass through
/// literally rather than erroring — good enough for a spec-ref vocabulary
/// of `[a-z0-9:-]`.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(v) => {
                        out.push(v);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Standard reason phrase for the handful of statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one JSON response. `close` controls the `Connection` header:
/// `close` announces the server will drop the connection after this
/// response, `keep-alive` invites the next request on the same socket.
/// Failures are returned so callers can count them, but a worker never
/// dies over a peer that hung up before its response landed.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    close: bool,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" }
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: a split write would let Nagle hold the
    // body back until the head is acknowledged, which under keep-alive
    // (no connection teardown to flush it) costs a delayed-ACK round
    // trip per response.
    let mut response = Vec::with_capacity(head.len() + body.len());
    response.extend_from_slice(head.as_bytes());
    response.extend_from_slice(body);
    stream.write_all(&response)?;
    stream.flush()
}

/// `{"error":"..."}` with proper JSON string escaping.
pub fn error_body(message: &str) -> Vec<u8> {
    let mut out = String::with_capacity(message.len() + 16);
    out.push_str("{\"error\":\"");
    for c in message.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\"}\n");
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ReadError> {
        read_request(
            &mut io::Cursor::new(raw.to_vec()),
            &mut RequestReader::new(),
        )
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(
            b"GET /characterize?spec=mul8%3Atrunc%3A3&target=lut4-ice40 HTTP/1.1\r\n\
              Host: x\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/characterize");
        assert_eq!(req.query_param("spec"), Some("mul8:trunc:3"));
        assert_eq!(req.query_param("target"), Some("lut4-ice40"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /characterize HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn connection_header_semantics() {
        let close11 = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close11.keep_alive);
        let default10 = parse(b"GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!default10.keep_alive, "HTTP/1.0 defaults to close");
        let ka10 = parse(b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(ka10.keep_alive, "explicit keep-alive upgrades HTTP/1.0");
        let mixed = parse(b"GET /x HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(!mixed.keep_alive, "close wins over keep-alive");
    }

    #[test]
    fn explicit_zero_length_body_matches_bodyless_get() {
        // Pipelined parses must treat `Content-Length: 0` and no
        // Content-Length identically: empty body, next request starts
        // right after the head.
        let raw = b"GET /a HTTP/1.1\r\nContent-Length: 0\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let mut reader = RequestReader::new();
        let first = read_request(&mut cursor, &mut reader).unwrap();
        assert_eq!(first.path, "/a");
        assert!(first.body.is_empty());
        assert!(reader.has_buffered(), "pipelined bytes retained");
        let second = read_request(&mut cursor, &mut reader).unwrap();
        assert_eq!(second.path, "/b");
        assert!(second.body.is_empty());
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = b"POST /characterize HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
                    GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let mut reader = RequestReader::new();
        let first = read_request(&mut cursor, &mut reader).unwrap();
        assert_eq!(first.body, b"abc");
        assert!(first.keep_alive);
        let second = read_request(&mut cursor, &mut reader).unwrap();
        assert_eq!(second.path, "/stats");
        assert!(!second.keep_alive);
        match read_request(&mut cursor, &mut reader) {
            Err(ReadError::Closed) => {}
            other => panic!("EOF between requests must be Closed, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse(b"\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/9.9\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\nContent-Length: zz\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort").is_err());
        let huge = format!("GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(parse(huge.as_bytes()).is_err());
        // All of the above are Bad (answer 400), not Closed.
        match parse(b"GET /x HTTP/9.9\r\n\r\n") {
            Err(ReadError::Bad(reason)) => assert!(reason.contains("HTTP/9.9")),
            other => panic!("expected Bad, got {other:?}"),
        }
        // A clean EOF before any byte is Closed, not Bad.
        match parse(b"") {
            Err(ReadError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        // ... but EOF mid-head is Bad.
        match parse(b"GET /x HT") {
            Err(ReadError::Bad(_)) => {}
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_rejected_not_buffered() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        match parse(&raw) {
            Err(ReadError::Bad(reason)) => assert!(reason.contains("head exceeds")),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn response_shape_and_error_escaping() {
        let mut out = Vec::new();
        write_response(&mut out, 429, true, &[("Retry-After", "1".into())], b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, false, &[], b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));

        let body = String::from_utf8(error_body("a \"quoted\"\npath\\x")).unwrap();
        assert_eq!(body, "{\"error\":\"a \\\"quoted\\\"\\npath\\\\x\"}\n");
    }
}

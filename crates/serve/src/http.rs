//! A minimal HTTP/1.1 subset, hand-rolled on `std::io`.
//!
//! Exactly what the characterization service needs and nothing more:
//! one request per connection (`Connection: close` on every response),
//! request line + headers + optional `Content-Length` body, query-string
//! parsing with percent-decoding, and fixed-size caps so a hostile peer
//! can neither balloon memory nor wedge a worker. No chunked encoding,
//! no keep-alive, no TLS — the daemon fronts a trusted lab network, and
//! the dep-free LZ codec precedent applies: small, auditable, offline.

use std::io::{self, Read, Write};

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body (a `.afps` batch payload).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string stripped (percent-decoded).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from `stream`.
///
/// `Err` carries a human-readable reason suitable for a 400 body; I/O
/// errors (peer hung up mid-request) surface the same way — the caller
/// writes the 400 best-effort and moves on.
pub fn read_request(stream: &mut impl Read) -> Result<Request, String> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: the head is tiny and this keeps any
    // body bytes unconsumed in the stream.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err("connection closed before request head".into()),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(format!("read error in request head: {e}")),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
        }
    }
    let head = String::from_utf8(head).map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, raw_target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => return Err(format!("malformed request line `{request_line}`")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(format!("unsupported protocol `{version}`"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length `{}`", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("request body exceeds {MAX_BODY_BYTES} bytes"));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("read error in request body: {e}"))?;

    let (raw_path, raw_query) = match raw_target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (raw_target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect();
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path),
        query,
        body,
    })
}

/// Decode `%XX` escapes and `+`-as-space. Invalid escapes pass through
/// literally rather than erroring — good enough for a spec-ref vocabulary
/// of `[a-z0-9:-]`.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(v) => {
                        out.push(v);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Standard reason phrase for the handful of statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one `Connection: close` JSON response. Failures are returned so
/// callers can count them, but a worker never dies over a peer that hung
/// up before its response landed.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// `{"error":"..."}` with proper JSON string escaping.
pub fn error_body(message: &str) -> Vec<u8> {
    let mut out = String::with_capacity(message.len() + 16);
    out.push_str("{\"error\":\"");
    for c in message.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\"}\n");
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, String> {
        read_request(&mut io::Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(
            b"GET /characterize?spec=mul8%3Atrunc%3A3&target=lut4-ice40 HTTP/1.1\r\n\
              Host: x\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/characterize");
        assert_eq!(req.query_param("spec"), Some("mul8:trunc:3"));
        assert_eq!(req.query_param("target"), Some("lut4-ice40"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /characterize HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse(b"\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/9.9\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\nContent-Length: zz\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort").is_err());
        let huge = format!("GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(parse(huge.as_bytes()).is_err());
    }

    #[test]
    fn oversized_head_is_rejected_not_buffered() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn response_shape_and_error_escaping() {
        let mut out = Vec::new();
        write_response(&mut out, 429, &[("Retry-After", "1".into())], b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let body = String::from_utf8(error_body("a \"quoted\"\npath\\x")).unwrap();
        assert_eq!(body, "{\"error\":\"a \\\"quoted\\\"\\npath\\\\x\"}\n");
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Characterization-as-a-service: the `afp serve` daemon.
//!
//! A long-running service that answers circuit-characterization requests
//! over HTTP/1.1 on TCP (or a Unix socket) without re-running the whole
//! flow per query. Three properties carry the design:
//!
//! 1. **Coalescing** — concurrent requests for the same
//!    `(circuit-fingerprint, target)` pair collapse into one in-flight
//!    characterization via [`afp_runtime::Inflight`]; every waiter gets
//!    the same bytes, and the runtime counters prove exactly one
//!    synthesis ran.
//! 2. **Backpressure** — accepted connections flow through a bounded
//!    queue (`queue_depth`); when it is full the acceptor answers
//!    `429 Too Many Requests` immediately instead of letting latency
//!    grow without bound.
//! 3. **Graceful drain** — shutdown stops accepting, then the workers
//!    finish every connection already queued before exiting, so an
//!    accepted request is never dropped. Pipelined requests whose bytes
//!    were already sent when shutdown fired are served before the
//!    connection closes.
//! 4. **Keep-alive** — connections are reused across requests
//!    (HTTP/1.1 semantics, `Connection: close` honored per request),
//!    bounded by a per-connection request cap and an idle timeout so a
//!    quiet client cannot pin a worker forever.
//! 5. **Estimate fast path** — with `--models` pointing at persisted
//!    `.afpm` trained zoos ([`approxfpgas::load_zoo`]),
//!    `GET /estimate?spec=..` answers from the ML models in
//!    microseconds — zero FPGA synthesis — falling back to full
//!    characterization (or `404` under `--estimate-only`) when no
//!    loaded zoo covers the request's `(kind, width, target)`.
//!
//! Responses are schema-stable [`afp_obs::RunReport`] JSON built by
//! [`approxfpgas::request_report`]; volatile per-request metadata (was
//! this coalesced? warm?) travels in `X-Afp-*` headers, never in the
//! body, so identical requests yield byte-identical bodies.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use afp_circuits::{from_spec_ref, stream_library, ArithCircuit, ArithKind};
use afp_ml::MlModelId;
use afp_obs::{RunReport, Section, Value};
use afp_runtime::{Counters, Inflight, Runtime};
use approxfpgas::record::{estimate_features, CharacterizeScratch};
use approxfpgas::{
    characterize_request, load_zoo, request_report, CacheBackend, CharacterizationCache, FpgaParam,
    RequestConfig, SavedZoo,
};

pub mod http;

use http::{error_body, read_request, write_response, ReadError, Request, RequestReader};

/// How long a worker waits on a slow or stalled peer before giving up
/// on the connection. Bounds the damage of a client that connects and
/// never sends (or never reads). Applies to the *first* request on a
/// connection; later requests wait at most the keep-alive idle window.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Read window for the next keep-alive request once shutdown has been
/// triggered: long enough for pipelined bytes already in flight to
/// land, short enough that drain completes promptly.
const DRAIN_TIMEOUT: Duration = Duration::from_millis(200);

/// Rendered-estimate cache entries kept before the map is reset. Bounds
/// memory; the cache refills with whatever is hot.
const ESTIMATE_CACHE_CAP: usize = 4096;

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// TCP address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    Tcp(String),
    /// Unix-domain socket path. A stale file at the path is removed.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address.
    pub bind: Bind,
    /// Worker threads handling connections (0 = available parallelism).
    pub threads: usize,
    /// Bounded depth of the accepted-connection queue; connections
    /// beyond it are answered `429` by the acceptor.
    pub queue_depth: usize,
    /// Target applied when a request omits `?target=`.
    pub default_target: String,
    /// Warm-tier directory; `None` keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Disk format of the warm tier when `cache_dir` is set.
    pub cache_backend: CacheBackend,
    /// `.afpm` model containers ([`approxfpgas::save_zoo`]) loaded at
    /// startup to answer `GET /estimate` from trained models. A path
    /// that fails to load aborts startup loudly.
    pub models: Vec<PathBuf>,
    /// When set, `GET /estimate` answers `404` instead of falling back
    /// to full characterization when no loaded zoo covers the request.
    pub estimate_only: bool,
    /// Maximum requests served on one connection before the server
    /// closes it (`Connection: close` on the final response).
    pub keepalive_requests: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub keepalive_idle: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            threads: 0,
            queue_depth: 64,
            default_target: afp_fpga::target::DEFAULT_TARGET.to_string(),
            cache_dir: None,
            cache_backend: CacheBackend::Store,
            models: Vec::new(),
            estimate_only: false,
            keepalive_requests: 1000,
            keepalive_idle: Duration::from_secs(5),
        }
    }
}

/// One accepted connection, TCP or Unix, unified behind `Read + Write`.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_timeouts(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.set_read_timeout(Some(IO_TIMEOUT));
                let _ = s.set_write_timeout(Some(IO_TIMEOUT));
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.set_read_timeout(Some(IO_TIMEOUT));
                let _ = s.set_write_timeout(Some(IO_TIMEOUT));
            }
        }
    }

    /// Adjust only the read deadline — used to shrink the wait for the
    /// next keep-alive request without touching the write timeout.
    fn set_read_timeout(&self, timeout: Duration) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.set_read_timeout(Some(timeout));
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.set_read_timeout(Some(timeout));
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The bound listener, mirrored by the wake target used to unblock
/// `accept` during shutdown.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Keep-alive turns each connection into a request/response
                // ping-pong; Nagle + delayed ACK would add a round trip
                // per exchange.
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// Where to dial a throwaway connection to wake the blocked acceptor.
#[derive(Clone, Debug)]
enum WakeTarget {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl WakeTarget {
    fn wake(&self) {
        match self {
            WakeTarget::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, Duration::from_secs(2));
            }
            #[cfg(unix)]
            WakeTarget::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }
}

/// A `.afpm` zoo loaded at startup, with the best persisted model per
/// FPGA parameter pre-resolved so the hot path is a lookup, not a rank.
struct LoadedZoo {
    saved: SavedZoo,
    best: Vec<(FpgaParam, MlModelId)>,
}

/// Rendered `/estimate` bodies keyed by (spec, target): identical queries
/// against an unchanged zoo must return byte-identical responses.
type EstimateCache = Mutex<HashMap<(String, String), Arc<Vec<u8>>>>;

/// State shared by the acceptor and every worker.
struct Shared {
    rt: Runtime,
    cache: CharacterizationCache,
    inflight: Inflight<Arc<String>>,
    default_target: String,
    queue_depth: usize,
    threads: usize,
    shutdown: AtomicBool,
    wake: WakeTarget,
    batch_seq: AtomicU64,
    zoos: Vec<LoadedZoo>,
    estimate_cache: EstimateCache,
    estimate_only: bool,
    keepalive_requests: usize,
    keepalive_idle: Duration,
}

impl Shared {
    fn counters(&self) -> &Counters {
        self.rt.counters()
    }
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] (or send `POST /shutdown`) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound TCP address (useful with port 0). `None` for Unix binds.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Snapshot of the shared runtime counters (serve counters included).
    pub fn snapshot(&self) -> afp_runtime::CounterSnapshot {
        self.shared.rt.snapshot()
    }

    /// Ask the server to stop accepting and drain, without waiting.
    pub fn trigger_shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Block until the acceptor and every worker have exited — i.e.
    /// until every accepted connection has been answered. Returns the
    /// final counter snapshot of the run.
    pub fn join(mut self) -> afp_runtime::CounterSnapshot {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.rt.snapshot()
    }

    /// [`trigger_shutdown`](Self::trigger_shutdown) then
    /// [`join`](Self::join): graceful stop that loses no accepted work.
    pub fn shutdown(self) -> afp_runtime::CounterSnapshot {
        self.trigger_shutdown();
        self.join()
    }
}

fn trigger_shutdown(shared: &Shared) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        shared.wake.wake();
    }
}

/// Start the daemon described by `config`.
///
/// Binds the listener, spawns `threads` workers plus one acceptor, and
/// returns immediately; use the handle to discover the bound address
/// and to stop the server.
pub fn serve(config: ServeConfig) -> io::Result<ServerHandle> {
    if config.queue_depth == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "queue depth must be at least 1",
        ));
    }
    if afp_fpga::target::named(&config.default_target).is_none() {
        let known: Vec<&str> = afp_fpga::target::registry()
            .iter()
            .map(|p| p.name)
            .collect();
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "unknown default target `{}` (known: {})",
                config.default_target,
                known.join(", ")
            ),
        ));
    }
    if config.keepalive_requests == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "keep-alive request cap must be at least 1",
        ));
    }
    if config.estimate_only && config.models.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "estimate-only mode without any model zoo would answer 404 to every estimate; \
             pass at least one .afpm via `models`",
        ));
    }
    let mut zoos = Vec::with_capacity(config.models.len());
    for path in &config.models {
        let saved = load_zoo(path).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("loading model zoo `{}`: {e}", path.display()),
            )
        })?;
        let best = FpgaParam::ALL
            .iter()
            .map(|&param| {
                best_persisted_model(&saved, param)
                    .map(|model| (param, model))
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "model zoo `{}` holds no trained model for {}",
                                path.display(),
                                param.label()
                            ),
                        )
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;
        zoos.push(LoadedZoo { saved, best });
    }
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };
    let cache = match &config.cache_dir {
        None => CharacterizationCache::in_memory(),
        Some(dir) => match config.cache_backend {
            CacheBackend::Store => CharacterizationCache::try_with_disk(dir)?,
            CacheBackend::Csv => CharacterizationCache::try_with_csv_disk(dir)?,
        },
    };

    let (listener, addr, wake) = match &config.bind {
        Bind::Tcp(spec) => {
            let l = TcpListener::bind(spec)?;
            let addr = l.local_addr()?;
            (Listener::Tcp(l), Some(addr), WakeTarget::Tcp(addr))
        }
        #[cfg(unix)]
        Bind::Unix(path) => {
            // A previous run's socket file would make bind fail with
            // AddrInUse even though nothing is listening.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            (Listener::Unix(l), None, WakeTarget::Unix(path.clone()))
        }
    };

    let shared = Arc::new(Shared {
        rt: Runtime::new(threads),
        cache,
        inflight: Inflight::new(),
        default_target: config.default_target.clone(),
        queue_depth: config.queue_depth,
        threads,
        shutdown: AtomicBool::new(false),
        wake,
        batch_seq: AtomicU64::new(0),
        zoos,
        estimate_cache: Mutex::new(HashMap::new()),
        estimate_only: config.estimate_only,
        keepalive_requests: config.keepalive_requests,
        keepalive_idle: config.keepalive_idle,
    });

    let (tx, rx) = sync_channel::<Conn>(config.queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || worker_loop(&rx, &shared)));
    }
    let acceptor = {
        let shared = Arc::clone(&shared);
        let sock_path = match &config.bind {
            #[cfg(unix)]
            Bind::Unix(path) => Some(path.clone()),
            _ => None,
        };
        std::thread::spawn(move || {
            accept_loop(&listener, tx, &shared);
            if let Some(path) = sock_path {
                let _ = std::fs::remove_file(path);
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Accept connections and enqueue them; answer `429` inline when the
/// bounded queue is full. Exits (dropping the sender, which lets the
/// workers drain and stop) once shutdown is triggered.
fn accept_loop(listener: &Listener, tx: SyncSender<Conn>, shared: &Shared) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // Likely the wake-up dial; either way we no longer accept.
            break;
        }
        conn.set_timeouts();
        match tx.try_send(conn) {
            Ok(()) => {}
            Err(TrySendError::Full(mut conn)) => {
                Counters::add(&shared.counters().queue_rejections, 1);
                let _ = write_response(
                    &mut conn,
                    429,
                    true,
                    &[("Retry-After", "1".to_string())],
                    &error_body("request queue is full, retry later"),
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Sender drops here: workers finish the queued backlog, then stop.
}

/// Pull connections until the channel is closed *and* drained.
fn worker_loop(rx: &Mutex<Receiver<Conn>>, shared: &Shared) {
    loop {
        let conn = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        let Ok(mut conn) = conn else { break };
        // A panic while characterizing (e.g. a malformed payload that
        // slipped past validation) must cost one connection, not one
        // worker thread — capacity would silently shrink forever.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(&mut conn, shared);
        }));
        if outcome.is_err() {
            let _ = write_response(
                &mut conn,
                500,
                true,
                &[],
                &error_body("internal error while handling request"),
            );
        }
    }
}

/// Serve requests on one connection until it closes: the keep-alive
/// loop. Each iteration reads a request (pipelined bytes already
/// buffered by the [`RequestReader`] are consumed without touching the
/// socket), routes it, and writes the response; the connection closes
/// when the client asked for it, the per-connection cap is reached, the
/// head was unparseable, or the peer goes idle past the deadline.
fn handle_connection(conn: &mut Conn, shared: &Shared) {
    let mut reader = RequestReader::new();
    let mut served: u64 = 0;
    loop {
        // The first request keeps the connection-level IO_TIMEOUT: a
        // freshly accepted connection may legitimately wait queued
        // behind slow work before its bytes are read. Later requests
        // wait at most the keep-alive idle window — or, once shutdown
        // has been triggered, a short drain window that still lets
        // pipelined bytes already in flight land and be answered.
        if served > 0 {
            let idle = if shared.shutdown.load(Ordering::SeqCst) {
                DRAIN_TIMEOUT
            } else {
                shared.keepalive_idle
            };
            conn.set_read_timeout(idle);
        }
        let req = match read_request(conn, &mut reader) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::Bad(reason)) => {
                // The stream cannot be resynchronized after a bad head;
                // answer best-effort and drop the connection.
                let _ = write_response(conn, 400, true, &[], &error_body(&reason));
                return;
            }
        };
        if served > 0 {
            Counters::add(&shared.counters().keepalive_reuses, 1);
        }
        served += 1;
        let is_shutdown = req.method == "POST" && req.path == "/shutdown";
        // Announce close when the client asked for it or the budget is
        // spent. A shutdown in progress does NOT force the header:
        // pipelined requests already sent are still drained, and the
        // drain timeout closes the socket afterwards.
        let close = !req.keep_alive || served >= shared.keepalive_requests as u64;
        let (status, headers, body) = route(&req, shared);
        let header_refs: Vec<(&str, String)> = headers
            .iter()
            .map(|(name, value)| (*name, value.clone()))
            .collect();
        let write_ok = write_response(conn, status, close, &header_refs, &body).is_ok();
        if is_shutdown && status == 200 {
            trigger_shutdown(shared);
        }
        if close || !write_ok {
            return;
        }
    }
}

type Response = (u16, Vec<(&'static str, String)>, Vec<u8>);

fn route(req: &Request, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, Vec::new(), b"{\"ok\":true}\n".to_vec()),
        ("GET", "/stats") => {
            let mut body = stats_report(shared).to_json().into_bytes();
            body.push(b'\n');
            (200, Vec::new(), body)
        }
        ("POST", "/shutdown") => (
            200,
            Vec::new(),
            b"{\"ok\":true,\"draining\":true}\n".to_vec(),
        ),
        ("GET", "/characterize") => characterize_spec(req, shared),
        ("GET", "/estimate") => estimate_spec(req, shared),
        ("POST", "/characterize") => characterize_bristol(req, shared),
        ("POST", "/characterize/batch") => characterize_batch(req, shared),
        (
            _,
            "/healthz"
            | "/stats"
            | "/shutdown"
            | "/characterize"
            | "/characterize/batch"
            | "/estimate",
        ) => (
            405,
            Vec::new(),
            error_body(&format!("method {} not allowed here", req.method)),
        ),
        (_, path) => (
            404,
            Vec::new(),
            error_body(&format!("no such endpoint `{path}`")),
        ),
    }
}

/// Resolve `?target=` (or the daemon default) to a request configuration.
fn target_config(req: &Request, shared: &Shared) -> Result<RequestConfig, String> {
    let name = req
        .query_param("target")
        .unwrap_or(shared.default_target.as_str());
    match afp_fpga::target::named(name) {
        Some(profile) => Ok(RequestConfig::for_target_config(
            profile.apply(&afp_fpga::FpgaConfig::default()),
        )),
        None => Err(format!("unknown target `{name}`")),
    }
}

/// The shared serve path: coalesce on the content key, characterize
/// once, and return the byte-stable report body plus volatile `X-Afp-*`
/// metadata headers.
fn characterize_circuit(
    circuit: &ArithCircuit,
    config: &RequestConfig,
    shared: &Shared,
) -> (Arc<String>, Vec<(&'static str, String)>) {
    let key = config.key(circuit);
    let warm = shared.cache.contains(key);
    let (body, joined) = shared.inflight.run(key, || {
        Counters::max(
            &shared.counters().inflight_peak,
            shared.inflight.len() as u64,
        );
        let mut scratch = CharacterizeScratch::default();
        let record = characterize_request(
            circuit,
            config,
            &shared.rt,
            Some(&shared.cache),
            &mut scratch,
        );
        let mut json = request_report(&record).to_json();
        json.push('\n');
        Arc::new(json)
    });
    if joined {
        Counters::add(&shared.counters().requests_coalesced, 1);
    }
    let source = if warm {
        "hit"
    } else if joined {
        "coalesced"
    } else {
        "miss"
    };
    let headers = vec![
        (
            "X-Afp-Coalesced",
            if joined { "1" } else { "0" }.to_string(),
        ),
        ("X-Afp-Cache", source.to_string()),
    ];
    (body, headers)
}

/// `GET /characterize?spec=mul8:trunc:3[&target=NAME]`
fn characterize_spec(req: &Request, shared: &Shared) -> Response {
    let Some(spec) = req.query_param("spec") else {
        return (
            400,
            Vec::new(),
            error_body("missing `spec` query parameter"),
        );
    };
    let config = match target_config(req, shared) {
        Ok(config) => config,
        Err(reason) => return (400, Vec::new(), error_body(&reason)),
    };
    let circuit = match from_spec_ref(spec) {
        Ok(circuit) => circuit,
        Err(reason) => return (400, Vec::new(), error_body(&reason)),
    };
    let (body, headers) = characterize_circuit(&circuit, &config, shared);
    Counters::add(&shared.counters().requests_served, 1);
    (200, headers, body.as_bytes().to_vec())
}

/// The best persisted model for `param` in a loaded zoo: fidelity
/// ranking with ML-only models preferred over the plain ASIC
/// regressions (matching the flow's selection policy), restricted to
/// models the container actually holds.
fn best_persisted_model(saved: &SavedZoo, param: FpgaParam) -> Option<MlModelId> {
    let mut ranked = saved.zoo.top_models(param, usize::MAX, false);
    ranked.extend(saved.zoo.top_models(param, usize::MAX, true));
    ranked.into_iter().find(|&m| saved.zoo.has_model(m, param))
}

/// JSON field names for the per-parameter estimate section.
fn estimate_fields(param: FpgaParam) -> (&'static str, &'static str) {
    match param {
        FpgaParam::Latency => ("model_latency", "latency_ns"),
        FpgaParam::Power => ("model_power", "power_mw"),
        FpgaParam::Area => ("model_area", "area_luts"),
    }
}

/// `GET /estimate?spec=add8:rca[&target=NAME]` — score the circuit with
/// the persisted trained zoo instead of running the characterization
/// pipeline: structural features plus one (uncounted, analytic) ASIC
/// pass feed the best model per FPGA parameter. Microseconds, zero
/// `asic_synths`/`fpga_synths` counter movement. When no loaded zoo
/// covers the `(kind, width, target)`, falls back to the full
/// `/characterize` path (flagged `X-Afp-Estimate: fallback`) — or
/// answers `404` under estimate-only mode.
fn estimate_spec(req: &Request, shared: &Shared) -> Response {
    let Some(spec) = req.query_param("spec") else {
        return (
            400,
            Vec::new(),
            error_body("missing `spec` query parameter"),
        );
    };
    let target_name = req
        .query_param("target")
        .unwrap_or(shared.default_target.as_str());
    if afp_fpga::target::named(target_name).is_none() {
        return (
            400,
            Vec::new(),
            error_body(&format!("unknown target `{target_name}`")),
        );
    }
    let circuit = match from_spec_ref(spec) {
        Ok(circuit) => circuit,
        Err(reason) => return (400, Vec::new(), error_body(&reason)),
    };
    let zoo = shared
        .zoos
        .iter()
        .find(|z| z.saved.target == target_name && z.saved.covers(circuit.kind(), circuit.width()));
    let Some(zoo) = zoo else {
        if shared.estimate_only {
            return (
                404,
                Vec::new(),
                error_body(&format!(
                    "no loaded model zoo covers `{spec}` on target `{target_name}` \
                     (estimate-only mode; no characterization fallback)"
                )),
            );
        }
        // Fall back to the full measured path, flagged so the client
        // can tell this answer was characterized, not estimated.
        let config = match target_config(req, shared) {
            Ok(config) => config,
            Err(reason) => return (400, Vec::new(), error_body(&reason)),
        };
        let (body, mut headers) = characterize_circuit(&circuit, &config, shared);
        headers.push(("X-Afp-Estimate", "fallback".to_string()));
        Counters::add(&shared.counters().requests_served, 1);
        return (200, headers, body.as_bytes().to_vec());
    };

    // Rendered-body cache: a hot (spec, target) pair skips even the
    // feature extraction. Bodies are byte-stable, so serving the cached
    // bytes is indistinguishable from recomputing them.
    let cache_key = (spec.to_string(), target_name.to_string());
    {
        let cache = shared
            .estimate_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(body) = cache.get(&cache_key) {
            Counters::add(&shared.counters().requests_served, 1);
            Counters::add(&shared.counters().estimates_served, 1);
            Counters::add(&shared.counters().model_cache_hits, 1);
            return (
                200,
                vec![
                    ("X-Afp-Estimate", "model".to_string()),
                    ("X-Afp-Model-Cache", "hit".to_string()),
                ],
                body.as_ref().clone(),
            );
        }
    }

    let features = estimate_features(
        &circuit,
        &afp_asic::AsicConfig::default(),
        zoo.saved.zoo.layout(),
    );
    let mut section = Section::new("estimate")
        .field("name", Value::Str(circuit.name().to_string()))
        .field("kind", Value::Str(circuit.kind().mnemonic().to_string()))
        .field("width", Value::UInt(circuit.width() as u64))
        .field("target", Value::Str(target_name.to_string()))
        .field("source", Value::Str("model".to_string()));
    for &(param, model) in &zoo.best {
        let value = zoo
            .saved
            .zoo
            .estimate_row(model, param, &features)
            .unwrap_or(f64::NAN);
        let (model_field, value_field) = estimate_fields(param);
        section = section
            .field(model_field, Value::Str(model.label().to_string()))
            .field(value_field, Value::Num(value));
    }
    let mut report = RunReport::new();
    report.push_section(section);
    let mut body = report.to_json().into_bytes();
    body.push(b'\n');
    {
        let mut cache = shared
            .estimate_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if cache.len() >= ESTIMATE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(cache_key, Arc::new(body.clone()));
    }
    Counters::add(&shared.counters().requests_served, 1);
    Counters::add(&shared.counters().estimates_served, 1);
    (
        200,
        vec![
            ("X-Afp-Estimate", "model".to_string()),
            ("X-Afp-Model-Cache", "miss".to_string()),
        ],
        body,
    )
}

/// `POST /characterize?kind=add|mul&width=N[&target=NAME]` with a
/// Bristol-format netlist body.
fn characterize_bristol(req: &Request, shared: &Shared) -> Response {
    let kind = match req.query_param("kind") {
        Some("add") => ArithKind::Adder,
        Some("mul") => ArithKind::Multiplier,
        Some(other) => {
            return (
                400,
                Vec::new(),
                error_body(&format!("unknown kind `{other}`")),
            )
        }
        None => {
            return (
                400,
                Vec::new(),
                error_body("missing `kind` query parameter"),
            )
        }
    };
    let width: usize = match req.query_param("width").map(str::parse) {
        Some(Ok(w)) => w,
        _ => {
            return (
                400,
                Vec::new(),
                error_body("missing or malformed `width` query parameter"),
            )
        }
    };
    let max_width = match kind {
        ArithKind::Adder => 32,
        ArithKind::Multiplier => 16,
    };
    if width == 0 || width > max_width {
        return (
            400,
            Vec::new(),
            error_body(&format!(
                "width {width} out of range 1..={max_width} for kind `{}`",
                kind.mnemonic()
            )),
        );
    }
    let config = match target_config(req, shared) {
        Ok(config) => config,
        Err(reason) => return (400, Vec::new(), error_body(&reason)),
    };
    let source = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            return (
                400,
                Vec::new(),
                error_body("body is not UTF-8 Bristol text"),
            )
        }
    };
    let netlist = match afp_netlist::bristol::from_bristol(source) {
        Ok(netlist) => netlist,
        Err(e) => {
            return (
                400,
                Vec::new(),
                error_body(&format!("bad Bristol netlist: {e}")),
            )
        }
    };
    // `ArithCircuit::new` asserts the word-level interface; check it
    // here so a mismatched payload is a 400, not a worker panic.
    if netlist.num_inputs() != 2 * width {
        return (
            400,
            Vec::new(),
            error_body(&format!(
                "netlist has {} inputs, expected {} for width {width}",
                netlist.num_inputs(),
                2 * width
            )),
        );
    }
    if netlist.num_outputs() != kind.out_width(width) {
        return (
            400,
            Vec::new(),
            error_body(&format!(
                "netlist has {} outputs, expected {} for a width-{width} `{}`",
                netlist.num_outputs(),
                kind.out_width(width),
                kind.mnemonic()
            )),
        );
    }
    let circuit = ArithCircuit::new(kind, width, netlist);
    let (body, headers) = characterize_circuit(&circuit, &config, shared);
    Counters::add(&shared.counters().requests_served, 1);
    (200, headers, body.as_bytes().to_vec())
}

/// `POST /characterize/batch[?target=NAME]` with an `.afps` library
/// payload; responds with a JSON array of per-circuit reports.
fn characterize_batch(req: &Request, shared: &Shared) -> Response {
    let config = match target_config(req, shared) {
        Ok(config) => config,
        Err(reason) => return (400, Vec::new(), error_body(&reason)),
    };
    if req.body.is_empty() {
        return (
            400,
            Vec::new(),
            error_body("empty batch body; expected .afps bytes"),
        );
    }
    // The streaming reader wants a file; spill the payload to a
    // uniquely-named temp path and clean it up on every exit.
    let seq = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("afp-serve-batch-{}-{seq}.afps", std::process::id()));
    let result = (|| -> Result<Vec<u8>, String> {
        std::fs::write(&path, &req.body).map_err(|e| format!("spilling batch body: {e}"))?;
        let stream = stream_library(&path).map_err(|e| format!("bad .afps payload: {e}"))?;
        let mut out = Vec::from(&b"["[..]);
        let mut first = true;
        for item in stream {
            let circuit = item.map_err(|e| format!("bad .afps payload: {e}"))?;
            let (body, _) = characterize_circuit(&circuit, &config, shared);
            if !first {
                out.push(b',');
            }
            first = false;
            out.extend_from_slice(body.trim_end().as_bytes());
        }
        out.extend_from_slice(b"]\n");
        Ok(out)
    })();
    let _ = std::fs::remove_file(&path);
    match result {
        Ok(body) => {
            Counters::add(&shared.counters().requests_served, 1);
            (200, Vec::new(), body)
        }
        Err(reason) => (400, Vec::new(), error_body(&reason)),
    }
}

/// The `GET /stats` report: serve counters, cache state, and synthesis
/// counts — the full Counters → RunReport → endpoint chain.
fn stats_report(shared: &Shared) -> RunReport {
    let snap = shared.rt.snapshot();
    let last_write_error = match shared.cache.last_write_error() {
        Some(err) => Value::Str(err),
        None => Value::Null,
    };
    let mut report = RunReport::new();
    report.push_section(
        Section::new("serve")
            .field("requests_served", Value::UInt(snap.requests_served))
            .field("requests_coalesced", Value::UInt(snap.requests_coalesced))
            .field("queue_rejections", Value::UInt(snap.queue_rejections))
            .field("inflight_peak", Value::UInt(snap.inflight_peak))
            .field("queue_depth", Value::UInt(shared.queue_depth as u64))
            .field("threads", Value::UInt(shared.threads as u64))
            .field("keepalive_reuses", Value::UInt(snap.keepalive_reuses)),
    );
    let model_targets = shared
        .zoos
        .iter()
        .map(|z| z.saved.target.as_str())
        .collect::<Vec<_>>()
        .join(",");
    report.push_section(
        Section::new("estimate")
            .field("estimates_served", Value::UInt(snap.estimates_served))
            .field("model_cache_hits", Value::UInt(snap.model_cache_hits))
            .field("models_loaded", Value::UInt(shared.zoos.len() as u64))
            .field(
                "model_targets",
                if model_targets.is_empty() {
                    Value::Null
                } else {
                    Value::Str(model_targets)
                },
            )
            .field("estimate_only", Value::Bool(shared.estimate_only)),
    );
    report.push_section(
        Section::new("cache")
            .field("hits", Value::UInt(snap.cache_hits))
            .field("misses", Value::UInt(snap.cache_misses))
            .field("entries", Value::UInt(shared.cache.len() as u64))
            .field("write_errors", Value::UInt(snap.cache_write_errors))
            .field("last_write_error", last_write_error),
    );
    report.push_section(
        Section::new("runtime")
            .field("asic_synths", Value::UInt(snap.asic_synths))
            .field("fpga_synths", Value::UInt(snap.fpga_synths))
            .field("error_analyses", Value::UInt(snap.error_analyses)),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn start(config: ServeConfig) -> ServerHandle {
        serve(config).expect("server starts")
    }

    fn request(addr: SocketAddr, raw: &str) -> (u16, Vec<String>, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            headers.push(line);
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).expect("body");
        (status, headers, body)
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, Vec<String>, String) {
        request(
            addr,
            &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    /// One response off a kept-alive stream: status, headers, and a
    /// `Content-Length`-delimited body (no reliance on EOF).
    fn read_keepalive_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<String>, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("Content-Length: ") {
                content_length = v.parse().expect("content length");
            }
            headers.push(line);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (
            status,
            headers,
            String::from_utf8(body).expect("utf-8 body"),
        )
    }

    /// Train a tiny zoo once per test binary, save it as `.afpm`, and
    /// hand every test the same path.
    fn saved_zoo_path() -> &'static std::path::Path {
        static PATH: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
        PATH.get_or_init(|| {
            let lib = afp_circuits::build_library(&afp_circuits::LibrarySpec::new(
                ArithKind::Adder,
                8,
                40,
            ));
            let records = approxfpgas::dataset::characterize_library(
                &lib,
                &afp_asic::AsicConfig::default(),
                &afp_fpga::FpgaConfig::default(),
                &afp_error::ErrorConfig::default(),
            );
            let subset = approxfpgas::dataset::sample_subset(records.len(), 0.5, 20, 7);
            let (train, val) = approxfpgas::dataset::train_validate_split(&subset, 0.8, 7);
            let zoo = approxfpgas::fidelity::train_zoo(
                &records,
                &train,
                &val,
                &[MlModelId::Ml1, MlModelId::Ml14],
                0.01,
            );
            let path =
                std::env::temp_dir().join(format!("afp-serve-zoo-{}.afpm", std::process::id()));
            approxfpgas::save_zoo(
                &path,
                &zoo,
                afp_fpga::target::DEFAULT_TARGET,
                &[(ArithKind::Adder, 8)],
            )
            .expect("zoo saves");
            path
        })
    }

    #[test]
    fn serves_spec_stats_and_errors() {
        let server = start(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        });
        let addr = server.addr().unwrap();

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}\n"));

        let (status, headers, body) = get(addr, "/characterize?spec=add8:rca");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"name\":\"add8u_rca\""));
        assert!(headers.iter().any(|h| h == "X-Afp-Cache: miss"));

        // Same request again: warm, still byte-identical.
        let (status, headers, again) = get(addr, "/characterize?spec=add8:rca");
        assert_eq!(status, 200);
        assert_eq!(again, body);
        assert!(headers.iter().any(|h| h == "X-Afp-Cache: hit"));

        let (status, _, body) = get(addr, "/characterize?spec=add8:rca&target=nope");
        assert_eq!(status, 400);
        assert!(body.contains("unknown target"));

        let (status, _, body) = get(addr, "/characterize?spec=add99:rca");
        assert_eq!(status, 400, "{body}");

        let (status, _, body) = get(addr, "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("\"requests_served\":2"), "{body}");
        assert!(body.contains("\"asic_synths\":1"), "{body}");

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _, _) = request(addr, "POST /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 405);
        let (status, _, _) = request(addr, "POST /estimate HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 405, "estimate is GET-only");

        server.shutdown();
    }

    #[test]
    fn keepalive_connection_serves_pipelined_requests_on_one_socket() {
        let server = start(ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        });
        let addr = server.addr().unwrap();
        const N: u64 = 6;

        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // Pipeline: every request is written before the first response
        // is read. Only the last one asks the server to close.
        let mut raw = String::new();
        for i in 0..N {
            let conn = if i == N - 1 {
                "Connection: close\r\n"
            } else {
                ""
            };
            raw.push_str(&format!(
                "GET /characterize?spec=add8:rca HTTP/1.1\r\nHost: t\r\n{conn}\r\n"
            ));
        }
        writer.write_all(raw.as_bytes()).expect("send pipeline");

        let mut bodies = Vec::new();
        for i in 0..N {
            let (status, headers, body) = read_keepalive_response(&mut reader);
            assert_eq!(status, 200, "request {i}: {body}");
            let want_close = i == N - 1;
            assert!(
                headers.iter().any(|h| h
                    == &format!(
                        "Connection: {}",
                        if want_close { "close" } else { "keep-alive" }
                    )),
                "request {i}: {headers:?}"
            );
            bodies.push(body);
        }
        for body in &bodies[1..] {
            assert_eq!(
                body, &bodies[0],
                "keep-alive responses must be byte-identical"
            );
        }

        let snap = server.shutdown();
        assert_eq!(snap.requests_served, N);
        assert_eq!(
            snap.keepalive_reuses,
            N - 1,
            "every request after the first reuses the connection"
        );
        assert_eq!(
            snap.asic_synths, 1,
            "one characterization feeds all pipelined requests"
        );
    }

    #[test]
    fn keepalive_request_cap_closes_the_connection() {
        let server = start(ServeConfig {
            threads: 1,
            keepalive_requests: 2,
            ..ServeConfig::default()
        });
        let addr = server.addr().unwrap();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n")
            .expect("send");
        let (_, headers, _) = read_keepalive_response(&mut reader);
        assert!(headers.iter().any(|h| h == "Connection: keep-alive"));
        let (_, headers, _) = read_keepalive_response(&mut reader);
        assert!(
            headers.iter().any(|h| h == "Connection: close"),
            "cap reached: server must announce close: {headers:?}"
        );
        // The server actually closes: the stream reaches EOF.
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("eof");
        assert!(rest.is_empty());
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_behind_shutdown_are_drained() {
        let server = start(ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        });
        let addr = server.addr().unwrap();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // A characterization, the shutdown itself, and two more
        // requests pipelined *behind* the shutdown — all in one write.
        // Every one of them was received before the drain began, so
        // every one must be answered.
        writer
            .write_all(
                b"GET /characterize?spec=add8:rca HTTP/1.1\r\n\r\n\
                  POST /shutdown HTTP/1.1\r\n\r\n\
                  GET /stats HTTP/1.1\r\n\r\n\
                  GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .expect("send pipeline");
        let (status, _, body) = read_keepalive_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        let (status, _, body) = read_keepalive_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("draining"));
        let (status, _, body) = read_keepalive_response(&mut reader);
        assert_eq!(
            status, 200,
            "pipelined request behind shutdown dropped: {body}"
        );
        assert!(body.contains("keepalive_reuses"), "{body}");
        let (status, _, body) = read_keepalive_response(&mut reader);
        assert_eq!(
            status, 200,
            "pipelined request behind shutdown dropped: {body}"
        );
        assert!(body.contains("\"ok\":true"));
        server.join();
    }

    #[test]
    fn estimate_answers_from_models_without_synthesis() {
        let path = saved_zoo_path().to_path_buf();
        let server = start(ServeConfig {
            threads: 1,
            models: vec![path],
            ..ServeConfig::default()
        });
        let addr = server.addr().unwrap();

        let (status, headers, body) = get(addr, "/estimate?spec=add8:rca");
        assert_eq!(status, 200, "{body}");
        assert!(
            headers.iter().any(|h| h == "X-Afp-Estimate: model"),
            "{headers:?}"
        );
        assert!(headers.iter().any(|h| h == "X-Afp-Model-Cache: miss"));
        assert!(body.contains("\"latency_ns\":"), "{body}");
        assert!(body.contains("\"power_mw\":"), "{body}");
        assert!(body.contains("\"area_luts\":"), "{body}");

        // Second ask: served from the rendered-estimate cache,
        // byte-identical.
        let (status, headers, again) = get(addr, "/estimate?spec=add8:rca");
        assert_eq!(status, 200);
        assert_eq!(again, body);
        assert!(headers.iter().any(|h| h == "X-Afp-Model-Cache: hit"));

        // A shape the zoo does not cover falls back to the measured
        // path and says so.
        let (status, headers, body) = get(addr, "/estimate?spec=mul4:array");
        assert_eq!(status, 200, "{body}");
        assert!(
            headers.iter().any(|h| h == "X-Afp-Estimate: fallback"),
            "{headers:?}"
        );
        assert!(body.contains("\"fpga\":{"), "{body}");

        let snap = server.shutdown();
        assert_eq!(snap.estimates_served, 2);
        assert_eq!(snap.model_cache_hits, 1);
        // Only the fallback touched the synthesis pipeline: the model
        // path moved no synthesis counters at all.
        assert_eq!(snap.asic_synths, 1);
        assert_eq!(snap.fpga_synths, 1);
        assert_eq!(snap.requests_served, 3);
    }

    #[test]
    fn estimate_only_refuses_uncovered_requests() {
        let path = saved_zoo_path().to_path_buf();
        let server = start(ServeConfig {
            threads: 1,
            models: vec![path],
            estimate_only: true,
            ..ServeConfig::default()
        });
        let addr = server.addr().unwrap();
        let (status, _, body) = get(addr, "/estimate?spec=add8:rca");
        assert_eq!(status, 200, "{body}");
        let (status, _, body) = get(addr, "/estimate?spec=mul4:array");
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("estimate-only"), "{body}");
        let snap = server.shutdown();
        assert_eq!(snap.asic_synths, 0, "estimate-only mode never synthesizes");
        assert_eq!(snap.fpga_synths, 0);
    }

    #[test]
    fn bristol_post_validates_interface_before_construction() {
        let server = start(ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        });
        let addr = server.addr().unwrap();
        let netlist = afp_circuits::from_spec_ref("add4:rca").unwrap();
        let bristol = afp_netlist::bristol::to_bristol(netlist.netlist());

        let post = |query: &str, body: &str| {
            request(
                addr,
                &format!(
                    "POST /characterize{query} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                ),
            )
        };

        let (status, _, body) = post("?kind=add&width=4", &bristol);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"kind\":\"add\""));

        // Wrong declared width: rejected cleanly, not a panic.
        let (status, _, body) = post("?kind=add&width=8", &bristol);
        assert_eq!(status, 400);
        assert!(body.contains("inputs"), "{body}");
        // Wrong kind for the output count.
        let (status, _, _) = post("?kind=mul&width=4", &bristol);
        assert_eq!(status, 400);
        // Garbage body.
        let (status, _, _) = post("?kind=add&width=4", "not bristol");
        assert_eq!(status, 400);

        // The worker survived all of that.
        let (status, _, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains_and_stops() {
        let server = start(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        });
        let addr = server.addr().unwrap();
        let (status, _, body) =
            request(addr, "POST /shutdown HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("draining"));
        server.join();
        // The listener is gone (either refused or reset once joined).
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200))
                .map(|mut s| {
                    let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                    let mut buf = String::new();
                    s.read_to_string(&mut buf)
                        .map(|_| buf.is_empty())
                        .unwrap_or(true)
                })
                .unwrap_or(true)
        );
    }

    #[test]
    fn rejects_bad_config() {
        let err = serve(ServeConfig {
            queue_depth: 0,
            ..ServeConfig::default()
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = serve(ServeConfig {
            default_target: "not-a-target".to_string(),
            ..ServeConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown default target"));
        let err = serve(ServeConfig {
            keepalive_requests: 0,
            ..ServeConfig::default()
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = serve(ServeConfig {
            estimate_only: true,
            ..ServeConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("estimate-only"), "{err}");
        let err = serve(ServeConfig {
            models: vec![PathBuf::from("/nonexistent/zoo.afpm")],
            ..ServeConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("loading model zoo"), "{err}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("afp-serve-test-{}.sock", std::process::id()));
        let server = start(ServeConfig {
            bind: Bind::Unix(path.clone()),
            threads: 1,
            ..ServeConfig::default()
        });
        assert!(server.addr().is_none());
        let mut stream = UnixStream::connect(&path).expect("unix connect");
        stream
            .write_all(b"GET /characterize?spec=mul4:array HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("\"name\":\"mul4u_arr\""), "{response}");
        server.shutdown();
        assert!(!path.exists(), "socket file should be removed on drain");
    }
}

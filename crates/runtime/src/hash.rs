//! Stable 128-bit content hashing for cache keys.
//!
//! The hash must be stable across processes and platforms (it names rows
//! in the on-disk cache tier), so it is a fixed FNV-1a pair rather than
//! `std::hash`, whose output is unspecified across releases.

/// A 128-bit content-addressed cache key.
// Safe total order (`Eq + Ord`, no float keys): the clippy.toml
// `partial_cmp` ban fires inside the derive expansion, not here.
#[allow(clippy::disallowed_methods)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key128 {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Key128 {
    /// Render as fixed-width hex (32 chars), the on-disk key format.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse the [`Key128::to_hex`] format.
    pub fn from_hex(s: &str) -> Option<Key128> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Key128 { hi, lo })
    }

    /// Shard selector for `shards`-way sharded structures.
    #[inline]
    pub fn shard(self, shards: usize) -> usize {
        (self.lo % shards.max(1) as u64) as usize
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// An incremental, platform-stable hasher producing a [`Key128`].
///
/// Two independent FNV-1a streams (the second offset-perturbed) give 128
/// bits of key material; collisions are negligible at library scale
/// (~2⁻⁶⁴ per pair on the netlist half alone).
#[derive(Clone, Debug)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> StableHasher {
        StableHasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Absorb one byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.a = (self.a ^ v as u64).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ v as u64).wrapping_mul(FNV_PRIME ^ 0x10_0001);
    }

    /// Absorb a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &v in bytes {
            self.write_u8(v);
        }
    }

    /// Absorb a `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize`.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by exact bit pattern.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a `bool`.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Absorb a string (length-prefixed, so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated key.
    pub fn finish(&self) -> Key128 {
        // A final avalanche so short inputs still spread over both words.
        let mut hi = self.a;
        let mut lo = self.b;
        for v in [&mut hi, &mut lo] {
            *v ^= *v >> 33;
            *v = v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            *v ^= *v >> 33;
        }
        Key128 { hi, lo }
    }
}

/// Types that can feed their content into a [`StableHasher`].
///
/// Implemented by the domain crates for their config structs so the
/// characterization cache key covers every field that affects results.
pub trait Fingerprint {
    /// Absorb the full semantic content of `self`.
    fn fingerprint(&self, hasher: &mut StableHasher);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(f: impl FnOnce(&mut StableHasher)) -> Key128 {
        let mut h = StableHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_sensitive() {
        let a = key_of(|h| h.write_u64(1));
        let b = key_of(|h| h.write_u64(1));
        let c = key_of(|h| h.write_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(key_of(|h| h.write_str("ab")), key_of(|h| h.write_str("a")));
    }

    #[test]
    fn hex_round_trip() {
        let k = key_of(|h| h.write_str("round trip"));
        let hex = k.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Key128::from_hex(&hex), Some(k));
        assert_eq!(Key128::from_hex("xyz"), None);
    }

    #[test]
    fn field_order_matters() {
        let a = key_of(|h| {
            h.write_u64(1);
            h.write_u64(2);
        });
        let b = key_of(|h| {
            h.write_u64(2);
            h.write_u64(1);
        });
        assert_ne!(a, b);
    }
}

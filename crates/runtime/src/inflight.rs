//! In-flight request coalescing.
//!
//! [`Inflight`] is a keyed single-flight map: when several threads ask
//! for the same [`Key128`] concurrently, exactly one of them (the
//! *leader*) runs the computation while the rest (*joiners*) block and
//! receive a clone of the leader's value. The slot is removed as soon as
//! the leader finishes, so the map only ever holds work that is actually
//! in flight — long-term memoization belongs to a cache layered behind
//! it, not here.
//!
//! The primitive is panic-safe: if a leader panics, its slot is marked
//! failed and every joiner wakes up and retries, one of them becoming
//! the new leader. A panicking computation therefore never strands
//! waiters or poisons the map.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crate::hash::Key128;

/// What a joiner observes in a slot it is waiting on.
#[derive(Debug)]
enum SlotState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader finished; joiners clone this value.
    Done(V),
    /// The leader panicked; joiners retry as prospective leaders.
    Failed,
}

/// One in-flight computation, shared between its leader and joiners.
#[derive(Debug)]
struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

impl<V> Slot<V> {
    fn new() -> Slot<V> {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }
}

/// Marks the slot failed and wakes joiners if the leader unwinds before
/// publishing a value.
struct LeaderGuard<'a, V> {
    owner: &'a Inflight<V>,
    key: Key128,
    slot: Arc<Slot<V>>,
    published: bool,
}

impl<V> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        let mut state = self
            .slot
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *state = SlotState::Failed;
        drop(state);
        self.slot.ready.notify_all();
        self.owner.remove(self.key);
    }
}

/// A keyed single-flight coalescing map (see the module docs).
#[derive(Debug, Default)]
pub struct Inflight<V> {
    slots: Mutex<HashMap<Key128, Arc<Slot<V>>>>,
}

impl<V> Inflight<V> {
    /// An empty map.
    pub fn new() -> Inflight<V> {
        Inflight {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Number of distinct computations currently in flight.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn remove(&self, key: Key128) {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&key);
    }
}

impl<V: Clone> Inflight<V> {
    /// Run (or join) the computation for `key`.
    ///
    /// Among concurrent callers with the same key, exactly one executes
    /// `compute`; every other caller blocks and receives a clone of that
    /// value. Returns `(value, joined)` where `joined` is true when this
    /// call waited on another caller's computation instead of running its
    /// own. `compute` runs *outside* the map lock, so distinct keys never
    /// serialize each other.
    pub fn run(&self, key: Key128, compute: impl FnOnce() -> V) -> (V, bool) {
        loop {
            let (slot, leader) = {
                let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
                match slots.entry(key) {
                    Entry::Occupied(e) => (Arc::clone(e.get()), false),
                    Entry::Vacant(e) => {
                        let slot = Arc::new(Slot::new());
                        e.insert(Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };

            if leader {
                let mut guard = LeaderGuard {
                    owner: self,
                    key,
                    slot: Arc::clone(&slot),
                    published: false,
                };
                let value = compute();
                {
                    let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
                    *state = SlotState::Done(value.clone());
                }
                guard.published = true;
                slot.ready.notify_all();
                self.remove(key);
                return (value, false);
            }

            let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                match &*state {
                    SlotState::Pending => {
                        state = slot
                            .ready
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    SlotState::Done(value) => return (value.clone(), true),
                    SlotState::Failed => break,
                }
            }
            // Leader panicked; loop around and contend for leadership.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn key(n: u64) -> Key128 {
        let mut h = crate::StableHasher::new();
        h.write_u64(n);
        h.finish()
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let inflight = Inflight::new();
        let computes = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        let joins: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        let (v, joined) = inflight.run(key(1), || {
                            computes.fetch_add(1, Ordering::Relaxed);
                            // Hold the slot long enough for peers to join.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            42u32
                        });
                        assert_eq!(v, 42);
                        joined
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        assert_eq!(joins.iter().filter(|&&j| !j).count(), 1, "one leader");
        assert_eq!(joins.iter().filter(|&&j| j).count(), 7, "seven joiners");
        assert!(inflight.is_empty(), "slot removed after completion");
    }

    #[test]
    fn distinct_keys_run_independently() {
        let inflight = Inflight::new();
        let out: Vec<(u64, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let inflight = &inflight;
                    scope.spawn(move || inflight.run(key(i), move || i * 10))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, (v, _)) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 10);
        }
    }

    #[test]
    fn sequential_runs_recompute() {
        // Inflight coalesces only *concurrent* work; it is not a cache.
        let inflight = Inflight::new();
        let computes = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, joined) = inflight.run(key(9), || {
                computes.fetch_add(1, Ordering::Relaxed);
                7u8
            });
            assert_eq!(v, 7);
            assert!(!joined);
        }
        assert_eq!(computes.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn panicking_leader_hands_off_to_a_joiner() {
        let inflight = Inflight::new();
        let attempts = AtomicUsize::new(0);
        let barrier = Barrier::new(2);
        let values: Vec<u32> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        let run = || {
                            inflight.run(key(5), || {
                                if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                                    std::thread::sleep(std::time::Duration::from_millis(30));
                                    panic!("leader dies");
                                }
                                11u32
                            })
                        };
                        // The first leader panics; whoever observes the
                        // failure retries and succeeds.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                            Ok((v, _)) => v,
                            Err(_) => run().0,
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(values.iter().all(|&v| v == 11));
        assert!(inflight.is_empty());
    }
}

//! `afp-runtime` — the parallel execution and caching substrate of the
//! ApproxFPGAs reproduction.
//!
//! The crate provides two building blocks used by every hot path of the
//! flow (library generation, characterization, error analysis, model
//! training, estimation):
//!
//! * [`Runtime`] — a work-stealing task pool over per-worker deques.
//!   [`Runtime::par_map`] distributes items dynamically (idle workers
//!   steal from busy ones), yet always returns results **in input order**,
//!   so the output of a parallel stage is bit-for-bit independent of the
//!   thread count. `threads = 1` executes inline on the caller thread.
//! * [`cache`] — a sharded, content-addressed memoization cache keyed by
//!   128-bit structural fingerprints ([`Key128`]), with an optional
//!   append-only CSV tier on disk so repeated runs of the same
//!   characterization skip recomputation across processes.
//!
//! Both report into shared [`Counters`] (tasks executed, steals, cache
//! hits/misses, synthesis calls, simulated bytes) that the flow surfaces
//! in its outcome and the `afp flow` CLI summary.
//!
//! # Example
//!
//! ```
//! use afp_runtime::Runtime;
//!
//! let squares = Runtime::install(4, |rt| {
//!     rt.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x)
//! });
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod counters;
mod hash;
mod inflight;
mod pool;

pub use cache::{CsvRecord, DiskTier, MemoCache};
pub use counters::{CounterSnapshot, Counters};
pub use hash::{Fingerprint, Key128, StableHasher};
pub use inflight::Inflight;
pub use pool::Runtime;

//! The work-stealing task pool.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

use crate::counters::{CounterSnapshot, Counters};

thread_local! {
    /// Set while a pool worker is running tasks: nested `par_map` calls
    /// from inside a task execute inline instead of spawning a second
    /// scope (rayon-style), which both avoids oversubscription and keeps
    /// block partitions independent of nesting depth.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A parallel runtime of `threads` workers with shared [`Counters`].
///
/// The pool is scoped: workers live only for the duration of one
/// [`Runtime::par_map`] call, so borrowed inputs need no `'static`
/// lifetime. Work distribution is dynamic — items start block-cyclically
/// distributed over per-worker deques and idle workers steal half a deque
/// at a time from the busiest peer — but results are always returned in
/// input order, making the output independent of the thread count.
#[derive(Clone, Debug)]
pub struct Runtime {
    threads: usize,
    counters: Arc<Counters>,
}

impl Runtime {
    /// A runtime with `threads` workers; `0` means
    /// `std::thread::available_parallelism()`.
    pub fn new(threads: usize) -> Runtime {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            threads
        };
        Runtime {
            threads,
            counters: Arc::new(Counters::default()),
        }
    }

    /// A single-threaded runtime (all tasks run inline, in order).
    pub fn serial() -> Runtime {
        Runtime::new(1)
    }

    /// Run `f` with a runtime of `threads` workers (`0` = all cores).
    pub fn install<R>(threads: usize, f: impl FnOnce(&Runtime) -> R) -> R {
        let rt = Runtime::new(threads);
        f(&rt)
    }

    /// Number of workers this runtime uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// True when called from inside one of this process's pool workers.
    pub fn in_worker() -> bool {
        IN_WORKER.with(|w| w.get())
    }

    /// Map `f` over `items` in parallel; `f` receives `(index, &item)`.
    ///
    /// Results are returned in input order regardless of thread count or
    /// scheduling. Panics in `f` propagate to the caller.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_init(items, || (), |(), i, t| f(i, t))
    }

    /// [`Runtime::par_map`] with per-worker scratch state.
    ///
    /// `init` runs once on each worker (and once for the inline path) to
    /// build a scratch value `S`; `f` receives `(&mut scratch, index,
    /// &item)`. The scratch lives on the worker's own stack — it is
    /// neither `Send` nor shared — which lets tasks reuse expensive
    /// buffers (e.g. an `afp-fpga` mapper) across every item the worker
    /// processes.
    ///
    /// `f` must stay a pure function of `(index, &item)` for outputs to be
    /// independent of the thread count; scratch is for *allocation* reuse,
    /// not for carrying state between items.
    pub fn par_map_init<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        Counters::add(&self.counters.tasks_executed, n as u64);
        if workers <= 1 || Runtime::in_worker() {
            let mut scratch = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut scratch, i, t))
                .collect();
        }

        // Block-cyclic initial distribution: worker w starts with items
        // w, w+workers, w+2*workers, ... so expensive neighbours (circuit
        // libraries are ordered by construction, i.e. by size) spread out.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let steals = &self.counters.steals;

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let f = &f;
                    let init = &init;
                    scope.spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        let mut scratch = init();
                        let mut local: Vec<(usize, R)> = Vec::with_capacity(n / workers + 1);
                        while let Some(i) = next_item(deques, w, steals) {
                            local.push((i, f(&mut scratch, i, &items[i])));
                        }
                        IN_WORKER.with(|flag| flag.set(false));
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        for (i, r) in collected.into_iter().flatten() {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every item produced a result"))
            .collect()
    }

    /// [`Runtime::par_map_init`] over an *iterator*, holding at most
    /// `window` items in flight at a time.
    ///
    /// Items are pulled from `items` in waves of up to `window`, each wave
    /// mapped with [`Runtime::par_map_init`], and the wave buffer dropped
    /// before the next is pulled — so peak residency is `O(window)` even
    /// for corpora streamed off disk. `f` receives the item's *global*
    /// index (its position in the full iteration), and results come back
    /// in that order: for a pure `f` the output is identical to buffering
    /// everything and calling `par_map_init` once, for any thread count,
    /// window size, or scheduling. Scratch state is rebuilt per wave, so
    /// — as with `par_map_init` — it must only carry allocations, never
    /// values.
    pub fn par_map_stream_init<T, R, S, I, F>(
        &self,
        items: impl IntoIterator<Item = T>,
        window: usize,
        init: I,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let window = window.max(1);
        let mut it = items.into_iter();
        let mut out = Vec::new();
        let mut wave: Vec<T> = Vec::with_capacity(window);
        loop {
            wave.clear();
            while wave.len() < window {
                match it.next() {
                    Some(item) => wave.push(item),
                    None => break,
                }
            }
            if wave.is_empty() {
                return out;
            }
            let base = out.len();
            out.extend(
                self.par_map_init(&wave, &init, |scratch, i, item| f(scratch, base + i, item)),
            );
        }
    }

    /// Parallel map over `items` followed by an **in-order** fold of the
    /// per-item results. Because the fold order is fixed, the reduction
    /// is deterministic even for non-associative (e.g. floating-point)
    /// operations.
    pub fn par_map_reduce<T, R, A, F, G>(&self, items: &[T], map: F, init: A, fold: G) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.par_map(items, map).into_iter().fold(init, fold)
    }
}

/// Pop from the own deque front, else steal from the fullest peer.
fn next_item(
    deques: &[Mutex<VecDeque<usize>>],
    worker: usize,
    steals: &AtomicU64,
) -> Option<usize> {
    if let Some(i) = deques[worker].lock().expect("deque poisoned").pop_front() {
        return Some(i);
    }
    // Find the victim with the most remaining work and take the back half
    // of its deque. One lock round is enough: if everyone is empty the
    // pool is draining and this worker can retire (tasks never spawn
    // subtasks — nested par_map runs inline).
    let victim = (0..deques.len())
        .filter(|&v| v != worker)
        .max_by_key(|&v| deques[v].lock().expect("deque poisoned").len())?;
    let mut vq = deques[victim].lock().expect("deque poisoned");
    let take = vq.len().div_ceil(2);
    if take == 0 {
        return None;
    }
    let split = vq.len() - take;
    let mut stolen: VecDeque<usize> = vq.split_off(split);
    drop(vq);
    Counters::add(steals, 1);
    let first = stolen.pop_front();
    if !stolen.is_empty() {
        deques[worker]
            .lock()
            .expect("deque poisoned")
            .append(&mut stolen);
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_ordered_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = Runtime::install(threads, |rt| rt.par_map(&items, |_, &x| x * 3 + 1));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn unbalanced_work_is_stolen() {
        // Front-loaded heavy items: static contiguous chunking would put
        // all heavy work on worker 0; stealing must spread it.
        let items: Vec<u64> = (0..64).map(|i| if i < 8 { 400_000 } else { 10 }).collect();
        let rt = Runtime::new(4);
        let spin = |n: u64| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            acc
        };
        let out = rt.par_map(&items, |_, &n| spin(n));
        assert_eq!(out.len(), 64);
        let snap = rt.snapshot();
        assert_eq!(snap.tasks_executed, 64);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let rt = Runtime::new(8);
        let empty: Vec<u32> = vec![];
        assert!(rt.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(rt.par_map(&[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn nested_par_map_runs_inline() {
        let rt = Runtime::new(4);
        let inner_parallel = AtomicUsize::new(0);
        let items: Vec<usize> = (0..16).collect();
        let out = rt.par_map(&items, |_, &x| {
            assert!(Runtime::in_worker());
            // A nested call must not deadlock and must still be ordered.
            let inner = rt.par_map(&[1usize, 2, 3], |_, &y| x * y);
            if inner == vec![x, 2 * x, 3 * x] {
                inner_parallel.fetch_add(1, Ordering::Relaxed);
            }
            x
        });
        assert_eq!(out, items);
        assert_eq!(inner_parallel.load(Ordering::Relaxed), 16);
        assert!(!Runtime::in_worker());
    }

    #[test]
    fn counters_count_inline_and_parallel_alike() {
        for threads in [1, 4] {
            let rt = Runtime::new(threads);
            rt.par_map(&[1, 2, 3, 4, 5], |_, &x: &i32| x);
            assert_eq!(rt.snapshot().tasks_executed, 5, "threads={threads}");
        }
    }

    #[test]
    fn par_map_init_reuses_scratch_and_stays_ordered() {
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 4, 8] {
            let inits = AtomicUsize::new(0);
            let got = Runtime::install(threads, |rt| {
                rt.par_map_init(
                    &items,
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        Vec::<u64>::new()
                    },
                    |scratch, _, &x| {
                        // Scratch is reusable worker-local storage.
                        scratch.clear();
                        scratch.push(x);
                        scratch[0] * 2
                    },
                )
            });
            assert_eq!(got, expect, "threads={threads}");
            // One scratch per worker, not per item.
            assert!(inits.load(Ordering::Relaxed) <= threads.max(1));
        }
    }

    #[test]
    fn streamed_map_matches_buffered_map_for_any_window() {
        let items: Vec<u64> = (0..500).collect();
        let expect = Runtime::new(1).par_map(&items, |i, &x| (i as u64) * 1000 + x * 7);
        for threads in [1, 3, 8] {
            for window in [1, 7, 64, 500, 10_000] {
                let rt = Runtime::new(threads);
                let got = rt.par_map_stream_init(
                    items.iter().copied(),
                    window,
                    || (),
                    |(), i, &x| (i as u64) * 1000 + x * 7,
                );
                assert_eq!(got, expect, "threads={threads} window={window}");
                // Waves never double-count: the task total is the item
                // total regardless of how the windows split it.
                assert_eq!(rt.snapshot().tasks_executed, items.len() as u64);
            }
        }
    }

    #[test]
    fn streamed_map_handles_empty_iterators() {
        let rt = Runtime::new(4);
        let got = rt.par_map_stream_init(std::iter::empty::<u32>(), 8, || (), |(), _, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn par_map_reduce_is_in_order() {
        let rt = Runtime::new(8);
        let items: Vec<usize> = (0..100).collect();
        let concat = rt.par_map_reduce(
            &items,
            |_, &x| x,
            Vec::new(),
            |mut acc: Vec<usize>, x| {
                acc.push(x);
                acc
            },
        );
        assert_eq!(concat, items);
    }

    #[test]
    fn install_zero_uses_available_parallelism() {
        let rt = Runtime::new(0);
        assert!(rt.threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panics_propagate() {
        let rt = Runtime::new(2);
        let items: Vec<u32> = (0..8).collect();
        rt.par_map(&items, |_, &x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }
}

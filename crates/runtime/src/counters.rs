//! Shared runtime counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters shared by a [`crate::Runtime`] and the caches attached
/// to a flow run. All increments are `Relaxed`: the values are telemetry,
/// never used for synchronization.
#[derive(Debug, Default)]
pub struct Counters {
    /// Tasks executed by `par_map` (inline or on a worker).
    pub tasks_executed: AtomicU64,
    /// Successful steals (an idle worker taking work from a peer's deque).
    pub steals: AtomicU64,
    /// Characterization cache hits.
    pub cache_hits: AtomicU64,
    /// Characterization cache misses (entries computed and inserted).
    pub cache_misses: AtomicU64,
    /// ASIC synthesis invocations actually performed.
    pub asic_synths: AtomicU64,
    /// FPGA synthesis invocations actually performed.
    pub fpga_synths: AtomicU64,
    /// Behavioural error analyses actually performed.
    pub error_analyses: AtomicU64,
    /// Bytes of operand data pushed through the bit-parallel simulator
    /// (16 bytes per evaluated input pair).
    pub bytes_simulated: AtomicU64,
    /// Cut-pair merges performed by the LUT mapper (post signature filter).
    pub cuts_merged: AtomicU64,
    /// Cut merges rejected O(1) by the leaf-signature popcount filter.
    pub cuts_sig_rejected: AtomicU64,
    /// Candidate cuts dropped by dominance pruning (duplicate or superset
    /// leaf sets).
    pub cuts_dominance_pruned: AtomicU64,
    /// Synthesis calls that reused a worker's warm mapper scratch state.
    pub mapper_reuses: AtomicU64,
    /// Simulation blocks that executed a pre-compiled gate tape instead
    /// of re-lowering the netlist.
    pub sim_tape_reuses: AtomicU64,
    /// Characterizations answered by copying the record of a structurally
    /// identical circuit instead of simulating again.
    pub structural_dedup_hits: AtomicU64,
    /// Library shards pulled through the streaming characterization path.
    pub shards_streamed: AtomicU64,
    /// High-water mark of circuits resident at once while streaming a
    /// library shard-at-a-time (a gauge updated via [`Counters::max`],
    /// not a monotonic count).
    pub peak_resident_circuits: AtomicU64,
    /// Non-finite model estimates quarantined by the flow (excluded from
    /// pseudo-pareto peeling instead of corrupting the ranking).
    pub estimates_quarantined: AtomicU64,
    /// Cache entries whose disk append failed (the run continued with the
    /// in-memory value, but persistence was lost).
    pub cache_write_errors: AtomicU64,
    /// Characterization requests answered by `afp serve` (coalesced
    /// joiners count too — every 200 response is one served request).
    pub requests_served: AtomicU64,
    /// Requests that joined an identical in-flight characterization
    /// instead of starting their own (the coalescing win).
    pub requests_coalesced: AtomicU64,
    /// Connections rejected with a queue-full backpressure response
    /// because the bounded serve queue was at capacity.
    pub queue_rejections: AtomicU64,
    /// High-water mark of distinct characterizations in flight at once in
    /// the serve coalescing map (a gauge updated via [`Counters::max`],
    /// not a monotonic count).
    pub inflight_peak: AtomicU64,
    /// Estimate requests answered from a persisted model zoo (no
    /// synthesis ran — the `afp serve` fast path).
    pub estimates_served: AtomicU64,
    /// Estimate responses reused from the in-memory estimate cache
    /// (the model never even ran).
    pub model_cache_hits: AtomicU64,
    /// Requests after the first answered on an already-open keep-alive
    /// connection (each one saved a TCP handshake).
    pub keepalive_reuses: AtomicU64,
}

impl Counters {
    /// Bump a counter by `n`.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise a high-water gauge to at least `n` (for peaks, not counts).
    #[inline]
    pub fn max(counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            asic_synths: self.asic_synths.load(Ordering::Relaxed),
            fpga_synths: self.fpga_synths.load(Ordering::Relaxed),
            error_analyses: self.error_analyses.load(Ordering::Relaxed),
            bytes_simulated: self.bytes_simulated.load(Ordering::Relaxed),
            cuts_merged: self.cuts_merged.load(Ordering::Relaxed),
            cuts_sig_rejected: self.cuts_sig_rejected.load(Ordering::Relaxed),
            cuts_dominance_pruned: self.cuts_dominance_pruned.load(Ordering::Relaxed),
            mapper_reuses: self.mapper_reuses.load(Ordering::Relaxed),
            sim_tape_reuses: self.sim_tape_reuses.load(Ordering::Relaxed),
            structural_dedup_hits: self.structural_dedup_hits.load(Ordering::Relaxed),
            shards_streamed: self.shards_streamed.load(Ordering::Relaxed),
            peak_resident_circuits: self.peak_resident_circuits.load(Ordering::Relaxed),
            estimates_quarantined: self.estimates_quarantined.load(Ordering::Relaxed),
            cache_write_errors: self.cache_write_errors.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            requests_coalesced: self.requests_coalesced.load(Ordering::Relaxed),
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            inflight_peak: self.inflight_peak.load(Ordering::Relaxed),
            estimates_served: self.estimates_served.load(Ordering::Relaxed),
            model_cache_hits: self.model_cache_hits.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value snapshot of [`Counters`], safe to store in results.
///
/// Note: `steals` depends on scheduling and is **not** deterministic
/// across runs or thread counts; everything else is.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Tasks executed by `par_map`.
    pub tasks_executed: u64,
    /// Successful steals.
    pub steals: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// ASIC synthesis calls performed.
    pub asic_synths: u64,
    /// FPGA synthesis calls performed.
    pub fpga_synths: u64,
    /// Error analyses performed.
    pub error_analyses: u64,
    /// Bytes of operand data simulated.
    pub bytes_simulated: u64,
    /// Cut-pair merges performed by the LUT mapper.
    pub cuts_merged: u64,
    /// Cut merges rejected by the signature filter.
    pub cuts_sig_rejected: u64,
    /// Candidate cuts dropped by dominance pruning.
    pub cuts_dominance_pruned: u64,
    /// Synthesis calls that reused warm mapper state.
    pub mapper_reuses: u64,
    /// Simulation blocks that reused a pre-compiled gate tape.
    pub sim_tape_reuses: u64,
    /// Characterizations served by structural dedup.
    pub structural_dedup_hits: u64,
    /// Library shards pulled through the streaming path.
    pub shards_streamed: u64,
    /// High-water mark of circuits resident while streaming (a gauge; in
    /// a [`CounterSnapshot::since`] delta it is only meaningful when the
    /// earlier snapshot predates any streaming).
    pub peak_resident_circuits: u64,
    /// Non-finite model estimates quarantined by the flow.
    pub estimates_quarantined: u64,
    /// Cache entries whose disk append failed (persistence lost).
    pub cache_write_errors: u64,
    /// Characterization requests answered by `afp serve`.
    pub requests_served: u64,
    /// Requests that joined an identical in-flight characterization.
    pub requests_coalesced: u64,
    /// Connections rejected by serve queue backpressure.
    pub queue_rejections: u64,
    /// High-water mark of distinct in-flight characterizations (a gauge;
    /// in a [`CounterSnapshot::since`] delta it is only meaningful when
    /// the earlier snapshot predates any serving).
    pub inflight_peak: u64,
    /// Estimate requests answered from a persisted model zoo.
    pub estimates_served: u64,
    /// Estimate responses reused from the in-memory estimate cache.
    pub model_cache_hits: u64,
    /// Keep-alive requests served beyond the first on a connection.
    pub keepalive_reuses: u64,
}

impl CounterSnapshot {
    /// The delta `self - earlier`, counter-wise (saturating).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            steals: self.steals.saturating_sub(earlier.steals),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            asic_synths: self.asic_synths.saturating_sub(earlier.asic_synths),
            fpga_synths: self.fpga_synths.saturating_sub(earlier.fpga_synths),
            error_analyses: self.error_analyses.saturating_sub(earlier.error_analyses),
            bytes_simulated: self.bytes_simulated.saturating_sub(earlier.bytes_simulated),
            cuts_merged: self.cuts_merged.saturating_sub(earlier.cuts_merged),
            cuts_sig_rejected: self
                .cuts_sig_rejected
                .saturating_sub(earlier.cuts_sig_rejected),
            cuts_dominance_pruned: self
                .cuts_dominance_pruned
                .saturating_sub(earlier.cuts_dominance_pruned),
            mapper_reuses: self.mapper_reuses.saturating_sub(earlier.mapper_reuses),
            sim_tape_reuses: self.sim_tape_reuses.saturating_sub(earlier.sim_tape_reuses),
            structural_dedup_hits: self
                .structural_dedup_hits
                .saturating_sub(earlier.structural_dedup_hits),
            shards_streamed: self.shards_streamed.saturating_sub(earlier.shards_streamed),
            peak_resident_circuits: self
                .peak_resident_circuits
                .saturating_sub(earlier.peak_resident_circuits),
            estimates_quarantined: self
                .estimates_quarantined
                .saturating_sub(earlier.estimates_quarantined),
            cache_write_errors: self
                .cache_write_errors
                .saturating_sub(earlier.cache_write_errors),
            requests_served: self.requests_served.saturating_sub(earlier.requests_served),
            requests_coalesced: self
                .requests_coalesced
                .saturating_sub(earlier.requests_coalesced),
            queue_rejections: self
                .queue_rejections
                .saturating_sub(earlier.queue_rejections),
            inflight_peak: self.inflight_peak.saturating_sub(earlier.inflight_peak),
            estimates_served: self
                .estimates_served
                .saturating_sub(earlier.estimates_served),
            model_cache_hits: self
                .model_cache_hits
                .saturating_sub(earlier.model_cache_hits),
            keepalive_reuses: self
                .keepalive_reuses
                .saturating_sub(earlier.keepalive_reuses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let c = Counters::default();
        Counters::add(&c.tasks_executed, 10);
        Counters::add(&c.cache_hits, 3);
        let a = c.snapshot();
        Counters::add(&c.tasks_executed, 5);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.tasks_executed, 5);
        assert_eq!(d.cache_hits, 0);
        assert_eq!(b.tasks_executed, 15);
    }

    #[test]
    fn max_is_a_high_water_gauge() {
        let c = Counters::default();
        Counters::max(&c.peak_resident_circuits, 40);
        Counters::max(&c.peak_resident_circuits, 12);
        Counters::max(&c.peak_resident_circuits, 64);
        assert_eq!(c.snapshot().peak_resident_circuits, 64);
    }
}

//! Content-addressed memoization: a sharded in-memory tier plus an
//! optional append-only CSV tier on disk.
//!
//! Values are stored under a [`Key128`] produced by fingerprinting the
//! *inputs* of a computation (netlist structure + configuration), so a
//! hit is valid regardless of when or where the entry was produced. The
//! disk format is deliberately plain CSV — one `key,field,field,...` row
//! per entry with a versioned header — so no serialization dependency is
//! needed and the file stays greppable.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::counters::Counters;
use crate::hash::Key128;

/// Number of independently locked shards in a [`MemoCache`]. Sixteen is
/// plenty: workers only contend on insert, and key→shard spreading makes
/// simultaneous same-shard inserts rare at pool sizes we run.
const SHARDS: usize = 16;

/// A sharded, thread-safe, in-memory memoization map from [`Key128`] to
/// cloneable values.
#[derive(Debug)]
pub struct MemoCache<V> {
    shards: Vec<Mutex<HashMap<Key128, V>>>,
}

impl<V: Clone> Default for MemoCache<V> {
    fn default() -> MemoCache<V> {
        MemoCache::new()
    }
}

impl<V: Clone> MemoCache<V> {
    /// An empty cache.
    pub fn new() -> MemoCache<V> {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Look up `key`, recording a hit/miss in `counters`.
    ///
    /// Locking is poison-proof: a worker that panicked while holding a
    /// shard lock leaves the map in a consistent state (every mutation is
    /// a single `HashMap` call), so readers recover the guard instead of
    /// cascading the panic.
    pub fn get(&self, key: Key128, counters: &Counters) -> Option<V> {
        let found = self.shards[key.shard(SHARDS)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned();
        match found {
            Some(_) => Counters::add(&counters.cache_hits, 1),
            None => Counters::add(&counters.cache_misses, 1),
        }
        found
    }

    /// Insert `value` under `key` (last write wins; entries are
    /// content-addressed, so concurrent writers insert identical values).
    pub fn insert(&self, key: Key128, value: V) {
        self.shards[key.shard(SHARDS)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, value);
    }

    /// Look up `key` silently (no counter traffic) — used when warming
    /// from disk.
    pub fn peek(&self, key: Key128) -> Option<V> {
        self.shards[key.shard(SHARDS)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned()
    }

    /// Number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A value that can round-trip through the CSV disk tier without serde.
pub trait CsvRecord: Sized {
    /// Bumped whenever the field layout changes; mismatching files are
    /// ignored rather than misparsed.
    const VERSION: u32;
    /// Column names written into the header (excluding the leading `key`).
    fn columns() -> Vec<&'static str>;
    /// Encode into one CSV row (must not contain commas or newlines).
    fn to_fields(&self) -> Vec<String>;
    /// Decode from the fields of one row.
    fn from_fields(fields: &[&str]) -> Option<Self>;
}

/// The append-only on-disk tier of the characterization cache.
///
/// On open, every well-formed row of the existing file is loaded; new
/// entries are appended (and flushed) as they are produced, so even an
/// interrupted run leaves a usable cache behind. Rows that fail to parse
/// — partial writes, hand edits, stale versions — are skipped silently.
#[derive(Debug)]
pub struct DiskTier<V> {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    loaded: Vec<(Key128, V)>,
    write_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
    warned: AtomicBool,
}

impl<V: CsvRecord> DiskTier<V> {
    /// Open (or create) the cache file at `dir/name`, loading any
    /// existing entries. Returns an I/O error only for unwritable
    /// locations; a corrupt existing file is truncated and restarted.
    pub fn open(dir: &Path, name: &str) -> std::io::Result<DiskTier<V>> {
        fs::create_dir_all(dir)?;
        let path = dir.join(name);
        let header = Self::header();
        let mut loaded = Vec::new();
        let mut valid_header = false;
        if let Ok(file) = File::open(&path) {
            let mut lines = BufReader::new(file).lines();
            if let Some(Ok(first)) = lines.next() {
                valid_header = first == header;
            }
            if valid_header {
                for line in lines.map_while(Result::ok) {
                    if let Some(entry) = Self::parse_row(&line) {
                        loaded.push(entry);
                    }
                }
            }
        }
        let mut options = OpenOptions::new();
        options.create(true).write(true);
        if valid_header {
            options.append(true);
        } else {
            // Missing, empty, or version-mismatched file: start fresh.
            options.truncate(true);
            loaded.clear();
        }
        let mut file = options.open(&path)?;
        if !valid_header {
            writeln!(file, "{header}")?;
            file.flush()?;
        }
        Ok(DiskTier {
            path,
            writer: Mutex::new(BufWriter::new(file)),
            loaded,
            write_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
            warned: AtomicBool::new(false),
        })
    }

    /// Read every well-formed entry of the CSV file at `path` without
    /// opening it for writing (used by the binary-store migration and
    /// `afp cache stats`). A missing file is an error; a corrupt or
    /// version-mismatched file yields an empty list, matching how
    /// [`DiskTier::open`] discards such files.
    pub fn read_entries(path: &Path) -> std::io::Result<Vec<(Key128, V)>> {
        let file = File::open(path)?;
        let mut lines = BufReader::new(file).lines();
        let mut entries = Vec::new();
        match lines.next() {
            Some(Ok(first)) if first == Self::header() => {}
            _ => return Ok(entries),
        }
        for line in lines.map_while(Result::ok) {
            if let Some(entry) = Self::parse_row(&line) {
                entries.push(entry);
            }
        }
        Ok(entries)
    }

    fn header() -> String {
        let mut cols = vec!["key".to_string(), format!("v{}", V::VERSION)];
        cols.extend(V::columns().into_iter().map(str::to_string));
        cols.join(",")
    }

    fn parse_row(line: &str) -> Option<(Key128, V)> {
        let mut parts = line.split(',');
        let key = Key128::from_hex(parts.next()?)?;
        let fields: Vec<&str> = parts.collect();
        Some((key, V::from_fields(&fields)?))
    }

    /// Entries read from the file at open time; drain them into the
    /// memory tier before the run starts.
    pub fn take_loaded(&mut self) -> Vec<(Key128, V)> {
        std::mem::take(&mut self.loaded)
    }

    /// Append one entry and flush, so a crash never loses completed work.
    ///
    /// A failed write must not fail a run whose value is already in
    /// memory, but it is no longer silent: each dropped entry is counted
    /// (see [`DiskTier::write_errors`]) and the first failure warns on
    /// stderr, so lost persistence surfaces in the run report instead of
    /// nowhere.
    pub fn append(&self, key: Key128, value: &V) {
        let row = {
            let mut fields = vec![key.to_hex()];
            fields.extend(value.to_fields());
            fields.join(",")
        };
        debug_assert!(
            !row.contains('\n'),
            "CsvRecord fields must not contain newlines"
        );
        let result = {
            let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            writeln!(writer, "{row}").and_then(|()| writer.flush())
        };
        if let Err(err) = result {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            *self
                .last_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(err.to_string());
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: failed to persist cache entry to {}: {err} \
                     (run continues; see cache.write_errors in the report)",
                    self.path.display()
                );
            }
        }
    }

    /// Number of entries whose disk append failed since open.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// The most recent append failure message, if any — the warn-once
    /// stderr path only shows the *first* error, so reports surface the
    /// last one here.
    pub fn last_write_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::StableHasher;

    fn key(n: u64) -> Key128 {
        let mut h = StableHasher::new();
        h.write_u64(n);
        h.finish()
    }

    #[test]
    fn memo_hit_miss_counting() {
        let cache = MemoCache::new();
        let counters = Counters::default();
        assert_eq!(cache.get(key(1), &counters), None::<u32>);
        cache.insert(key(1), 42u32);
        assert_eq!(cache.get(key(1), &counters), Some(42));
        let snap = counters.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Row {
        area: f64,
        tag: String,
    }

    impl CsvRecord for Row {
        const VERSION: u32 = 1;
        fn columns() -> Vec<&'static str> {
            vec!["area", "tag"]
        }
        fn to_fields(&self) -> Vec<String> {
            vec![format!("{:e}", self.area), self.tag.clone()]
        }
        fn from_fields(fields: &[&str]) -> Option<Row> {
            let [area, tag] = fields else { return None };
            Some(Row {
                area: area.parse().ok()?,
                tag: tag.to_string(),
            })
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("afp-runtime-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_tier_round_trip() {
        let dir = temp_dir("roundtrip");
        {
            let tier: DiskTier<Row> = DiskTier::open(&dir, "c.csv").unwrap();
            tier.append(
                key(7),
                &Row {
                    area: 12.5,
                    tag: "add8".into(),
                },
            );
            tier.append(
                key(8),
                &Row {
                    area: 3.25,
                    tag: "mult8".into(),
                },
            );
        }
        let mut tier: DiskTier<Row> = DiskTier::open(&dir, "c.csv").unwrap();
        let mut loaded = tier.take_loaded();
        loaded.sort_by_key(|(k, _)| *k);
        let mut expect = vec![
            (
                key(7),
                Row {
                    area: 12.5,
                    tag: "add8".into(),
                },
            ),
            (
                key(8),
                Row {
                    area: 3.25,
                    tag: "mult8".into(),
                },
            ),
        ];
        expect.sort_by_key(|(k, _)| *k);
        assert_eq!(loaded, expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_skips_corrupt_rows_and_stale_versions() {
        let dir = temp_dir("corrupt");
        {
            let tier: DiskTier<Row> = DiskTier::open(&dir, "c.csv").unwrap();
            tier.append(
                key(1),
                &Row {
                    area: 1.0,
                    tag: "good".into(),
                },
            );
        }
        // Inject a torn row.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("c.csv"))
                .unwrap();
            writeln!(f, "not-a-key,oops").unwrap();
        }
        let mut tier: DiskTier<Row> = DiskTier::open(&dir, "c.csv").unwrap();
        assert_eq!(tier.take_loaded().len(), 1);

        // A header from another version is discarded wholesale.
        fs::write(dir.join("c.csv"), "key,v999,area,tag\nabc,1.0,x\n").unwrap();
        let mut tier: DiskTier<Row> = DiskTier::open(&dir, "c.csv").unwrap();
        assert!(tier.take_loaded().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_entries_matches_open_without_writing() {
        let dir = temp_dir("readonly");
        {
            let tier: DiskTier<Row> = DiskTier::open(&dir, "c.csv").unwrap();
            tier.append(
                key(1),
                &Row {
                    area: 2.0,
                    tag: "a".into(),
                },
            );
            tier.append(
                key(2),
                &Row {
                    area: 4.0,
                    tag: "b".into(),
                },
            );
        }
        let path = dir.join("c.csv");
        let before = fs::read(&path).unwrap();
        let entries = DiskTier::<Row>::read_entries(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(fs::read(&path).unwrap(), before, "file untouched");

        // Version mismatch: empty, same policy as open().
        fs::write(&path, "key,v999,area,tag\n").unwrap();
        assert!(DiskTier::<Row>::read_entries(&path).unwrap().is_empty());
        // Missing file: a real error.
        assert!(DiskTier::<Row>::read_entries(&dir.join("nope.csv")).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_errors_are_counted_and_run_continues() {
        // /dev/full fails every flush with ENOSPC — the canonical way to
        // hit the error path deterministically. Skip quietly where it
        // does not exist.
        let Ok(file) = OpenOptions::new().write(true).open("/dev/full") else {
            return;
        };
        let tier = DiskTier::<Row> {
            path: PathBuf::from("/dev/full"),
            writer: Mutex::new(BufWriter::new(file)),
            loaded: Vec::new(),
            write_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
            warned: AtomicBool::new(false),
        };
        let row = Row {
            area: 1.0,
            tag: "x".into(),
        };
        assert_eq!(tier.last_write_error(), None);
        tier.append(key(1), &row);
        tier.append(key(2), &row);
        assert_eq!(tier.write_errors(), 2);
        let last = tier.last_write_error().expect("error message captured");
        assert!(!last.is_empty());
    }
}

use std::fmt;

use crate::gate::{Gate, GateKind};

/// Identifier of a net (the output of one gate) inside a [`Netlist`].
///
/// `NetId`s are dense indices; they are only meaningful for the netlist that
/// produced them.
// Safe total order (`Eq + Ord`, no float keys): the clippy.toml
// `partial_cmp` ban fires inside the derive expansion, not here.
#[allow(clippy::disallowed_methods)]
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(u32);

impl NetId {
    /// Construct from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> NetId {
        NetId(index as u32)
    }

    /// The dense index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Error produced by [`Netlist::validate`] and the checked constructors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate at `gate` references operand `operand` that is not an earlier
    /// node, violating topological order (or is out of bounds).
    ForwardReference {
        /// Index of the offending gate.
        gate: usize,
        /// The operand that points forward/out of bounds.
        operand: usize,
    },
    /// An `Input` gate appears after the first logic gate, or its ordinal is
    /// inconsistent with its position.
    MisplacedInput {
        /// Index of the offending gate.
        gate: usize,
    },
    /// A primary output references a net that does not exist.
    DanglingOutput {
        /// Position in the output list.
        position: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference { gate, operand } => {
                write!(f, "gate {gate} references non-earlier net {operand}")
            }
            NetlistError::MisplacedInput { gate } => {
                write!(f, "input gate {gate} is misplaced or misnumbered")
            }
            NetlistError::DanglingOutput { position } => {
                write!(f, "output {position} references a missing net")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A combinational gate-level netlist.
///
/// Nodes are stored in topological order: primary inputs first, then logic
/// gates, each of which may only reference earlier nodes. This invariant is
/// maintained by the builder methods ([`Netlist::and`], [`Netlist::xor`],
/// ...) and checked by [`Netlist::validate`].
///
/// # Example
///
/// ```
/// use afp_netlist::Netlist;
///
/// let mut n = Netlist::new("mux_demo");
/// let s = n.add_input();
/// let a = n.add_input();
/// let b = n.add_input();
/// let y = n.mux(s, a, b);
/// n.set_outputs(vec![y]);
/// assert_eq!(n.eval_bits(&[false, true, false]), vec![true]); // s=0 -> a
/// assert_eq!(n.eval_bits(&[true, true, false]), vec![false]); // s=1 -> b
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    num_inputs: usize,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Create an empty netlist with the given instance name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            num_inputs: 0,
            outputs: Vec::new(),
        }
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the netlist.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Primary output nets, LSB-first by convention for arithmetic circuits.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// All nodes in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total node count (inputs + constants + logic).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the netlist has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of logic gates (excludes inputs and constants).
    pub fn num_logic_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_logic()).count()
    }

    /// A 64-bit hash of the netlist *structure*: gate kinds, operand
    /// wiring and the output list. The instance name is deliberately
    /// excluded, so renamed copies of the same circuit hash identically.
    ///
    /// The hash is a fixed FNV-1a (not `std::hash`), stable across
    /// processes and releases — it keys the on-disk characterization
    /// cache.
    pub fn structural_hash(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let absorb = |v: u64, h: &mut u64| {
            for byte in v.to_le_bytes() {
                *h ^= byte as u64;
                *h = h.wrapping_mul(PRIME);
            }
        };
        absorb(self.num_inputs as u64, &mut h);
        for gate in &self.gates {
            // Kind discriminant, then payload: input ordinal, constant
            // value, or operand indices.
            absorb(gate.kind() as u64, &mut h);
            match *gate {
                Gate::Input(ord) => absorb(ord as u64, &mut h),
                Gate::Const(v) => absorb(v as u64, &mut h),
                _ => {
                    for op in gate.operands() {
                        absorb(op.index() as u64, &mut h);
                    }
                }
            }
        }
        absorb(self.outputs.len() as u64, &mut h);
        for o in &self.outputs {
            absorb(o.index() as u64, &mut h);
        }
        h
    }

    /// The gate driving `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn gate(&self, id: NetId) -> Gate {
        self.gates[id.index()]
    }

    /// The net of the `i`-th primary input.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs()`.
    pub fn input(&self, i: usize) -> NetId {
        assert!(i < self.num_inputs, "input ordinal out of range");
        NetId::from_index(i)
    }

    /// Append a primary input and return its net.
    ///
    /// # Panics
    ///
    /// Panics if logic gates have already been added (inputs must be declared
    /// first so the topological prefix invariant holds).
    pub fn add_input(&mut self) -> NetId {
        assert_eq!(
            self.gates.len(),
            self.num_inputs,
            "all primary inputs must be declared before any logic gate"
        );
        let id = NetId::from_index(self.gates.len());
        self.gates.push(Gate::Input(self.num_inputs as u16));
        self.num_inputs += 1;
        id
    }

    /// Append `n` primary inputs, returning their nets in order.
    pub fn add_inputs(&mut self, n: usize) -> Vec<NetId> {
        (0..n).map(|_| self.add_input()).collect()
    }

    fn push(&mut self, gate: Gate) -> NetId {
        debug_assert!(gate.operands().all(|op| op.index() < self.gates.len()));
        let id = NetId::from_index(self.gates.len());
        self.gates.push(gate);
        id
    }

    /// Append a constant node.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.push(Gate::Const(value))
    }

    /// Append a buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(Gate::Buf(a))
    }

    /// Append an inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(Gate::Not(a))
    }

    /// Append a 2-input AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(Gate::And(a, b))
    }

    /// Append a 2-input OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(Gate::Or(a, b))
    }

    /// Append a 2-input XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(Gate::Xor(a, b))
    }

    /// Append a 2-input NAND.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(Gate::Nand(a, b))
    }

    /// Append a 2-input NOR.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(Gate::Nor(a, b))
    }

    /// Append a 2-input XNOR.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(Gate::Xnor(a, b))
    }

    /// Append a 2:1 mux computing `s ? b : a`.
    pub fn mux(&mut self, s: NetId, a: NetId, b: NetId) -> NetId {
        self.push(Gate::Mux(s, a, b))
    }

    /// Append a 3-input majority gate.
    pub fn maj(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(Gate::Maj(a, b, c))
    }

    /// Append an arbitrary gate.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if an operand references a non-earlier node.
    pub fn add_gate(&mut self, gate: Gate) -> NetId {
        if let Gate::Input(_) = gate {
            return self.add_input();
        }
        self.push(gate)
    }

    /// Declare the primary outputs (LSB-first for arithmetic buses).
    pub fn set_outputs(&mut self, outputs: Vec<NetId>) {
        self.outputs = outputs;
    }

    /// Replace the gate driving `id`.
    ///
    /// The caller is responsible for keeping the netlist acyclic: the new
    /// gate's operands must all be earlier than `id`. This is the primitive
    /// the mutation-based approximation operators use.
    ///
    /// # Panics
    ///
    /// Panics if `id` refers to a primary input, or (in debug builds) if the
    /// replacement would create a forward reference.
    pub fn replace_gate(&mut self, id: NetId, gate: Gate) {
        assert!(
            !matches!(self.gates[id.index()], Gate::Input(_)),
            "cannot replace a primary input"
        );
        debug_assert!(gate.operands().all(|op| op.index() < id.index()));
        self.gates[id.index()] = gate;
    }

    /// Check all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: forward references, misplaced or
    /// misnumbered inputs, or dangling outputs.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, gate) in self.gates.iter().enumerate() {
            match gate {
                Gate::Input(ord) => {
                    if i >= self.num_inputs || *ord as usize != i {
                        return Err(NetlistError::MisplacedInput { gate: i });
                    }
                }
                g => {
                    for op in g.operands() {
                        if op.index() >= i {
                            return Err(NetlistError::ForwardReference {
                                gate: i,
                                operand: op.index(),
                            });
                        }
                    }
                }
            }
        }
        for (p, out) in self.outputs.iter().enumerate() {
            if out.index() >= self.gates.len() {
                return Err(NetlistError::DanglingOutput { position: p });
            }
        }
        Ok(())
    }

    /// Histogram of gate kinds.
    pub fn kind_histogram(&self) -> std::collections::BTreeMap<GateKind, usize> {
        let mut h = std::collections::BTreeMap::new();
        for g in &self.gates {
            *h.entry(g.kind()).or_insert(0) += 1;
        }
        h
    }

    /// Evaluate the netlist on a single boolean input assignment.
    ///
    /// Convenience wrapper over [`crate::Simulator`] for tests and examples;
    /// for bulk evaluation construct a `Simulator` once and reuse it.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn eval_bits(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let mut sim = crate::Simulator::new(self);
        let out = sim.run(&words);
        out.iter().map(|&w| w & 1 == 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let axb = n.xor(a, b);
        let s = n.xor(axb, c);
        let co = n.maj(a, b, c);
        n.set_outputs(vec![s, co]);
        n
    }

    #[test]
    fn full_adder_truth_table() {
        let n = full_adder();
        for v in 0u32..8 {
            let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            let out = n.eval_bits(&bits);
            let expected = bits.iter().filter(|&&b| b).count() as u32;
            let got = out[0] as u32 | ((out[1] as u32) << 1);
            assert_eq!(got, expected, "input {v:03b}");
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(full_adder().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let mut n = full_adder();
        // Manually corrupt: make gate 3 reference gate 5.
        n.gates[3] = Gate::And(NetId::from_index(5), NetId::from_index(0));
        assert!(matches!(
            n.validate(),
            Err(NetlistError::ForwardReference { gate: 3, .. })
        ));
    }

    #[test]
    fn validate_rejects_dangling_output() {
        let mut n = full_adder();
        n.set_outputs(vec![NetId::from_index(999)]);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::DanglingOutput { position: 0 })
        ));
    }

    #[test]
    #[should_panic(expected = "before any logic gate")]
    fn inputs_after_logic_panic() {
        let mut n = Netlist::new("bad");
        let a = n.add_input();
        let _ = n.not(a);
        let _ = n.add_input();
    }

    #[test]
    fn replace_gate_rewrites_function() {
        let mut n = Netlist::new("r");
        let a = n.add_input();
        let b = n.add_input();
        let y = n.and(a, b);
        n.set_outputs(vec![y]);
        assert_eq!(n.eval_bits(&[true, false]), vec![false]);
        n.replace_gate(y, Gate::Or(a, b));
        assert_eq!(n.eval_bits(&[true, false]), vec![true]);
    }

    #[test]
    fn histogram_counts_kinds() {
        let n = full_adder();
        let h = n.kind_histogram();
        assert_eq!(h[&GateKind::Input], 3);
        assert_eq!(h[&GateKind::Xor], 2);
        assert_eq!(h[&GateKind::Maj], 1);
    }

    #[test]
    fn num_logic_gates_excludes_inputs_and_consts() {
        let mut n = Netlist::new("c");
        let a = n.add_input();
        let k = n.constant(true);
        let y = n.and(a, k);
        n.set_outputs(vec![y]);
        assert_eq!(n.num_logic_gates(), 1);
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn structural_hash_ignores_name_but_not_structure() {
        let mut a = full_adder();
        let mut b = full_adder();
        b.set_name("renamed");
        assert_eq!(a.structural_hash(), b.structural_hash());

        // Different wiring → different hash.
        let y = b.outputs()[0];
        let (i0, i1) = (b.input(0), b.input(1));
        b.replace_gate(y, Gate::Or(i0, i1));
        assert_ne!(a.structural_hash(), b.structural_hash());

        // Different output order → different hash.
        let outs: Vec<NetId> = a.outputs().iter().rev().copied().collect();
        a.set_outputs(outs);
        assert_ne!(a.structural_hash(), full_adder().structural_hash());
    }
}

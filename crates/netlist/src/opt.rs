//! Netlist clean-up passes: constant folding, algebraic identities,
//! structural hashing (CSE) and dead-logic sweeping.
//!
//! Approximation operators (truncation, gate mutation, ...) leave behind
//! constants, duplicated logic and unreferenced cones; [`simplify`] is run
//! after every transform so circuit libraries compare on minimized
//! structure, the way synthesis tools would see them.

use std::collections::HashMap;

use crate::gate::Gate;
use crate::netlist::{NetId, Netlist};

/// Simplify a netlist: fold constants, apply algebraic identities, merge
/// structurally identical gates and drop logic not in the output cone.
///
/// Primary inputs are always preserved (position and count), so the
/// simplified netlist remains behaviourally interchangeable with the
/// original.
///
/// # Example
///
/// ```
/// use afp_netlist::{Netlist, opt};
///
/// let mut n = Netlist::new("redundant");
/// let a = n.add_input();
/// let t = n.constant(true);
/// let x = n.and(a, t);      // == a
/// let y = n.xor(x, x);      // == 0
/// let z = n.or(a, y);       // == a
/// n.set_outputs(vec![z]);
/// let s = opt::simplify(&n);
/// assert_eq!(s.num_logic_gates(), 0); // collapses to a wire
/// ```
pub fn simplify(netlist: &Netlist) -> Netlist {
    let mut out = Netlist::new(netlist.name().to_string());
    out.add_inputs(netlist.num_inputs());

    // old NetId -> new NetId
    let mut remap: Vec<NetId> = Vec::with_capacity(netlist.len());
    // new NetId -> constant value, if statically known
    let mut const_of: Vec<Option<bool>> = (0..netlist.num_inputs()).map(|_| None).collect();
    // structural hash over canonicalized gates in the new netlist
    let mut seen: HashMap<Gate, NetId> = HashMap::new();
    // shared constant nodes
    let mut const_nets: [Option<NetId>; 2] = [None, None];

    let mut mk_const = |out: &mut Netlist, const_of: &mut Vec<Option<bool>>, v: bool| -> NetId {
        if let Some(id) = const_nets[v as usize] {
            return id;
        }
        let id = out.constant(v);
        const_of.push(Some(v));
        const_nets[v as usize] = Some(id);
        id
    };

    for gate in netlist.gates() {
        let new_id = match *gate {
            Gate::Input(ord) => NetId::from_index(ord as usize),
            Gate::Const(v) => mk_const(&mut out, &mut const_of, v),
            g => {
                let g = g.map_operands(|op| remap[op.index()]);
                let cv = |id: NetId| const_of[id.index()];
                // Iterate to a fixpoint: a rewrite (e.g. Maj with one
                // constant operand -> Or) may itself be foldable.
                let mut g = g;
                let folded = loop {
                    match fold(g, cv) {
                        Folded::Keep(g2) if g2 != g => g = g2,
                        other => break other,
                    }
                };
                match folded {
                    Folded::Const(v) => mk_const(&mut out, &mut const_of, v),
                    Folded::Wire(id) => id,
                    Folded::Keep(g) => {
                        let canon = g.canonical();
                        if let Some(&id) = seen.get(&canon) {
                            id
                        } else {
                            let id = out.add_gate(canon);
                            const_of.push(None);
                            seen.insert(canon, id);
                            id
                        }
                    }
                }
            }
        };
        remap.push(new_id);
    }

    out.set_outputs(netlist.outputs().iter().map(|o| remap[o.index()]).collect());
    sweep(&out)
}

/// Result of folding one gate.
enum Folded {
    /// Gate reduced to a constant.
    Const(bool),
    /// Gate reduced to an existing net.
    Wire(NetId),
    /// Gate kept (possibly rewritten).
    Keep(Gate),
}

/// Apply constant folding and algebraic identities to a single gate whose
/// operands are already remapped. `cv` reports the constant value of a net
/// when statically known.
fn fold(gate: Gate, cv: impl Fn(NetId) -> Option<bool>) -> Folded {
    use Folded::*;
    match gate {
        Gate::Buf(a) => Wire(a),
        Gate::Not(a) => match cv(a) {
            Some(v) => Const(!v),
            None => Keep(Gate::Not(a)),
        },
        Gate::And(a, b) => match (cv(a), cv(b)) {
            (Some(x), Some(y)) => Const(x && y),
            (Some(false), _) | (_, Some(false)) => Const(false),
            (Some(true), _) => Wire(b),
            (_, Some(true)) => Wire(a),
            _ if a == b => Wire(a),
            _ => Keep(Gate::And(a, b)),
        },
        Gate::Or(a, b) => match (cv(a), cv(b)) {
            (Some(x), Some(y)) => Const(x || y),
            (Some(true), _) | (_, Some(true)) => Const(true),
            (Some(false), _) => Wire(b),
            (_, Some(false)) => Wire(a),
            _ if a == b => Wire(a),
            _ => Keep(Gate::Or(a, b)),
        },
        Gate::Xor(a, b) => match (cv(a), cv(b)) {
            (Some(x), Some(y)) => Const(x ^ y),
            (Some(false), _) => Wire(b),
            (_, Some(false)) => Wire(a),
            (Some(true), _) => Keep(Gate::Not(b)),
            (_, Some(true)) => Keep(Gate::Not(a)),
            _ if a == b => Const(false),
            _ => Keep(Gate::Xor(a, b)),
        },
        Gate::Nand(a, b) => match (cv(a), cv(b)) {
            (Some(x), Some(y)) => Const(!(x && y)),
            (Some(false), _) | (_, Some(false)) => Const(true),
            (Some(true), _) => Keep(Gate::Not(b)),
            (_, Some(true)) => Keep(Gate::Not(a)),
            _ if a == b => Keep(Gate::Not(a)),
            _ => Keep(Gate::Nand(a, b)),
        },
        Gate::Nor(a, b) => match (cv(a), cv(b)) {
            (Some(x), Some(y)) => Const(!(x || y)),
            (Some(true), _) | (_, Some(true)) => Const(false),
            (Some(false), _) => Keep(Gate::Not(b)),
            (_, Some(false)) => Keep(Gate::Not(a)),
            _ if a == b => Keep(Gate::Not(a)),
            _ => Keep(Gate::Nor(a, b)),
        },
        Gate::Xnor(a, b) => match (cv(a), cv(b)) {
            (Some(x), Some(y)) => Const(x == y),
            (Some(true), _) => Wire(b),
            (_, Some(true)) => Wire(a),
            (Some(false), _) => Keep(Gate::Not(b)),
            (_, Some(false)) => Keep(Gate::Not(a)),
            _ if a == b => Const(true),
            _ => Keep(Gate::Xnor(a, b)),
        },
        Gate::Mux(s, a, b) => match cv(s) {
            Some(false) => Wire(a),
            Some(true) => Wire(b),
            None if a == b => Wire(a),
            None => match (cv(a), cv(b)) {
                (Some(false), Some(true)) => Wire(s),
                (Some(true), Some(false)) => Keep(Gate::Not(s)),
                // s ? b : 0 == s & b
                (Some(false), None) => Keep(Gate::And(s, b)),
                // s ? 1 : a == s | a
                (None, Some(true)) => Keep(Gate::Or(a, s)),
                // The remaining single-constant cases need an inverter
                // (s ? b : 1 == !s | b, s ? 0 : a == !s & a); folding them
                // would require inserting a node, so keep the mux.
                _ => Keep(Gate::Mux(s, a, b)),
            },
        },
        Gate::Maj(a, b, c) => {
            let (ca, cb, cc) = (cv(a), cv(b), cv(c));
            match (ca, cb, cc) {
                (Some(x), Some(y), Some(z)) => Const((x as u8 + y as u8 + z as u8) >= 2),
                // One constant: Maj(a,b,1)=a|b, Maj(a,b,0)=a&b.
                (Some(true), _, _) => Keep(Gate::Or(b, c)),
                (_, Some(true), _) => Keep(Gate::Or(a, c)),
                (_, _, Some(true)) => Keep(Gate::Or(a, b)),
                (Some(false), _, _) => Keep(Gate::And(b, c)),
                (_, Some(false), _) => Keep(Gate::And(a, c)),
                (_, _, Some(false)) => Keep(Gate::And(a, b)),
                _ if a == b => Wire(a),
                _ if a == c => Wire(a),
                _ if b == c => Wire(b),
                _ => Keep(Gate::Maj(a, b, c)),
            }
        }
        Gate::Input(_) | Gate::Const(_) => unreachable!("handled by caller"),
    }
}

/// Remove logic outside the transitive fanin cone of the outputs.
///
/// Primary inputs are always kept so the interface is preserved.
pub fn sweep(netlist: &Netlist) -> Netlist {
    let mask = crate::analyze::cone(netlist, netlist.outputs());
    let mut out = Netlist::new(netlist.name().to_string());
    out.add_inputs(netlist.num_inputs());
    let mut remap: Vec<Option<NetId>> = vec![None; netlist.len()];
    for (i, slot) in remap.iter_mut().enumerate().take(netlist.num_inputs()) {
        *slot = Some(NetId::from_index(i));
    }
    for (i, gate) in netlist.gates().iter().enumerate() {
        if gate.is_logic() && mask[i] {
            let g = gate.map_operands(|op| remap[op.index()].expect("cone is closed"));
            remap[i] = Some(out.add_gate(g));
        } else if matches!(gate, Gate::Const(_)) && mask[i] {
            remap[i] = Some(out.add_gate(*gate));
        }
    }
    out.set_outputs(
        netlist
            .outputs()
            .iter()
            .map(|o| remap[o.index()].expect("outputs are in their own cone"))
            .collect(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    /// Exhaustively compare two netlists with identical interfaces.
    fn equivalent(a: &Netlist, b: &Netlist) -> bool {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.num_outputs(), b.num_outputs());
        let n = a.num_inputs();
        assert!(n <= 16, "exhaustive check limited to 16 inputs");
        for v in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            if a.eval_bits(&bits) != b.eval_bits(&bits) {
                return false;
            }
        }
        true
    }

    #[test]
    fn folds_constants_through() {
        let mut n = Netlist::new("k");
        let a = n.add_input();
        let f = n.constant(false);
        let t = n.not(f);
        let x = n.and(a, t); // a & 1 == a
        let y = n.nor(x, f); // !(a | 0) == !a
        n.set_outputs(vec![y]);
        let s = simplify(&n);
        assert!(equivalent(&n, &s));
        assert_eq!(s.num_logic_gates(), 1); // just the inverter
    }

    #[test]
    fn merges_structural_duplicates() {
        let mut n = Netlist::new("d");
        let a = n.add_input();
        let b = n.add_input();
        let x1 = n.and(a, b);
        let x2 = n.and(b, a); // same function, swapped operands
        let y = n.xor(x1, x2); // == 0
        n.set_outputs(vec![y]);
        let s = simplify(&n);
        assert!(equivalent(&n, &s));
        assert_eq!(s.num_logic_gates(), 0);
    }

    #[test]
    fn sweeps_dead_logic() {
        let mut n = Netlist::new("dead");
        let a = n.add_input();
        let b = n.add_input();
        let live = n.or(a, b);
        let _dead = n.xor(a, b);
        n.set_outputs(vec![live]);
        let s = simplify(&n);
        assert_eq!(s.num_logic_gates(), 1);
        assert!(equivalent(&n, &s));
    }

    #[test]
    fn maj_with_constant_becomes_and_or() {
        let mut n = Netlist::new("maj");
        let a = n.add_input();
        let b = n.add_input();
        let t = n.constant(true);
        let f = n.constant(false);
        let x = n.maj(a, b, t); // a | b
        let y = n.maj(a, b, f); // a & b
        n.set_outputs(vec![x, y]);
        let s = simplify(&n);
        assert!(equivalent(&n, &s));
        let h = s.kind_histogram();
        assert_eq!(h.get(&crate::GateKind::Maj), None);
    }

    #[test]
    fn preserves_interface_even_when_inputs_unused() {
        let mut n = Netlist::new("iface");
        let _a = n.add_input();
        let _b = n.add_input();
        let k = n.constant(true);
        n.set_outputs(vec![k]);
        let s = simplify(&n);
        assert_eq!(s.num_inputs(), 2);
        assert_eq!(s.eval_bits(&[false, false]), vec![true]);
    }

    #[test]
    fn simplify_is_idempotent_on_random_circuits() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..20 {
            let mut n = Netlist::new("rand");
            let inputs = n.add_inputs(4);
            let mut nets = inputs.clone();
            for _ in 0..30 {
                let a = nets[rng.gen_range(0..nets.len())];
                let b = nets[rng.gen_range(0..nets.len())];
                let c = nets[rng.gen_range(0..nets.len())];
                let g = match rng.gen_range(0..8) {
                    0 => n.and(a, b),
                    1 => n.or(a, b),
                    2 => n.xor(a, b),
                    3 => n.nand(a, b),
                    4 => n.nor(a, b),
                    5 => n.not(a),
                    6 => n.mux(a, b, c),
                    _ => n.maj(a, b, c),
                };
                nets.push(g);
            }
            let outs = (0..3).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
            n.set_outputs(outs);
            let s1 = simplify(&n);
            let s2 = simplify(&s1);
            assert!(equivalent(&n, &s1));
            assert_eq!(s1.num_logic_gates(), s2.num_logic_gates());
        }
    }

    proptest::proptest! {
        #[test]
        fn simplified_netlists_stay_equivalent(seed in 0u64..500) {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut n = Netlist::new("prop");
            let inputs = n.add_inputs(5);
            let mut nets = inputs.clone();
            let k = n.constant(rng.gen());
            nets.push(k);
            for _ in 0..rng.gen_range(5..40) {
                let a = nets[rng.gen_range(0..nets.len())];
                let b = nets[rng.gen_range(0..nets.len())];
                let c = nets[rng.gen_range(0..nets.len())];
                let g = match rng.gen_range(0..10) {
                    0 => n.and(a, b),
                    1 => n.or(a, b),
                    2 => n.xor(a, b),
                    3 => n.nand(a, b),
                    4 => n.nor(a, b),
                    5 => n.xnor(a, b),
                    6 => n.not(a),
                    7 => n.buf(a),
                    8 => n.mux(a, b, c),
                    _ => n.maj(a, b, c),
                };
                nets.push(g);
            }
            let outs = (0..2).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
            n.set_outputs(outs);
            let s = simplify(&n);
            s.validate().unwrap();
            proptest::prop_assert!(equivalent(&n, &s));
            proptest::prop_assert!(s.num_logic_gates() <= n.num_logic_gates());
        }
    }
}

//! Structural export: Verilog netlists and Graphviz DOT graphs.
//!
//! The Verilog writer emits the same gate-level structural style the
//! EvoApprox library distributes, so circuits from this reproduction can be
//! dropped into a real FPGA/ASIC tool-flow unchanged.

use std::fmt::Write as _;

use crate::gate::Gate;
use crate::netlist::{NetId, Netlist};

/// Render a netlist as a structural Verilog module.
///
/// Inputs are emitted as a flat `pi<N>` port list and outputs as `po<N>`;
/// word-level wrappers (buses) are the concern of the circuit generators.
///
/// # Example
///
/// ```
/// use afp_netlist::{Netlist, export};
///
/// let mut n = Netlist::new("tiny");
/// let a = n.add_input();
/// let b = n.add_input();
/// let y = n.nand(a, b);
/// n.set_outputs(vec![y]);
/// let v = export::to_verilog(&n);
/// assert!(v.contains("module tiny"));
/// assert!(v.contains("~("));
/// ```
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut s = String::new();
    let name = sanitize(netlist.name());
    let _ = write!(s, "module {name}(");
    let mut ports: Vec<String> = (0..netlist.num_inputs())
        .map(|i| format!("pi{i}"))
        .collect();
    ports.extend((0..netlist.num_outputs()).map(|i| format!("po{i}")));
    let _ = writeln!(s, "{});", ports.join(", "));
    for i in 0..netlist.num_inputs() {
        let _ = writeln!(s, "  input pi{i};");
    }
    for i in 0..netlist.num_outputs() {
        let _ = writeln!(s, "  output po{i};");
    }
    for (i, gate) in netlist.gates().iter().enumerate() {
        if gate.is_logic() || matches!(gate, Gate::Const(_)) {
            let _ = writeln!(s, "  wire n{i};");
        }
    }
    let net = |id: NetId| -> String {
        match netlist.gate(id) {
            Gate::Input(ord) => format!("pi{ord}"),
            _ => format!("n{}", id.index()),
        }
    };
    for (i, gate) in netlist.gates().iter().enumerate() {
        let rhs = match *gate {
            Gate::Input(_) => continue,
            Gate::Const(v) => format!("1'b{}", v as u8),
            Gate::Buf(a) => net(a),
            Gate::Not(a) => format!("~{}", net(a)),
            Gate::And(a, b) => format!("{} & {}", net(a), net(b)),
            Gate::Or(a, b) => format!("{} | {}", net(a), net(b)),
            Gate::Xor(a, b) => format!("{} ^ {}", net(a), net(b)),
            Gate::Nand(a, b) => format!("~({} & {})", net(a), net(b)),
            Gate::Nor(a, b) => format!("~({} | {})", net(a), net(b)),
            Gate::Xnor(a, b) => format!("~({} ^ {})", net(a), net(b)),
            Gate::Mux(s0, a, b) => {
                format!("{} ? {} : {}", net(s0), net(b), net(a))
            }
            Gate::Maj(a, b, c) => format!(
                "({0} & {1}) | ({0} & {2}) | ({1} & {2})",
                net(a),
                net(b),
                net(c)
            ),
        };
        let _ = writeln!(s, "  assign n{i} = {rhs};");
    }
    for (p, out) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(s, "  assign po{p} = {};", net(*out));
    }
    let _ = writeln!(s, "endmodule");
    s
}

/// Render a netlist as a Graphviz DOT digraph (inputs as boxes, outputs
/// double-circled).
pub fn to_dot(netlist: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", sanitize(netlist.name()));
    let _ = writeln!(s, "  rankdir=LR;");
    let is_output: std::collections::HashSet<usize> =
        netlist.outputs().iter().map(|o| o.index()).collect();
    for (i, gate) in netlist.gates().iter().enumerate() {
        let (label, shape) = match gate {
            Gate::Input(ord) => (format!("pi{ord}"), "box"),
            Gate::Const(v) => (format!("{}", *v as u8), "box"),
            g => (
                g.kind().mnemonic().to_string(),
                if is_output.contains(&i) {
                    "doublecircle"
                } else {
                    "ellipse"
                },
            ),
        };
        let _ = writeln!(s, "  n{i} [label=\"{label}\", shape={shape}];");
        for op in gate.operands() {
            let _ = writeln!(s, "  n{} -> n{i};", op.index());
        }
    }
    let _ = writeln!(s, "}}");
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn sample() -> Netlist {
        let mut n = Netlist::new("add-1b");
        let a = n.add_input();
        let b = n.add_input();
        let s0 = n.xor(a, b);
        let c = n.and(a, b);
        n.set_outputs(vec![s0, c]);
        n
    }

    #[test]
    fn verilog_declares_ports_and_assigns() {
        let v = to_verilog(&sample());
        assert!(v.starts_with("module add_1b(pi0, pi1, po0, po1);"));
        assert!(v.contains("input pi0;"));
        assert!(v.contains("output po1;"));
        assert!(v.contains("assign n2 = pi0 ^ pi1;"));
        assert!(v.contains("assign po0 = n2;"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn verilog_renders_const_and_maj() {
        let mut n = Netlist::new("m");
        let a = n.add_input();
        let b = n.add_input();
        let k = n.constant(true);
        let y = n.maj(a, b, k);
        n.set_outputs(vec![y]);
        let v = to_verilog(&n);
        assert!(v.contains("1'b1"));
        assert!(v.contains("(pi0 & pi1)"));
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let d = to_dot(&sample());
        assert!(d.contains("digraph"));
        assert!(d.contains("n0 [label=\"pi0\""));
        assert!(d.contains("n0 -> n2;"));
        assert!(d.contains("doublecircle"));
    }
}

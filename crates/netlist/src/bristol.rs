//! Bristol-fashion circuit import/export.
//!
//! The "Bristol fashion" text format is the lingua franca of the MPC and
//! garbled-circuit communities: a header (`ngates nwires`, input and
//! output value widths) followed by one line per gate over the primitive
//! vocabulary `XOR AND INV EQ EQW`. Supporting it lets circuits move
//! between this reproduction and external tools (SCALE-MAMBA, MOTION,
//! EMP) in both directions.
//!
//! Export lowers the richer [`Gate`] vocabulary onto the Bristol
//! primitives (`Or` becomes `XOR`+`AND`, `Mux`/`Maj` become small
//! XOR/AND networks, every primary output gets an `EQW` copy so the
//! output wires are the final wires, as the format requires). Import
//! rebuilds a [`Netlist`]; a `to_bristol → from_bristol` round trip is
//! behaviourally equivalent, not gate-identical.
//!
//! # Example
//!
//! ```
//! use afp_netlist::{bristol, Netlist};
//!
//! let mut n = Netlist::new("fa");
//! let a = n.add_input();
//! let b = n.add_input();
//! let c = n.add_input();
//! let x = n.xor(a, b);
//! let s = n.xor(x, c);
//! let co = n.maj(a, b, c);
//! n.set_outputs(vec![s, co]);
//!
//! let text = bristol::to_bristol(&n);
//! let back = bristol::from_bristol(&text)?;
//! assert_eq!(back.eval_bits(&[true, true, false]), n.eval_bits(&[true, true, false]));
//! # Ok::<(), afp_netlist::bristol::BristolError>(())
//! ```

use crate::gate::Gate;
use crate::netlist::{NetId, Netlist};

/// Error produced by [`from_bristol`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BristolError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A gate op outside the supported `XOR AND INV EQ EQW` vocabulary.
    UnsupportedOp {
        /// The offending mnemonic.
        op: String,
    },
    /// A gate reads a wire no earlier line has driven (the format
    /// requires topological order).
    UseBeforeDefine {
        /// 1-based line number.
        line: usize,
        /// The undriven wire index.
        wire: usize,
    },
}

impl std::fmt::Display for BristolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BristolError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            BristolError::UnsupportedOp { op } => write!(f, "unsupported bristol op `{op}`"),
            BristolError::UseBeforeDefine { line, wire } => {
                write!(f, "line {line}: wire {wire} used before it is driven")
            }
        }
    }
}

impl std::error::Error for BristolError {}

/// Render `netlist` in Bristol fashion. Each primary input and output is
/// declared as its own 1-bit value (the format's per-value widths carry
/// no behaviour; word grouping is a caller convention).
pub fn to_bristol(netlist: &Netlist) -> String {
    let num_inputs = netlist.num_inputs();
    // wire_of[i]: the Bristol wire holding the value of net i.
    let mut wire_of: Vec<usize> = vec![usize::MAX; netlist.len()];
    let mut next_wire = num_inputs;
    let mut lines: Vec<String> = Vec::new();
    let fresh = |lines: &mut Vec<String>, op: &str, ins: &[usize], next_wire: &mut usize| {
        let out = *next_wire;
        *next_wire += 1;
        let ins_text: Vec<String> = ins.iter().map(usize::to_string).collect();
        lines.push(format!("{} 1 {} {out} {op}", ins.len(), ins_text.join(" ")));
        out
    };
    for (i, gate) in netlist.gates().iter().enumerate() {
        let w = |id: NetId| wire_of[id.index()];
        wire_of[i] = match *gate {
            Gate::Input(ordinal) => ordinal as usize,
            Gate::Const(v) => fresh(&mut lines, "EQ", &[v as usize], &mut next_wire),
            Gate::Buf(a) => fresh(&mut lines, "EQW", &[w(a)], &mut next_wire),
            Gate::Not(a) => fresh(&mut lines, "INV", &[w(a)], &mut next_wire),
            Gate::And(a, b) => fresh(&mut lines, "AND", &[w(a), w(b)], &mut next_wire),
            Gate::Xor(a, b) => fresh(&mut lines, "XOR", &[w(a), w(b)], &mut next_wire),
            Gate::Or(a, b) => {
                // a | b = (a ^ b) ^ (a & b)
                let x = fresh(&mut lines, "XOR", &[w(a), w(b)], &mut next_wire);
                let c = fresh(&mut lines, "AND", &[w(a), w(b)], &mut next_wire);
                fresh(&mut lines, "XOR", &[x, c], &mut next_wire)
            }
            Gate::Nand(a, b) => {
                let c = fresh(&mut lines, "AND", &[w(a), w(b)], &mut next_wire);
                fresh(&mut lines, "INV", &[c], &mut next_wire)
            }
            Gate::Nor(a, b) => {
                let x = fresh(&mut lines, "XOR", &[w(a), w(b)], &mut next_wire);
                let c = fresh(&mut lines, "AND", &[w(a), w(b)], &mut next_wire);
                let o = fresh(&mut lines, "XOR", &[x, c], &mut next_wire);
                fresh(&mut lines, "INV", &[o], &mut next_wire)
            }
            Gate::Xnor(a, b) => {
                let x = fresh(&mut lines, "XOR", &[w(a), w(b)], &mut next_wire);
                fresh(&mut lines, "INV", &[x], &mut next_wire)
            }
            Gate::Mux(s, a, b) => {
                // s ? b : a  =  a ^ (s & (a ^ b))
                let x = fresh(&mut lines, "XOR", &[w(a), w(b)], &mut next_wire);
                let g = fresh(&mut lines, "AND", &[w(s), x], &mut next_wire);
                fresh(&mut lines, "XOR", &[w(a), g], &mut next_wire)
            }
            Gate::Maj(a, b, c) => {
                // maj(a,b,c) = (a & b) ^ (c & (a ^ b))
                let ab = fresh(&mut lines, "AND", &[w(a), w(b)], &mut next_wire);
                let x = fresh(&mut lines, "XOR", &[w(a), w(b)], &mut next_wire);
                let cx = fresh(&mut lines, "AND", &[w(c), x], &mut next_wire);
                fresh(&mut lines, "XOR", &[ab, cx], &mut next_wire)
            }
        };
    }
    // The format requires the output values to be the final wires, in
    // order; an EQW copy per output guarantees it unconditionally.
    for out in netlist.outputs() {
        let src = wire_of[out.index()];
        fresh(&mut lines, "EQW", &[src], &mut next_wire);
    }
    let ones = |n: usize| " 1".repeat(n);
    let mut text = String::new();
    text.push_str(&format!("{} {next_wire}\n", lines.len()));
    text.push_str(&format!("{num_inputs}{}\n", ones(num_inputs)));
    text.push_str(&format!(
        "{}{}\n",
        netlist.num_outputs(),
        ones(netlist.num_outputs())
    ));
    for line in &lines {
        text.push_str(line);
        text.push('\n');
    }
    text
}

/// One whitespace-tokenized, non-empty line with its 1-based number.
fn numbered_lines(source: &str) -> impl Iterator<Item = (usize, Vec<&str>)> {
    source.lines().enumerate().filter_map(|(i, raw)| {
        let tokens: Vec<&str> = raw.split_whitespace().collect();
        if tokens.is_empty() {
            None
        } else {
            Some((i + 1, tokens))
        }
    })
}

fn parse_usize(line: usize, token: &str, what: &str) -> Result<usize, BristolError> {
    token.parse().map_err(|_| BristolError::Syntax {
        line,
        message: format!("{what}: expected a number, got `{token}`"),
    })
}

/// Parse a Bristol-fashion circuit into a [`Netlist`] named `"bristol"`.
///
/// Accepts the `XOR AND INV EQ EQW` vocabulary (single-output gates).
/// Input values of any declared widths become primary inputs bit by bit;
/// the final wires (per the output declaration) become primary outputs.
pub fn from_bristol(source: &str) -> Result<Netlist, BristolError> {
    let mut lines = numbered_lines(source);
    let (hline, header) = lines.next().ok_or(BristolError::Syntax {
        line: 1,
        message: "empty circuit".to_string(),
    })?;
    let [ngates_tok, nwires_tok] = header.as_slice() else {
        return Err(BristolError::Syntax {
            line: hline,
            message: "header must be `ngates nwires`".to_string(),
        });
    };
    let ngates = parse_usize(hline, ngates_tok, "gate count")?;
    let nwires = parse_usize(hline, nwires_tok, "wire count")?;

    // Value-width declarations: `count w_1 ... w_count`.
    let mut widths = |what: &str| -> Result<usize, BristolError> {
        let (line, tokens) = lines.next().ok_or(BristolError::Syntax {
            line: hline,
            message: format!("missing {what} declaration"),
        })?;
        let count = parse_usize(line, tokens[0], what)?;
        if tokens.len() != count + 1 {
            return Err(BristolError::Syntax {
                line,
                message: format!("{what}: expected {count} widths, got {}", tokens.len() - 1),
            });
        }
        let mut total = 0usize;
        for tok in &tokens[1..] {
            total += parse_usize(line, tok, what)?;
        }
        Ok(total)
    };
    let total_inputs = widths("input values")?;
    let total_outputs = widths("output values")?;
    if total_inputs + total_outputs > nwires {
        return Err(BristolError::Syntax {
            line: hline,
            message: format!(
                "{nwires} wires cannot hold {total_inputs} inputs and {total_outputs} outputs"
            ),
        });
    }
    if total_inputs > u16::MAX as usize {
        return Err(BristolError::Syntax {
            line: hline,
            message: format!("{total_inputs} input bits exceed the netlist input limit"),
        });
    }

    let mut n = Netlist::new("bristol");
    let mut net_of: Vec<Option<NetId>> = vec![None; nwires];
    for slot in net_of.iter_mut().take(total_inputs) {
        *slot = Some(n.add_input());
    }

    let mut parsed_gates = 0usize;
    for (line, tokens) in lines {
        let [n_in_tok, n_out_tok, rest @ ..] = tokens.as_slice() else {
            return Err(BristolError::Syntax {
                line,
                message: "gate line too short".to_string(),
            });
        };
        let n_in = parse_usize(line, n_in_tok, "gate input count")?;
        let n_out = parse_usize(line, n_out_tok, "gate output count")?;
        if rest.len() != n_in + n_out + 1 {
            return Err(BristolError::Syntax {
                line,
                message: format!(
                    "expected {} wires + op, got {} tokens",
                    n_in + n_out,
                    rest.len()
                ),
            });
        }
        let op = rest[n_in + n_out];
        if n_out != 1 {
            return Err(BristolError::UnsupportedOp { op: op.to_string() });
        }
        let out_wire = parse_usize(line, rest[n_in], "output wire")?;
        if out_wire >= nwires {
            return Err(BristolError::Syntax {
                line,
                message: format!("output wire {out_wire} out of range (nwires {nwires})"),
            });
        }
        // `EQ` reads a constant literal, every other op reads wires.
        let read = |tok: &str| -> Result<NetId, BristolError> {
            let wire = parse_usize(line, tok, "input wire")?;
            net_of
                .get(wire)
                .copied()
                .flatten()
                .ok_or(BristolError::UseBeforeDefine { line, wire })
        };
        let driven = match (op, n_in) {
            ("XOR", 2) => {
                let (a, b) = (read(rest[0])?, read(rest[1])?);
                n.xor(a, b)
            }
            ("AND", 2) => {
                let (a, b) = (read(rest[0])?, read(rest[1])?);
                n.and(a, b)
            }
            ("INV", 1) | ("NOT", 1) => {
                let a = read(rest[0])?;
                n.not(a)
            }
            ("EQW", 1) => {
                let a = read(rest[0])?;
                n.buf(a)
            }
            ("EQ", 1) => {
                let v = parse_usize(line, rest[0], "constant")?;
                if v > 1 {
                    return Err(BristolError::Syntax {
                        line,
                        message: format!("EQ constant must be 0 or 1, got {v}"),
                    });
                }
                n.constant(v == 1)
            }
            _ => return Err(BristolError::UnsupportedOp { op: op.to_string() }),
        };
        net_of[out_wire] = Some(driven);
        parsed_gates += 1;
    }
    if parsed_gates != ngates {
        return Err(BristolError::Syntax {
            line: hline,
            message: format!("header declares {ngates} gates, found {parsed_gates}"),
        });
    }

    let mut outs = Vec::with_capacity(total_outputs);
    for (wire, slot) in net_of.iter().enumerate().skip(nwires - total_outputs) {
        outs.push(slot.ok_or(BristolError::UseBeforeDefine { line: hline, wire })?);
    }
    n.set_outputs(outs);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equivalent(a: &Netlist, b: &Netlist) -> bool {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.num_outputs(), b.num_outputs());
        let n = a.num_inputs();
        assert!(n <= 16);
        (0..(1u32 << n)).all(|v| {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            a.eval_bits(&bits) == b.eval_bits(&bits)
        })
    }

    #[test]
    fn full_adder_round_trips() {
        let mut n = Netlist::new("fa");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let x = n.xor(a, b);
        let s = n.xor(x, c);
        let co = n.maj(a, b, c);
        n.set_outputs(vec![s, co]);
        let back = from_bristol(&to_bristol(&n)).unwrap();
        assert!(equivalent(&n, &back));
    }

    #[test]
    fn every_gate_kind_round_trips() {
        let mut n = Netlist::new("zoo");
        let a = n.add_input();
        let b = n.add_input();
        let s = n.add_input();
        let g1 = n.and(a, b);
        let g2 = n.or(a, b);
        let g3 = n.xor(a, b);
        let g4 = n.nand(a, b);
        let g5 = n.nor(a, b);
        let g6 = n.xnor(a, b);
        let g7 = n.not(a);
        let g8 = n.buf(b);
        let g9 = n.mux(s, g1, g2);
        let g10 = n.maj(g3, g4, g5);
        let k = n.constant(true);
        let k0 = n.constant(false);
        let g11 = n.and(g10, k);
        let g12 = n.or(g11, k0);
        n.set_outputs(vec![g6, g7, g8, g9, g12]);
        let text = to_bristol(&n);
        let back = from_bristol(&text).unwrap();
        assert!(equivalent(&n, &back));
        // Lowered text contains only the Bristol vocabulary.
        for line in text.lines().skip(3) {
            let op = line.split_whitespace().last().unwrap();
            assert!(matches!(op, "XOR" | "AND" | "INV" | "EQ" | "EQW"), "{op}");
        }
    }

    #[test]
    fn outputs_are_the_final_wires() {
        let mut n = Netlist::new("order");
        let a = n.add_input();
        let b = n.add_input();
        let x = n.xor(a, b);
        // Outputs deliberately out of creation order: (x, a).
        n.set_outputs(vec![x, a]);
        let text = to_bristol(&n);
        let header: Vec<usize> = text
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        let nwires = header[1];
        // Last two gate lines are EQW copies driving the last two wires.
        let tail: Vec<&str> = text.lines().collect();
        let last = tail[tail.len() - 1];
        let second = tail[tail.len() - 2];
        assert!(last.ends_with("EQW") && second.ends_with("EQW"), "{text}");
        assert!(last.contains(&format!(" {} ", nwires - 1)), "{text}");
        let back = from_bristol(&text).unwrap();
        assert!(equivalent(&n, &back));
    }

    #[test]
    fn parses_handwritten_circuits() {
        // One AND of two 1-bit inputs, output on the last wire.
        let text = "1 3\n2 1 1\n1 1\n2 1 0 1 2 AND\n";
        let n = from_bristol(text).unwrap();
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.eval_bits(&[true, true]), vec![true]);
        assert_eq!(n.eval_bits(&[true, false]), vec![false]);
        // Multi-bit value declarations work too (2 values × 2 bits).
        let text = "2 6\n2 2 2\n1 2\n2 1 0 2 4 XOR\n2 1 1 3 5 XOR\n";
        let n = from_bristol(text).unwrap();
        assert_eq!(n.num_inputs(), 4);
        assert_eq!(n.num_outputs(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(from_bristol(""), Err(BristolError::Syntax { .. })));
        assert!(matches!(
            from_bristol("1 3\n2 1 1\n1 1\n2 1 0 1 2 MAND\n"),
            Err(BristolError::UnsupportedOp { .. })
        ));
        // Wire 9 was never driven.
        assert!(matches!(
            from_bristol("1 11\n2 1 1\n1 1\n2 1 0 9 10 AND\n"),
            Err(BristolError::UseBeforeDefine { wire: 9, .. })
        ));
        // Gate count mismatch with the header.
        assert!(matches!(
            from_bristol("2 3\n2 1 1\n1 1\n2 1 0 1 2 AND\n"),
            Err(BristolError::Syntax { .. })
        ));
    }

    #[test]
    fn random_netlists_round_trip() {
        // Deterministic xorshift so the test needs no RNG dependency.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rnd = move |m: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % m as u64) as usize
        };
        for _ in 0..10 {
            let mut n = Netlist::new("rnd");
            let inputs = n.add_inputs(5);
            let mut nets = inputs.clone();
            for _ in 0..30 {
                let a = nets[rnd(nets.len())];
                let b = nets[rnd(nets.len())];
                let c = nets[rnd(nets.len())];
                let g = match rnd(10) {
                    0 => n.and(a, b),
                    1 => n.or(a, b),
                    2 => n.xor(a, b),
                    3 => n.nand(a, b),
                    4 => n.nor(a, b),
                    5 => n.xnor(a, b),
                    6 => n.not(a),
                    7 => n.mux(a, b, c),
                    8 => n.buf(a),
                    _ => n.maj(a, b, c),
                };
                nets.push(g);
            }
            let outs = (0..4).map(|_| nets[rnd(nets.len())]).collect();
            n.set_outputs(outs);
            let back = from_bristol(&to_bristol(&n)).unwrap();
            assert!(equivalent(&n, &back));
        }
    }
}

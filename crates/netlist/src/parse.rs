//! Structural Verilog import.
//!
//! Parses the gate-level subset that [`crate::export::to_verilog`] emits
//! (and that libraries like EvoApprox distribute): a single module with
//! scalar `input`/`output`/`wire` declarations and `assign` statements
//! over `~ & | ^`, ternary muxes, majority sum-of-products and constant
//! literals. Round-tripping `export → parse` reproduces the original
//! behaviour exactly.

use std::collections::HashMap;

use crate::gate::Gate;
use crate::netlist::{NetId, Netlist};

/// Error produced by [`from_verilog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// No `module` header found.
    MissingModule,
    /// A statement could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An identifier was referenced before being driven.
    Undriven {
        /// The offending identifier.
        name: String,
    },
    /// The assignments contain a combinational cycle.
    Cycle,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingModule => write!(f, "no module header found"),
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Undriven { name } => write!(f, "net `{name}` is never driven"),
            ParseError::Cycle => write!(f, "combinational cycle in assignments"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Expression AST of one `assign` right-hand side.
#[derive(Clone, Debug, PartialEq)]
enum Expr {
    Id(String),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Mux(Box<Expr>, Box<Expr>, Box<Expr>), // cond ? then : else
}

/// Parse a structural Verilog module into a [`Netlist`].
///
/// Inputs become primary inputs in declaration order; outputs likewise.
///
/// # Errors
///
/// Returns a [`ParseError`] on unsupported syntax, undriven nets or
/// combinational cycles.
///
/// # Example
///
/// ```
/// use afp_netlist::{export, parse};
///
/// let mut n = afp_netlist::Netlist::new("demo");
/// let a = n.add_input();
/// let b = n.add_input();
/// let y = n.nand(a, b);
/// n.set_outputs(vec![y]);
///
/// let reparsed = parse::from_verilog(&export::to_verilog(&n))?;
/// assert_eq!(reparsed.eval_bits(&[true, true]), vec![false]);
/// # Ok::<(), afp_netlist::parse::ParseError>(())
/// ```
pub fn from_verilog(source: &str) -> Result<Netlist, ParseError> {
    // Strip comments, join statements (a statement ends with ';' or is the
    // module header / endmodule).
    let mut module_name = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut assigns: Vec<(usize, String, Expr)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("endmodule") || line.starts_with("wire") {
            continue;
        }
        let lineno = lineno + 1;
        if let Some(rest) = line.strip_prefix("module ") {
            let name = rest.split('(').next().unwrap_or("").trim().to_string();
            module_name = Some(name);
        } else if let Some(rest) = line.strip_prefix("input ") {
            for id in rest.trim_end_matches(';').split(',') {
                inputs.push(id.trim().to_string());
            }
        } else if let Some(rest) = line.strip_prefix("output ") {
            for id in rest.trim_end_matches(';').split(',') {
                outputs.push(id.trim().to_string());
            }
        } else if let Some(rest) = line.strip_prefix("assign ") {
            let body = rest.trim_end_matches(';');
            let (lhs, rhs) = body.split_once('=').ok_or_else(|| ParseError::Syntax {
                line: lineno,
                message: "assign without `=`".to_string(),
            })?;
            let expr = parse_expr(rhs.trim()).map_err(|message| ParseError::Syntax {
                line: lineno,
                message,
            })?;
            assigns.push((lineno, lhs.trim().to_string(), expr));
        } else {
            return Err(ParseError::Syntax {
                line: lineno,
                message: format!("unsupported statement `{line}`"),
            });
        }
    }
    let module_name = module_name.ok_or(ParseError::MissingModule)?;

    // Build the netlist: inputs first, then assignments in dependency
    // order (worklist over unresolved operands).
    let mut n = Netlist::new(module_name);
    let mut net_of: HashMap<String, NetId> = HashMap::new();
    for name in &inputs {
        let id = n.add_input();
        net_of.insert(name.clone(), id);
    }
    let mut pending: Vec<(usize, String, Expr)> = assigns;
    loop {
        let before = pending.len();
        let mut still: Vec<(usize, String, Expr)> = Vec::new();
        for (line, lhs, expr) in pending {
            if expr_ready(&expr, &net_of) {
                let id = build_expr(&mut n, &expr, &net_of);
                net_of.insert(lhs, id);
            } else {
                still.push((line, lhs, expr));
            }
        }
        if still.is_empty() {
            break;
        }
        if still.len() == before {
            // No progress: undriven reference or a cycle.
            let (_, _, expr) = &still[0];
            if let Some(name) = first_unknown(expr, &net_of) {
                let driven_later = still.iter().any(|(_, lhs, _)| *lhs == name);
                return if driven_later {
                    Err(ParseError::Cycle)
                } else {
                    Err(ParseError::Undriven { name })
                };
            }
            return Err(ParseError::Cycle);
        }
        pending = still;
    }

    let mut outs = Vec::with_capacity(outputs.len());
    for name in &outputs {
        let id = net_of
            .get(name)
            .copied()
            .ok_or_else(|| ParseError::Undriven { name: name.clone() })?;
        outs.push(id);
    }
    n.set_outputs(outs);
    Ok(n)
}

fn expr_ready(expr: &Expr, nets: &HashMap<String, NetId>) -> bool {
    first_unknown(expr, nets).is_none()
}

fn first_unknown(expr: &Expr, nets: &HashMap<String, NetId>) -> Option<String> {
    match expr {
        Expr::Id(name) => {
            if nets.contains_key(name) {
                None
            } else {
                Some(name.clone())
            }
        }
        Expr::Const(_) => None,
        Expr::Not(a) => first_unknown(a, nets),
        Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
            first_unknown(a, nets).or_else(|| first_unknown(b, nets))
        }
        Expr::Mux(s, a, b) => first_unknown(s, nets)
            .or_else(|| first_unknown(a, nets))
            .or_else(|| first_unknown(b, nets)),
    }
}

fn build_expr(n: &mut Netlist, expr: &Expr, nets: &HashMap<String, NetId>) -> NetId {
    match expr {
        Expr::Id(name) => nets[name],
        Expr::Const(v) => n.constant(*v),
        Expr::Not(a) => match a.as_ref() {
            // Fuse inverted binary ops into the native inverting gates.
            Expr::And(x, y) => {
                let (x, y) = (build_expr(n, x, nets), build_expr(n, y, nets));
                n.add_gate(Gate::Nand(x, y))
            }
            Expr::Or(x, y) => {
                let (x, y) = (build_expr(n, x, nets), build_expr(n, y, nets));
                n.add_gate(Gate::Nor(x, y))
            }
            Expr::Xor(x, y) => {
                let (x, y) = (build_expr(n, x, nets), build_expr(n, y, nets));
                n.add_gate(Gate::Xnor(x, y))
            }
            other => {
                let a = build_expr(n, other, nets);
                n.not(a)
            }
        },
        Expr::And(a, b) => {
            let (a, b) = (build_expr(n, a, nets), build_expr(n, b, nets));
            n.and(a, b)
        }
        Expr::Or(a, b) => {
            let (a, b) = (build_expr(n, a, nets), build_expr(n, b, nets));
            n.or(a, b)
        }
        Expr::Xor(a, b) => {
            let (a, b) = (build_expr(n, a, nets), build_expr(n, b, nets));
            n.xor(a, b)
        }
        Expr::Mux(s, a, b) => {
            // Verilog `s ? t : e`: our Mux(s, a, b) computes s ? b : a.
            let (s, t, e) = (
                build_expr(n, s, nets),
                build_expr(n, a, nets),
                build_expr(n, b, nets),
            );
            n.mux(s, e, t)
        }
    }
}

/// Recursive-descent expression parser.
///
/// Grammar (loosest-binding first):
///   mux   := or ('?' or ':' or)?
///   or    := xor ('|' xor)*
///   xor   := and ('^' and)*
///   and   := unary ('&' unary)*
///   unary := '~' unary | '(' mux ')' | const | ident
fn parse_expr(text: &str) -> Result<Expr, String> {
    let tokens = tokenize(text)?;
    let mut pos = 0usize;
    let expr = parse_mux(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!(
            "trailing tokens after expression: {:?}",
            &tokens[pos..]
        ));
    }
    Ok(expr)
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Id(String),
    Const(bool),
    Not,
    And,
    Or,
    Xor,
    LParen,
    RParen,
    Question,
    Colon,
}

fn tokenize(text: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '~' => {
                out.push(Tok::Not);
                i += 1;
            }
            '&' => {
                out.push(Tok::And);
                i += 1;
            }
            '|' => {
                out.push(Tok::Or);
                i += 1;
            }
            '^' => {
                out.push(Tok::Xor);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '?' => {
                out.push(Tok::Question);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            '0'..='9' => {
                // Constant literal of the form 1'b0 / 1'b1.
                let rest: String = chars[i..].iter().collect();
                if let Some(stripped) = rest.strip_prefix("1'b") {
                    let bit = stripped.chars().next().ok_or("truncated constant")?;
                    out.push(Tok::Const(bit == '1'));
                    i += 4;
                } else {
                    return Err(format!("unsupported literal at `{rest}`"));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Tok::Id(chars[i..j].iter().collect()));
                i = j;
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(out)
}

fn parse_mux(tokens: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    let cond = parse_or(tokens, pos)?;
    if tokens.get(*pos) == Some(&Tok::Question) {
        *pos += 1;
        let then = parse_or(tokens, pos)?;
        if tokens.get(*pos) != Some(&Tok::Colon) {
            return Err("expected `:` in ternary".to_string());
        }
        *pos += 1;
        let els = parse_or(tokens, pos)?;
        Ok(Expr::Mux(Box::new(cond), Box::new(then), Box::new(els)))
    } else {
        Ok(cond)
    }
}

fn parse_or(tokens: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    let mut left = parse_xor(tokens, pos)?;
    while tokens.get(*pos) == Some(&Tok::Or) {
        *pos += 1;
        let right = parse_xor(tokens, pos)?;
        left = Expr::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_xor(tokens: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    let mut left = parse_and(tokens, pos)?;
    while tokens.get(*pos) == Some(&Tok::Xor) {
        *pos += 1;
        let right = parse_and(tokens, pos)?;
        left = Expr::Xor(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_and(tokens: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    let mut left = parse_unary(tokens, pos)?;
    while tokens.get(*pos) == Some(&Tok::And) {
        *pos += 1;
        let right = parse_unary(tokens, pos)?;
        left = Expr::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_unary(tokens: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    match tokens.get(*pos) {
        Some(Tok::Not) => {
            *pos += 1;
            Ok(Expr::Not(Box::new(parse_unary(tokens, pos)?)))
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let inner = parse_mux(tokens, pos)?;
            if tokens.get(*pos) != Some(&Tok::RParen) {
                return Err("unbalanced parenthesis".to_string());
            }
            *pos += 1;
            Ok(inner)
        }
        Some(Tok::Const(v)) => {
            let v = *v;
            *pos += 1;
            Ok(Expr::Const(v))
        }
        Some(Tok::Id(name)) => {
            let name = name.clone();
            *pos += 1;
            Ok(Expr::Id(name))
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_verilog;

    fn round_trip(n: &Netlist) -> Netlist {
        from_verilog(&to_verilog(n)).expect("round trip parses")
    }

    fn equivalent(a: &Netlist, b: &Netlist) -> bool {
        assert_eq!(a.num_inputs(), b.num_inputs());
        let n = a.num_inputs();
        assert!(n <= 16);
        (0..(1u32 << n)).all(|v| {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            a.eval_bits(&bits) == b.eval_bits(&bits)
        })
    }

    #[test]
    fn full_adder_round_trips() {
        let mut n = Netlist::new("fa");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let x = n.xor(a, b);
        let s = n.xor(x, c);
        let co = n.maj(a, b, c);
        n.set_outputs(vec![s, co]);
        let back = round_trip(&n);
        assert!(equivalent(&n, &back));
        assert_eq!(back.name(), "fa");
    }

    #[test]
    fn all_gate_kinds_round_trip() {
        let mut n = Netlist::new("kinds");
        let a = n.add_input();
        let b = n.add_input();
        let s = n.add_input();
        let g1 = n.and(a, b);
        let g2 = n.or(a, b);
        let g3 = n.xor(a, b);
        let g4 = n.nand(a, b);
        let g5 = n.nor(a, b);
        let g6 = n.xnor(a, b);
        let g7 = n.not(a);
        let g8 = n.buf(b);
        let g9 = n.mux(s, g1, g2);
        let g10 = n.maj(g3, g4, g5);
        let k = n.constant(true);
        let g11 = n.and(g10, k);
        n.set_outputs(vec![g6, g7, g8, g9, g11]);
        let back = round_trip(&n);
        assert!(equivalent(&n, &back));
    }

    #[test]
    fn inverted_ops_fuse_to_inverting_gates() {
        let back = from_verilog(
            "module m(pi0, pi1, po0);\n  input pi0;\n  input pi1;\n  output po0;\n  wire n2;\n  assign n2 = ~(pi0 & pi1);\n  assign po0 = n2;\nendmodule\n",
        )
        .unwrap();
        assert_eq!(back.num_logic_gates(), 1);
        assert!(matches!(back.gates()[2], Gate::Nand(..)));
    }

    #[test]
    fn out_of_order_assignments_are_resolved() {
        let src = "module m(pi0, po0);\n  input pi0;\n  output po0;\n  assign po0 = n3;\n  assign n3 = ~n2;\n  assign n2 = ~pi0;\nendmodule\n";
        let back = from_verilog(src).unwrap();
        assert_eq!(back.eval_bits(&[true]), vec![true]);
    }

    #[test]
    fn undriven_nets_are_reported() {
        let src =
            "module m(pi0, po0);\n  input pi0;\n  output po0;\n  assign po0 = ghost;\nendmodule\n";
        assert_eq!(
            from_verilog(src).unwrap_err(),
            ParseError::Undriven {
                name: "ghost".to_string()
            }
        );
    }

    #[test]
    fn cycles_are_reported() {
        let src = "module m(pi0, po0);\n  input pi0;\n  output po0;\n  assign a = ~b;\n  assign b = ~a;\n  assign po0 = a;\nendmodule\n";
        assert_eq!(from_verilog(src).unwrap_err(), ParseError::Cycle);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let src =
            "module m(pi0, po0);\n  input pi0;\n  output po0;\n  assign po0 = pi0 +;\nendmodule\n";
        match from_verilog(src).unwrap_err() {
            ParseError::Syntax { line, .. } => assert_eq!(line, 4),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn whole_library_round_trips() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // Random circuits stress operator precedence and sharing.
        let mut rng = SmallRng::seed_from_u64(404);
        for _ in 0..15 {
            let mut n = Netlist::new("rnd");
            let inputs = n.add_inputs(5);
            let mut nets = inputs.clone();
            for _ in 0..25 {
                let a = nets[rng.gen_range(0..nets.len())];
                let b = nets[rng.gen_range(0..nets.len())];
                let c = nets[rng.gen_range(0..nets.len())];
                let g = match rng.gen_range(0..9) {
                    0 => n.and(a, b),
                    1 => n.or(a, b),
                    2 => n.xor(a, b),
                    3 => n.nand(a, b),
                    4 => n.nor(a, b),
                    5 => n.xnor(a, b),
                    6 => n.not(a),
                    7 => n.mux(a, b, c),
                    _ => n.maj(a, b, c),
                };
                nets.push(g);
            }
            let outs = (0..3).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
            n.set_outputs(outs);
            let back = round_trip(&n);
            assert!(equivalent(&n, &back));
        }
    }
}

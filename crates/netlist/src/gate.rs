use crate::netlist::NetId;

/// A single gate (node) in a [`crate::Netlist`].
///
/// The vocabulary is deliberately small and ASIC-cell-shaped: every variant
/// except [`Gate::Input`] and [`Gate::Const`] corresponds to a standard cell
/// in the `afp-asic` library and is a legal leaf for LUT cut enumeration in
/// `afp-fpga`. All operand [`NetId`]s must reference earlier nodes, which
/// keeps the netlist topologically ordered by construction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Primary input; the payload is the input ordinal (0-based).
    Input(u16),
    /// Constant `0` or `1`.
    Const(bool),
    /// Buffer (identity). Mostly produced by approximation rewrites.
    Buf(NetId),
    /// Inverter.
    Not(NetId),
    /// 2-input AND.
    And(NetId, NetId),
    /// 2-input OR.
    Or(NetId, NetId),
    /// 2-input XOR.
    Xor(NetId, NetId),
    /// 2-input NAND.
    Nand(NetId, NetId),
    /// 2-input NOR.
    Nor(NetId, NetId),
    /// 2-input XNOR.
    Xnor(NetId, NetId),
    /// 2:1 multiplexer: output = `s ? b : a`, operands `(s, a, b)`.
    Mux(NetId, NetId, NetId),
    /// Majority of three — the carry function of a full adder.
    Maj(NetId, NetId, NetId),
}

impl Gate {
    /// The kind discriminant of this gate (for histograms and cell mapping).
    #[inline]
    pub fn kind(&self) -> GateKind {
        match self {
            Gate::Input(_) => GateKind::Input,
            Gate::Const(_) => GateKind::Const,
            Gate::Buf(_) => GateKind::Buf,
            Gate::Not(_) => GateKind::Not,
            Gate::And(..) => GateKind::And,
            Gate::Or(..) => GateKind::Or,
            Gate::Xor(..) => GateKind::Xor,
            Gate::Nand(..) => GateKind::Nand,
            Gate::Nor(..) => GateKind::Nor,
            Gate::Xnor(..) => GateKind::Xnor,
            Gate::Mux(..) => GateKind::Mux,
            Gate::Maj(..) => GateKind::Maj,
        }
    }

    /// Operand nets of this gate, in order. Inputs and constants have none.
    #[inline]
    pub fn operands(&self) -> OperandIter {
        let (ops, len) = match *self {
            Gate::Input(_) | Gate::Const(_) => ([NetId::from_index(0); 3], 0),
            Gate::Buf(a) | Gate::Not(a) => ([a, NetId::from_index(0), NetId::from_index(0)], 1),
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xnor(a, b) => ([a, b, NetId::from_index(0)], 2),
            Gate::Mux(s, a, b) => ([s, a, b], 3),
            Gate::Maj(a, b, c) => ([a, b, c], 3),
        };
        OperandIter { ops, len, pos: 0 }
    }

    /// Rebuild the same gate with operands rewritten through `map`.
    ///
    /// Used by optimization passes when compacting a netlist.
    pub fn map_operands(&self, mut map: impl FnMut(NetId) -> NetId) -> Gate {
        match *self {
            Gate::Input(i) => Gate::Input(i),
            Gate::Const(v) => Gate::Const(v),
            Gate::Buf(a) => Gate::Buf(map(a)),
            Gate::Not(a) => Gate::Not(map(a)),
            Gate::And(a, b) => Gate::And(map(a), map(b)),
            Gate::Or(a, b) => Gate::Or(map(a), map(b)),
            Gate::Xor(a, b) => Gate::Xor(map(a), map(b)),
            Gate::Nand(a, b) => Gate::Nand(map(a), map(b)),
            Gate::Nor(a, b) => Gate::Nor(map(a), map(b)),
            Gate::Xnor(a, b) => Gate::Xnor(map(a), map(b)),
            Gate::Mux(s, a, b) => Gate::Mux(map(s), map(a), map(b)),
            Gate::Maj(a, b, c) => Gate::Maj(map(a), map(b), map(c)),
        }
    }

    /// Whether this gate computes a value from other nets (i.e. is neither a
    /// primary input nor a constant).
    #[inline]
    pub fn is_logic(&self) -> bool {
        !matches!(self, Gate::Input(_) | Gate::Const(_))
    }

    /// Canonical form: sorts operands of commutative gates so structurally
    /// identical logic hashes identically.
    pub fn canonical(&self) -> Gate {
        fn sort2(a: NetId, b: NetId) -> (NetId, NetId) {
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        }
        fn sort3(a: NetId, b: NetId, c: NetId) -> (NetId, NetId, NetId) {
            let mut v = [a, b, c];
            v.sort_unstable();
            (v[0], v[1], v[2])
        }
        match *self {
            Gate::And(a, b) => {
                let (a, b) = sort2(a, b);
                Gate::And(a, b)
            }
            Gate::Or(a, b) => {
                let (a, b) = sort2(a, b);
                Gate::Or(a, b)
            }
            Gate::Xor(a, b) => {
                let (a, b) = sort2(a, b);
                Gate::Xor(a, b)
            }
            Gate::Nand(a, b) => {
                let (a, b) = sort2(a, b);
                Gate::Nand(a, b)
            }
            Gate::Nor(a, b) => {
                let (a, b) = sort2(a, b);
                Gate::Nor(a, b)
            }
            Gate::Xnor(a, b) => {
                let (a, b) = sort2(a, b);
                Gate::Xnor(a, b)
            }
            Gate::Maj(a, b, c) => {
                let (a, b, c) = sort3(a, b, c);
                Gate::Maj(a, b, c)
            }
            g => g,
        }
    }
}

/// Iterator over a gate's operand nets. Produced by [`Gate::operands`].
#[derive(Clone, Debug)]
pub struct OperandIter {
    ops: [NetId; 3],
    len: u8,
    pos: u8,
}

impl Iterator for OperandIter {
    type Item = NetId;

    fn next(&mut self) -> Option<NetId> {
        if self.pos < self.len {
            let id = self.ops[self.pos as usize];
            self.pos += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.len - self.pos) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for OperandIter {}

/// Discriminant of [`Gate`] — the "cell type" used for histograms, ASIC cell
/// selection and feature extraction.
// Safe total order (`Eq + Ord`, no float keys): the clippy.toml
// `partial_cmp` ban fires inside the derive expansion, not here.
#[allow(clippy::disallowed_methods)]
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum GateKind {
    Input,
    Const,
    Buf,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    Mux,
    Maj,
}

impl GateKind {
    /// All logic kinds (excludes `Input` and `Const`), in a fixed order used
    /// for feature vectors.
    pub const LOGIC: [GateKind; 10] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xnor,
        GateKind::Mux,
        GateKind::Maj,
    ];

    /// Short lower-case mnemonic (`"and"`, `"maj"`, ...).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Const => "const",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Xor => "xor",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
            GateKind::Maj => "maj",
        }
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_iteration_matches_arity() {
        let a = NetId::from_index(1);
        let b = NetId::from_index(2);
        let c = NetId::from_index(3);
        assert_eq!(Gate::Input(0).operands().count(), 0);
        assert_eq!(Gate::Const(true).operands().count(), 0);
        assert_eq!(Gate::Not(a).operands().count(), 1);
        assert_eq!(Gate::And(a, b).operands().count(), 2);
        assert_eq!(Gate::Mux(a, b, c).operands().count(), 3);
        assert_eq!(
            Gate::Maj(a, b, c).operands().collect::<Vec<_>>(),
            vec![a, b, c]
        );
    }

    #[test]
    fn canonical_sorts_commutative_operands() {
        let a = NetId::from_index(1);
        let b = NetId::from_index(2);
        assert_eq!(Gate::And(b, a).canonical(), Gate::And(a, b));
        assert_eq!(Gate::Xor(b, a).canonical(), Gate::Xor(a, b));
        // Mux is not commutative; operands must be preserved.
        let c = NetId::from_index(3);
        assert_eq!(Gate::Mux(c, b, a).canonical(), Gate::Mux(c, b, a));
    }

    #[test]
    fn map_operands_rewrites_all_nets() {
        let a = NetId::from_index(1);
        let b = NetId::from_index(2);
        let shift = |n: NetId| NetId::from_index(n.index() + 10);
        assert_eq!(
            Gate::Maj(a, b, a).map_operands(shift),
            Gate::Maj(
                NetId::from_index(11),
                NetId::from_index(12),
                NetId::from_index(11)
            )
        );
    }

    #[test]
    fn kind_round_trips() {
        let a = NetId::from_index(0);
        assert_eq!(Gate::Nand(a, a).kind(), GateKind::Nand);
        assert_eq!(GateKind::Nand.mnemonic(), "nand");
        assert_eq!(GateKind::LOGIC.len(), 10);
    }
}

//! Structural analysis: logic levels, depth, fanout and summary statistics.

use std::collections::BTreeMap;

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};

/// Logic level of every node: inputs and constants are level 0; a gate is
/// one more than its deepest operand.
pub fn levels(netlist: &Netlist) -> Vec<u32> {
    let mut lv = vec![0u32; netlist.len()];
    for (i, gate) in netlist.gates().iter().enumerate() {
        if gate.is_logic() {
            lv[i] = gate.operands().map(|op| lv[op.index()]).max().unwrap_or(0) + 1;
        }
    }
    lv
}

/// Depth of the netlist: the maximum logic level over the primary outputs.
///
/// A netlist whose outputs are wired straight to inputs has depth 0.
pub fn depth(netlist: &Netlist) -> u32 {
    let lv = levels(netlist);
    netlist
        .outputs()
        .iter()
        .map(|o| lv[o.index()])
        .max()
        .unwrap_or(0)
}

/// Fanout (number of gate operands referencing each net, plus one per use as
/// a primary output).
pub fn fanout(netlist: &Netlist) -> Vec<u32> {
    let mut fo = vec![0u32; netlist.len()];
    for gate in netlist.gates() {
        for op in gate.operands() {
            fo[op.index()] += 1;
        }
    }
    for out in netlist.outputs() {
        fo[out.index()] += 1;
    }
    fo
}

/// Summary statistics of a netlist, used as ML features and in reports.
#[derive(Clone, Debug, PartialEq)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Logic gate count (excludes inputs/constants).
    pub gates: usize,
    /// Per-kind gate counts.
    pub kind_counts: BTreeMap<GateKind, usize>,
    /// Maximum logic level over the outputs.
    pub depth: u32,
    /// Mean fanout over nets with at least one reader.
    pub mean_fanout: f64,
    /// Maximum fanout.
    pub max_fanout: u32,
}

/// Compute [`NetlistStats`] for a netlist.
pub fn stats(netlist: &Netlist) -> NetlistStats {
    let fo = fanout(netlist);
    let read: Vec<u32> = fo.iter().copied().filter(|&f| f > 0).collect();
    let mean_fanout = if read.is_empty() {
        0.0
    } else {
        read.iter().map(|&f| f as f64).sum::<f64>() / read.len() as f64
    };
    let mut kind_counts = netlist.kind_histogram();
    kind_counts.remove(&GateKind::Input);
    kind_counts.remove(&GateKind::Const);
    NetlistStats {
        inputs: netlist.num_inputs(),
        outputs: netlist.num_outputs(),
        gates: netlist.num_logic_gates(),
        kind_counts,
        depth: depth(netlist),
        mean_fanout,
        max_fanout: fo.iter().copied().max().unwrap_or(0),
    }
}

/// Transitive fanin cone of `roots` (indices into the netlist), including
/// the roots themselves. Returned as a boolean mask over all nets.
pub fn cone(netlist: &Netlist, roots: &[NetId]) -> Vec<bool> {
    let mut mask = vec![false; netlist.len()];
    for r in roots {
        mask[r.index()] = true;
    }
    // Reverse topological sweep: a marked gate marks its operands.
    for i in (0..netlist.len()).rev() {
        if mask[i] {
            for op in netlist.gates()[i].operands() {
                mask[op.index()] = true;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn chain(n_gates: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_input();
        let b = n.add_input();
        let mut cur = n.and(a, b);
        for _ in 1..n_gates {
            cur = n.xor(cur, b);
        }
        n.set_outputs(vec![cur]);
        n
    }

    #[test]
    fn depth_of_chain_is_length() {
        assert_eq!(depth(&chain(1)), 1);
        assert_eq!(depth(&chain(7)), 7);
    }

    #[test]
    fn depth_of_wire_is_zero() {
        let mut n = Netlist::new("wire");
        let a = n.add_input();
        n.set_outputs(vec![a]);
        assert_eq!(depth(&n), 0);
    }

    #[test]
    fn fanout_counts_readers_and_outputs() {
        let mut n = Netlist::new("f");
        let a = n.add_input();
        let b = n.add_input();
        let x = n.and(a, b);
        let y = n.or(x, a);
        n.set_outputs(vec![x, y]);
        let fo = fanout(&n);
        assert_eq!(fo[a.index()], 2); // read by and + or
        assert_eq!(fo[x.index()], 2); // read by or + primary output
        assert_eq!(fo[y.index()], 1); // primary output only
    }

    #[test]
    fn stats_aggregates() {
        let n = chain(5);
        let s = stats(&n);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 5);
        assert_eq!(s.depth, 5);
        assert_eq!(s.kind_counts[&GateKind::Xor], 4);
        assert!(s.mean_fanout >= 1.0);
    }

    #[test]
    fn cone_marks_transitive_fanin_only() {
        let mut n = Netlist::new("c");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let x = n.and(a, b);
        let y = n.or(b, c); // not in the cone of x
        n.set_outputs(vec![x, y]);
        let mask = cone(&n, &[x]);
        assert!(mask[a.index()] && mask[b.index()] && mask[x.index()]);
        assert!(!mask[c.index()] && !mask[y.index()]);
    }
}

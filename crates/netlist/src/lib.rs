//! Gate-level netlist intermediate representation for the ApproxFPGAs
//! reproduction.
//!
//! This crate provides the structural substrate every other crate builds on:
//!
//! * [`Netlist`] — a topologically-ordered gate-level DAG with primary
//!   inputs, primary outputs and a small, fixed gate vocabulary ([`Gate`]).
//! * [`Simulator`] — 64-way bit-parallel behavioural simulation, used for
//!   exhaustive/sampled error analysis and for switching-activity (power)
//!   estimation.
//! * [`analyze`] — structural analysis: logic levels, depth, fanout,
//!   gate histograms.
//! * [`opt`] — constant folding, algebraic identities, structural hashing
//!   and dead-logic sweeping (used to clean up mutated/approximated
//!   circuits).
//! * [`export`] — structural Verilog and Graphviz DOT writers.
//! * [`bristol`] — Bristol-fashion circuit import/export (the MPC
//!   community's exchange format).
//!
//! # Example
//!
//! Build and simulate a 1-bit full adder:
//!
//! ```
//! use afp_netlist::Netlist;
//!
//! let mut n = Netlist::new("full_adder");
//! let a = n.add_input();
//! let b = n.add_input();
//! let cin = n.add_input();
//! let axb = n.xor(a, b);
//! let sum = n.xor(axb, cin);
//! let cout = n.maj(a, b, cin);
//! n.set_outputs(vec![sum, cout]);
//!
//! // 1 + 1 + 0 = 0b10
//! let out = n.eval_bits(&[true, true, false]);
//! assert_eq!(out, vec![false, true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod bristol;
pub mod export;
mod gate;
mod netlist;
pub mod opt;
pub mod parse;
mod sim;

pub use gate::{Gate, GateKind};
pub use netlist::{NetId, Netlist, NetlistError};
pub use sim::{
    eval_pass_reference, pack_operand, pack_operand_wide, transpose64, unpack_result,
    unpack_result_wide, SimScratch, SimTape, Simulator, LANES, LANE_WORDS,
};

use crate::gate::Gate;
use crate::netlist::Netlist;

/// 64-way bit-parallel behavioural simulator.
///
/// Each primary input is assigned a 64-bit word; bit lane `k` of every word
/// forms one independent input vector, so a single pass evaluates 64 input
/// assignments. The simulator owns a reusable value buffer, making repeated
/// passes allocation-free.
///
/// # Example
///
/// ```
/// use afp_netlist::{Netlist, Simulator};
///
/// let mut n = Netlist::new("and");
/// let a = n.add_input();
/// let b = n.add_input();
/// let y = n.and(a, b);
/// n.set_outputs(vec![y]);
///
/// let mut sim = Simulator::new(&n);
/// // lane 0: a=1,b=1; lane 1: a=1,b=0; lane 2: a=0,b=1
/// let out = sim.run(&[0b011, 0b101]);
/// assert_eq!(out[0] & 0b111, 0b001);
/// ```
#[derive(Debug)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    values: Vec<u64>,
}

impl<'n> Simulator<'n> {
    /// Create a simulator bound to `netlist`.
    pub fn new(netlist: &'n Netlist) -> Simulator<'n> {
        Simulator {
            netlist,
            values: vec![0; netlist.len()],
        }
    }

    /// The netlist this simulator is bound to.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluate one 64-lane pass.
    ///
    /// `input_words[i]` supplies the 64 lanes of primary input `i`. Returns
    /// one word per primary output (same order as [`Netlist::outputs`]).
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != netlist.num_inputs()`.
    pub fn run(&mut self, input_words: &[u64]) -> Vec<u64> {
        self.run_into(input_words);
        self.netlist
            .outputs()
            .iter()
            .map(|o| self.values[o.index()])
            .collect()
    }

    /// Evaluate one pass, leaving results in the internal buffer (readable
    /// through [`Simulator::value`]). Avoids the output `Vec` allocation of
    /// [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != netlist.num_inputs()`.
    #[inline]
    pub fn run_into(&mut self, input_words: &[u64]) {
        eval_pass(self.netlist, input_words, &mut self.values);
    }

    /// Value word of an arbitrary net after the last pass.
    #[inline]
    pub fn value(&self, net: crate::NetId) -> u64 {
        self.values[net.index()]
    }

    /// Signal probability of every net, estimated from `passes` passes of
    /// uniform random stimulus (64 samples per pass) drawn from `rng_seed`.
    ///
    /// Used by the power models: under the temporal-independence assumption
    /// a net with signal probability `p` has switching activity `2·p·(1-p)`.
    pub fn signal_probabilities(&mut self, passes: usize, rng_seed: u64) -> Vec<f64> {
        let mut scratch = SimScratch::new();
        let mut out = Vec::new();
        scratch.signal_probabilities(self.netlist, passes, rng_seed, &mut out);
        out
    }
}

/// Reusable scratch buffers for repeated [`SimScratch::signal_probabilities`]
/// runs across many netlists.
///
/// A [`Simulator`] is borrowed against one netlist and allocates its value
/// buffer on construction; callers that sweep a whole circuit library (the
/// characterization flow's mapper workers) instead keep one `SimScratch`
/// alive and re-estimate probabilities with zero steady-state allocation.
/// Results are bit-identical to [`Simulator::signal_probabilities`].
#[derive(Debug, Default)]
pub struct SimScratch {
    values: Vec<u64>,
    inputs: Vec<u64>,
    ones: Vec<u64>,
}

impl SimScratch {
    /// An empty scratch; buffers grow to the largest netlist seen.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// Estimate the signal probability of every net in `netlist` from
    /// `passes` passes of uniform random stimulus seeded by `rng_seed`,
    /// writing one probability per net into `out` (cleared first).
    ///
    /// Identical stimulus and accumulation order to
    /// [`Simulator::signal_probabilities`], so the two agree bit-for-bit.
    pub fn signal_probabilities(
        &mut self,
        netlist: &Netlist,
        passes: usize,
        rng_seed: u64,
        out: &mut Vec<f64>,
    ) {
        let n = netlist.len();
        self.values.clear();
        self.values.resize(n, 0);
        self.ones.clear();
        self.ones.resize(n, 0);
        self.inputs.clear();
        self.inputs.resize(netlist.num_inputs(), 0);

        let mut state = rng_seed.wrapping_mul(2).wrapping_add(1);
        let mut next = || {
            // xorshift64* — deterministic, dependency-free stimulus.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..passes.max(1) {
            for w in self.inputs.iter_mut() {
                *w = next();
            }
            eval_pass(netlist, &self.inputs, &mut self.values);
            for (o, v) in self.ones.iter_mut().zip(&self.values) {
                *o += v.count_ones() as u64;
            }
        }
        let total = (passes.max(1) * 64) as f64;
        out.clear();
        out.extend(self.ones.iter().map(|&o| o as f64 / total));
    }
}

/// One 64-lane evaluation pass shared by [`Simulator`] and [`SimScratch`].
///
/// # Panics
///
/// Panics if `input_words.len() != netlist.num_inputs()`.
#[inline]
fn eval_pass(netlist: &Netlist, input_words: &[u64], values: &mut Vec<u64>) {
    assert_eq!(
        input_words.len(),
        netlist.num_inputs(),
        "input word count must equal the number of primary inputs"
    );
    if values.len() != netlist.len() {
        values.clear();
        values.resize(netlist.len(), 0);
    }
    for (i, gate) in netlist.gates().iter().enumerate() {
        let v = match *gate {
            Gate::Input(ord) => input_words[ord as usize],
            Gate::Const(c) => {
                if c {
                    u64::MAX
                } else {
                    0
                }
            }
            Gate::Buf(a) => values[a.index()],
            Gate::Not(a) => !values[a.index()],
            Gate::And(a, b) => values[a.index()] & values[b.index()],
            Gate::Or(a, b) => values[a.index()] | values[b.index()],
            Gate::Xor(a, b) => values[a.index()] ^ values[b.index()],
            Gate::Nand(a, b) => !(values[a.index()] & values[b.index()]),
            Gate::Nor(a, b) => !(values[a.index()] | values[b.index()]),
            Gate::Xnor(a, b) => !(values[a.index()] ^ values[b.index()]),
            Gate::Mux(s, a, b) => {
                let sv = values[s.index()];
                (values[a.index()] & !sv) | (values[b.index()] & sv)
            }
            Gate::Maj(a, b, c) => {
                let (av, bv, cv) = (values[a.index()], values[b.index()], values[c.index()]);
                (av & bv) | (av & cv) | (bv & cv)
            }
        };
        values[i] = v;
    }
}

/// Interpret the low `width` lanes... no: pack an integer operand into input
/// words. Bit `b` of `value` is broadcast into word `b`'s given `lane`.
///
/// Helper for word-level simulation: arithmetic circuits declare inputs
/// LSB-first, so operand bit `b` maps to input word `offset + b`.
#[inline]
pub fn pack_operand(words: &mut [u64], offset: usize, width: usize, lane: usize, value: u64) {
    for b in 0..width {
        let bit = (value >> b) & 1;
        if bit != 0 {
            words[offset + b] |= 1u64 << lane;
        } else {
            words[offset + b] &= !(1u64 << lane);
        }
    }
}

/// Extract the integer formed by `output_words` (LSB-first) at `lane`.
#[inline]
pub fn unpack_result(output_words: &[u64], lane: usize) -> u64 {
    let mut v = 0u64;
    for (b, w) in output_words.iter().enumerate() {
        v |= ((w >> lane) & 1) << b;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bit_adder() -> Netlist {
        // 2-bit ripple-carry adder: inputs a0 a1 b0 b1, outputs s0 s1 s2.
        let mut n = Netlist::new("add2");
        let a0 = n.add_input();
        let a1 = n.add_input();
        let b0 = n.add_input();
        let b1 = n.add_input();
        let s0 = n.xor(a0, b0);
        let c0 = n.and(a0, b0);
        let x1 = n.xor(a1, b1);
        let s1 = n.xor(x1, c0);
        let c1 = n.maj(a1, b1, c0);
        n.set_outputs(vec![s0, s1, c1]);
        n
    }

    #[test]
    fn adder_exhaustive_via_lanes() {
        let n = two_bit_adder();
        let mut sim = Simulator::new(&n);
        // Pack all 16 combinations into lanes 0..16.
        let mut words = vec![0u64; 4];
        for a in 0..4u64 {
            for b in 0..4u64 {
                let lane = (a * 4 + b) as usize;
                pack_operand(&mut words, 0, 2, lane, a);
                pack_operand(&mut words, 2, 2, lane, b);
            }
        }
        let out = sim.run(&words);
        for a in 0..4u64 {
            for b in 0..4u64 {
                let lane = (a * 4 + b) as usize;
                assert_eq!(unpack_result(&out, lane), a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn const_and_mux_semantics() {
        let mut n = Netlist::new("m");
        let s = n.add_input();
        let one = n.constant(true);
        let zero = n.constant(false);
        let y = n.mux(s, one, zero); // s ? 0 : 1  => NOT s
        n.set_outputs(vec![y]);
        let mut sim = Simulator::new(&n);
        let out = sim.run(&[0b01]);
        assert_eq!(out[0] & 0b11, 0b10);
    }

    #[test]
    fn signal_probabilities_are_sane() {
        let n = two_bit_adder();
        let mut sim = Simulator::new(&n);
        let p = sim.signal_probabilities(64, 7);
        // Inputs should be roughly uniform.
        for &pi in &p[..4] {
            assert!((pi - 0.5).abs() < 0.08, "input probability {pi}");
        }
        // AND of two uniform inputs ~ 0.25.
        let c0 = 5; // index of the and gate
        assert!((p[c0] - 0.25).abs() < 0.08, "and probability {}", p[c0]);
        for &pi in &p {
            assert!((0.0..=1.0).contains(&pi));
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut words = vec![0u64; 8];
        pack_operand(&mut words, 0, 8, 13, 0xA5);
        assert_eq!(unpack_result(&words[0..8], 13), 0xA5);
        // Overwrite with a different value on the same lane.
        pack_operand(&mut words, 0, 8, 13, 0x3C);
        assert_eq!(unpack_result(&words[0..8], 13), 0x3C);
    }
}

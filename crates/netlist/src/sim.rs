//! Bit-parallel behavioural simulation: the compiled gate tape, the wide
//! SIMD-friendly executor, and the packing helpers shared by every
//! simulation consumer in the workspace.
//!
//! The hot path is [`SimTape`]: a [`Netlist`] is lowered **once** into a
//! flat opcode stream (operand net indices pre-resolved to buffer offsets,
//! constants folded), and the executor then runs the tape over `W`-word
//! lane blocks — `W = 1` reproduces the classic one-`u64`-per-net pass,
//! `W =` [`LANE_WORDS`] evaluates [`LANES`] independent input vectors per
//! pass with a branch-predictable, autovectorizable inner loop. Both
//! widths produce bit-identical per-net values, and both are bit-identical
//! to the legacy per-gate interpreter kept as [`eval_pass_reference`].

use crate::gate::Gate;
use crate::netlist::Netlist;

/// Words per net in the wide simulation kernel: every net's value is a
/// `[u64; LANE_WORDS]` block, so one pass evaluates [`LANES`] input
/// vectors. Eight words autovectorize to two AVX2 (or one AVX-512) lane
/// operations per gate input.
pub const LANE_WORDS: usize = 8;

/// Independent input vectors evaluated by one wide pass
/// (`LANE_WORDS * 64`).
pub const LANES: usize = LANE_WORDS * 64;

/// Lowered opcode of one [`TapeOp`]. Binary/ternary kernels read their
/// operands through pre-resolved offsets, so the executor never touches
/// the [`Gate`] enum or its payload layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpCode {
    /// Copy primary-input block `a` (an input ordinal, not a net index).
    Input,
    /// Constant all-zeros (also the result of folding to constant 0).
    Zero,
    /// Constant all-ones (also the result of folding to constant 1).
    One,
    Buf,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    /// `(a=select, b, c)`: select 0 → `b`, select 1 → `c`.
    Mux,
    Maj,
}

/// One lowered operation. The destination is implicit: op `i` writes net
/// slot `i` (netlists are topologically ordered, so every operand offset
/// points strictly backwards).
#[derive(Clone, Copy, Debug)]
struct TapeOp {
    code: OpCode,
    a: u32,
    b: u32,
    c: u32,
}

/// A [`Netlist`] compiled to a flat, branch-predictable opcode stream.
///
/// Lowering resolves operand [`crate::NetId`]s to plain buffer offsets and
/// folds constants (a gate whose controlling operands are known constants
/// lowers to `Zero`/`One`/`Buf`/`Not`/... of the remaining live operand).
/// Every net still gets a value slot with exactly the value the per-gate
/// interpreter would compute, so signal-probability estimation over all
/// nets is unaffected by folding.
///
/// # Example
///
/// ```
/// use afp_netlist::{Netlist, SimTape};
///
/// let mut n = Netlist::new("and");
/// let a = n.add_input();
/// let b = n.add_input();
/// let y = n.and(a, b);
/// n.set_outputs(vec![y]);
///
/// let tape = SimTape::compile(&n);
/// let mut values = Vec::new();
/// tape.execute(&[0b011, 0b101], &mut values);
/// assert_eq!(values[y.index()] & 0b111, 0b001);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimTape {
    ops: Vec<TapeOp>,
    num_inputs: usize,
    /// Per-net folded constant, reused across [`SimTape::compile_into`]
    /// calls so recompilation is allocation-free once warm.
    fold: Vec<Option<bool>>,
}

impl SimTape {
    /// Lower `netlist` into a fresh tape.
    pub fn compile(netlist: &Netlist) -> SimTape {
        let mut tape = SimTape::default();
        tape.compile_into(netlist);
        tape
    }

    /// Re-lower `netlist` into this tape, reusing the existing buffers
    /// (allocation-free once the tape has seen a netlist of equal or
    /// larger size).
    pub fn compile_into(&mut self, netlist: &Netlist) {
        self.ops.clear();
        self.ops.reserve(netlist.len());
        self.fold.clear();
        self.fold.resize(netlist.len(), None);
        self.num_inputs = netlist.num_inputs();

        let op0 = |code: OpCode| TapeOp {
            code,
            a: 0,
            b: 0,
            c: 0,
        };
        let op1 = |code: OpCode, a: usize| TapeOp {
            code,
            a: a as u32,
            b: 0,
            c: 0,
        };
        let op2 = |code: OpCode, a: usize, b: usize| TapeOp {
            code,
            a: a as u32,
            b: b as u32,
            c: 0,
        };
        let konst = |v: bool| {
            if v {
                op0(OpCode::One)
            } else {
                op0(OpCode::Zero)
            }
        };

        for (i, gate) in netlist.gates().iter().enumerate() {
            let op = match *gate {
                Gate::Input(ord) => op1(OpCode::Input, ord as usize),
                Gate::Const(v) => {
                    self.fold[i] = Some(v);
                    konst(v)
                }
                Gate::Buf(a) => match self.fold[a.index()] {
                    Some(v) => {
                        self.fold[i] = Some(v);
                        konst(v)
                    }
                    None => op1(OpCode::Buf, a.index()),
                },
                Gate::Not(a) => match self.fold[a.index()] {
                    Some(v) => {
                        self.fold[i] = Some(!v);
                        konst(!v)
                    }
                    None => op1(OpCode::Not, a.index()),
                },
                Gate::And(a, b) => self.lower2(i, OpCode::And, a.index(), b.index()),
                Gate::Or(a, b) => self.lower2(i, OpCode::Or, a.index(), b.index()),
                Gate::Xor(a, b) => self.lower2(i, OpCode::Xor, a.index(), b.index()),
                Gate::Nand(a, b) => self.lower2(i, OpCode::Nand, a.index(), b.index()),
                Gate::Nor(a, b) => self.lower2(i, OpCode::Nor, a.index(), b.index()),
                Gate::Xnor(a, b) => self.lower2(i, OpCode::Xnor, a.index(), b.index()),
                Gate::Mux(s, a, b) => {
                    let (si, ai, bi) = (s.index(), a.index(), b.index());
                    match (self.fold[si], self.fold[ai], self.fold[bi]) {
                        // Known select: the mux is a wire.
                        (Some(false), Some(v), _) | (Some(true), _, Some(v)) => {
                            self.fold[i] = Some(v);
                            konst(v)
                        }
                        (Some(false), None, _) => op1(OpCode::Buf, ai),
                        (Some(true), _, None) => op1(OpCode::Buf, bi),
                        // Constant data inputs: the mux is the select
                        // (or its complement, or a constant).
                        (None, Some(a0), Some(b1)) => match (a0, b1) {
                            (false, true) => op1(OpCode::Buf, si),
                            (true, false) => op1(OpCode::Not, si),
                            (v, _) => {
                                self.fold[i] = Some(v);
                                konst(v)
                            }
                        },
                        // One constant data input simplifies to AND/OR.
                        (None, Some(false), None) => op2(OpCode::And, bi, si),
                        (None, Some(true), None) => {
                            // !s | (b & s) has no single-gate form; keep
                            // the mux with a folded constant-one input.
                            TapeOp {
                                code: OpCode::Mux,
                                a: si as u32,
                                b: ai as u32,
                                c: bi as u32,
                            }
                        }
                        (None, None, Some(true)) => op2(OpCode::Or, ai, si),
                        (None, None, _) => TapeOp {
                            code: OpCode::Mux,
                            a: si as u32,
                            b: ai as u32,
                            c: bi as u32,
                        },
                    }
                }
                Gate::Maj(a, b, c) => {
                    let (ai, bi, ci) = (a.index(), b.index(), c.index());
                    match (self.fold[ai], self.fold[bi], self.fold[ci]) {
                        (Some(x), Some(y), Some(z)) => {
                            let v = (x as u8 + y as u8 + z as u8) >= 2;
                            self.fold[i] = Some(v);
                            konst(v)
                        }
                        // One known constant: majority degenerates to
                        // AND (const 0) or OR (const 1) of the others.
                        (Some(v), None, None) => self.maj2(i, v, bi, ci),
                        (None, Some(v), None) => self.maj2(i, v, ai, ci),
                        (None, None, Some(v)) => self.maj2(i, v, ai, bi),
                        // Two known constants: equal pair decides, a
                        // mixed pair forwards the live operand.
                        (Some(x), Some(y), None) => self.maj1(i, x, y, ci),
                        (Some(x), None, Some(z)) => self.maj1(i, x, z, bi),
                        (None, Some(y), Some(z)) => self.maj1(i, y, z, ai),
                        (None, None, None) => TapeOp {
                            code: OpCode::Maj,
                            a: ai as u32,
                            b: bi as u32,
                            c: ci as u32,
                        },
                    }
                }
            };
            self.ops.push(op);
        }
    }

    /// Lower a two-input gate, folding known-constant operands.
    fn lower2(&mut self, i: usize, code: OpCode, a: usize, b: usize) -> TapeOp {
        let (fa, fb) = (self.fold[a], self.fold[b]);
        let konst = |tape: &mut SimTape, v: bool| {
            tape.fold[i] = Some(v);
            TapeOp {
                code: if v { OpCode::One } else { OpCode::Zero },
                a: 0,
                b: 0,
                c: 0,
            }
        };
        let unary = |code: OpCode, a: usize| TapeOp {
            code,
            a: a as u32,
            b: 0,
            c: 0,
        };
        match (fa, fb) {
            (Some(x), Some(y)) => {
                let v = match code {
                    OpCode::And => x & y,
                    OpCode::Or => x | y,
                    OpCode::Xor => x ^ y,
                    OpCode::Nand => !(x & y),
                    OpCode::Nor => !(x | y),
                    OpCode::Xnor => !(x ^ y),
                    _ => unreachable!("lower2 is only called for binary logic"),
                };
                konst(self, v)
            }
            (Some(k), None) | (None, Some(k)) => {
                // The live operand.
                let live = if fa.is_none() { a } else { b };
                match (code, k) {
                    (OpCode::And, false) | (OpCode::Nor, true) => konst(self, false),
                    (OpCode::Or, true) | (OpCode::Nand, false) => konst(self, true),
                    (OpCode::And, true)
                    | (OpCode::Or, false)
                    | (OpCode::Xor, false)
                    | (OpCode::Xnor, true) => unary(OpCode::Buf, live),
                    (OpCode::Nand, true)
                    | (OpCode::Nor, false)
                    | (OpCode::Xor, true)
                    | (OpCode::Xnor, false) => unary(OpCode::Not, live),
                    _ => unreachable!("lower2 is only called for binary logic"),
                }
            }
            (None, None) => TapeOp {
                code,
                a: a as u32,
                b: b as u32,
                c: 0,
            },
        }
    }

    /// Majority with one constant operand: `Maj(0, x, y) = x & y`,
    /// `Maj(1, x, y) = x | y`.
    fn maj2(&mut self, i: usize, k: bool, x: usize, y: usize) -> TapeOp {
        self.lower2(i, if k { OpCode::Or } else { OpCode::And }, x, y)
    }

    /// Majority with two constant operands: an equal pair decides the
    /// output, a mixed pair forwards the live operand.
    fn maj1(&mut self, i: usize, x: bool, y: bool, live: usize) -> TapeOp {
        if x == y {
            self.fold[i] = Some(x);
            TapeOp {
                code: if x { OpCode::One } else { OpCode::Zero },
                a: 0,
                b: 0,
                c: 0,
            }
        } else {
            TapeOp {
                code: OpCode::Buf,
                a: live as u32,
                b: 0,
                c: 0,
            }
        }
    }

    /// Number of net value slots the tape writes (= `netlist.len()`).
    pub fn num_nets(&self) -> usize {
        self.ops.len()
    }

    /// Number of primary inputs the tape reads.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Execute the tape over `W`-word lane blocks. `inputs` holds
    /// `num_inputs * W` words (input `i` at `i*W..`), `values` is resized
    /// to `num_nets * W` (net `n` at `n*W..`).
    fn exec<const W: usize>(&self, inputs: &[u64], values: &mut Vec<u64>) {
        assert_eq!(
            inputs.len(),
            self.num_inputs * W,
            "input word count must equal the number of primary inputs"
        );
        let len = self.ops.len() * W;
        if values.len() != len {
            values.clear();
            values.resize(len, 0);
        }
        let vals = values.as_mut_slice();
        for (i, op) in self.ops.iter().enumerate() {
            // Everything before slot `i` is already written; the fixed-size
            // block views give the optimizer loop bounds it can vectorize.
            let (prev, rest) = vals.split_at_mut(i * W);
            let cur: &mut [u64; W] = (&mut rest[..W]).try_into().expect("destination block");
            let arg = |x: u32| -> &[u64; W] {
                prev[x as usize * W..][..W]
                    .try_into()
                    .expect("operand block")
            };
            match op.code {
                OpCode::Input => {
                    cur.copy_from_slice(&inputs[op.a as usize * W..][..W]);
                }
                OpCode::Zero => cur.fill(0),
                OpCode::One => cur.fill(u64::MAX),
                OpCode::Buf => *cur = *arg(op.a),
                OpCode::Not => {
                    let a = arg(op.a);
                    for k in 0..W {
                        cur[k] = !a[k];
                    }
                }
                OpCode::And => {
                    let (a, b) = (arg(op.a), arg(op.b));
                    for k in 0..W {
                        cur[k] = a[k] & b[k];
                    }
                }
                OpCode::Or => {
                    let (a, b) = (arg(op.a), arg(op.b));
                    for k in 0..W {
                        cur[k] = a[k] | b[k];
                    }
                }
                OpCode::Xor => {
                    let (a, b) = (arg(op.a), arg(op.b));
                    for k in 0..W {
                        cur[k] = a[k] ^ b[k];
                    }
                }
                OpCode::Nand => {
                    let (a, b) = (arg(op.a), arg(op.b));
                    for k in 0..W {
                        cur[k] = !(a[k] & b[k]);
                    }
                }
                OpCode::Nor => {
                    let (a, b) = (arg(op.a), arg(op.b));
                    for k in 0..W {
                        cur[k] = !(a[k] | b[k]);
                    }
                }
                OpCode::Xnor => {
                    let (a, b) = (arg(op.a), arg(op.b));
                    for k in 0..W {
                        cur[k] = !(a[k] ^ b[k]);
                    }
                }
                OpCode::Mux => {
                    let (s, a, b) = (arg(op.a), arg(op.b), arg(op.c));
                    for k in 0..W {
                        cur[k] = (a[k] & !s[k]) | (b[k] & s[k]);
                    }
                }
                OpCode::Maj => {
                    let (a, b, c) = (arg(op.a), arg(op.b), arg(op.c));
                    for k in 0..W {
                        cur[k] = (a[k] & b[k]) | (a[k] & c[k]) | (b[k] & c[k]);
                    }
                }
            }
        }
    }

    /// One 64-lane pass: `inputs` holds one word per primary input,
    /// `values` is resized to one word per net. Bit-identical to
    /// [`eval_pass_reference`].
    #[inline]
    pub fn execute(&self, inputs: &[u64], values: &mut Vec<u64>) {
        self.exec::<1>(inputs, values);
    }

    /// One [`LANES`]-lane pass: `inputs` holds [`LANE_WORDS`] words per
    /// primary input, `values` is resized to [`LANE_WORDS`] words per net.
    /// Lane-word `j` of every block is an independent 64-lane pass,
    /// bit-identical to [`SimTape::execute`] on that word column.
    #[inline]
    pub fn execute_wide(&self, inputs: &[u64], values: &mut Vec<u64>) {
        self.exec::<LANE_WORDS>(inputs, values);
    }
}

/// 64-way bit-parallel behavioural simulator.
///
/// Each primary input is assigned a 64-bit word; bit lane `k` of every word
/// forms one independent input vector, so a single pass evaluates 64 input
/// assignments. The netlist is compiled to a [`SimTape`] at construction;
/// repeated passes are allocation-free.
///
/// # Example
///
/// ```
/// use afp_netlist::{Netlist, Simulator};
///
/// let mut n = Netlist::new("and");
/// let a = n.add_input();
/// let b = n.add_input();
/// let y = n.and(a, b);
/// n.set_outputs(vec![y]);
///
/// let mut sim = Simulator::new(&n);
/// // lane 0: a=1,b=1; lane 1: a=1,b=0; lane 2: a=0,b=1
/// let out = sim.run(&[0b011, 0b101]);
/// assert_eq!(out[0] & 0b111, 0b001);
/// ```
#[derive(Debug)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    tape: SimTape,
    values: Vec<u64>,
}

impl<'n> Simulator<'n> {
    /// Create a simulator bound to `netlist` (compiles its tape once).
    pub fn new(netlist: &'n Netlist) -> Simulator<'n> {
        Simulator {
            netlist,
            tape: SimTape::compile(netlist),
            values: vec![0; netlist.len()],
        }
    }

    /// The netlist this simulator is bound to.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluate one 64-lane pass.
    ///
    /// `input_words[i]` supplies the 64 lanes of primary input `i`. Returns
    /// one word per primary output (same order as [`Netlist::outputs`]).
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != netlist.num_inputs()`.
    pub fn run(&mut self, input_words: &[u64]) -> Vec<u64> {
        self.run_into(input_words);
        self.netlist
            .outputs()
            .iter()
            .map(|o| self.values[o.index()])
            .collect()
    }

    /// Evaluate one pass, leaving results in the internal buffer (readable
    /// through [`Simulator::value`]). Avoids the output `Vec` allocation of
    /// [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != netlist.num_inputs()`.
    #[inline]
    pub fn run_into(&mut self, input_words: &[u64]) {
        self.tape.execute(input_words, &mut self.values);
    }

    /// Value word of an arbitrary net after the last pass.
    #[inline]
    pub fn value(&self, net: crate::NetId) -> u64 {
        self.values[net.index()]
    }

    /// Signal probability of every net, estimated from `passes` passes of
    /// uniform random stimulus (64 samples per pass) drawn from `rng_seed`.
    ///
    /// Used by the power models: under the temporal-independence assumption
    /// a net with signal probability `p` has switching activity `2·p·(1-p)`.
    pub fn signal_probabilities(&mut self, passes: usize, rng_seed: u64) -> Vec<f64> {
        let mut scratch = SimScratch::new();
        let mut out = Vec::new();
        scratch.signal_probabilities(self.netlist, passes, rng_seed, &mut out);
        out
    }
}

/// Reusable scratch buffers for repeated [`SimScratch::signal_probabilities`]
/// runs across many netlists.
///
/// A [`Simulator`] is borrowed against one netlist and allocates its value
/// buffer on construction; callers that sweep a whole circuit library (the
/// characterization flow's mapper and ASIC workers) instead keep one
/// `SimScratch` alive and re-estimate probabilities with zero steady-state
/// allocation. Results are bit-identical to
/// [`Simulator::signal_probabilities`].
#[derive(Debug, Default)]
pub struct SimScratch {
    tape: SimTape,
    values: Vec<u64>,
    inputs: Vec<u64>,
    ones: Vec<u64>,
}

impl SimScratch {
    /// An empty scratch; buffers grow to the largest netlist seen.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// Estimate the signal probability of every net in `netlist` from
    /// `passes` passes of uniform random stimulus seeded by `rng_seed`,
    /// writing one probability per net into `out` (cleared first).
    ///
    /// Runs the wide kernel, [`LANE_WORDS`] passes per dispatch. Stimulus
    /// draw order and per-net ones-counting are pass-major exactly like a
    /// pass-at-a-time loop over [`eval_pass_reference`], so the estimates
    /// are bit-identical to the legacy kernel and to
    /// [`Simulator::signal_probabilities`].
    pub fn signal_probabilities(
        &mut self,
        netlist: &Netlist,
        passes: usize,
        rng_seed: u64,
        out: &mut Vec<f64>,
    ) {
        const W: usize = LANE_WORDS;
        let n = netlist.len();
        self.tape.compile_into(netlist);
        self.ones.clear();
        self.ones.resize(n, 0);
        self.inputs.clear();
        self.inputs.resize(netlist.num_inputs() * W, 0);

        let mut state = rng_seed.wrapping_mul(2).wrapping_add(1);
        let mut next = || {
            // xorshift64* — deterministic, dependency-free stimulus.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let total_passes = passes.max(1);
        let mut done = 0;
        while done < total_passes {
            let block = (total_passes - done).min(W);
            // Pass-major fill: pass j draws one word per input, in input
            // order — the exact RNG call order of the legacy loop.
            for j in 0..block {
                for i in 0..netlist.num_inputs() {
                    self.inputs[i * W + j] = next();
                }
            }
            self.tape.execute_wide(&self.inputs, &mut self.values);
            for (net, o) in self.ones.iter_mut().enumerate() {
                let mut count = 0u64;
                for j in 0..block {
                    count += self.values[net * W + j].count_ones() as u64;
                }
                *o += count;
            }
            done += block;
        }
        let total = (total_passes * 64) as f64;
        out.clear();
        out.extend(self.ones.iter().map(|&o| o as f64 / total));
    }
}

/// The legacy per-gate interpreter: one 64-lane pass evaluated by matching
/// on [`Gate`] directly, with no tape compilation.
///
/// Kept as the differential reference for the tape kernel — the
/// bit-identity property tests and the `sim_scaling` pre-rewrite baseline
/// run this; every production path runs [`SimTape`].
///
/// # Panics
///
/// Panics if `input_words.len() != netlist.num_inputs()`.
pub fn eval_pass_reference(netlist: &Netlist, input_words: &[u64], values: &mut Vec<u64>) {
    assert_eq!(
        input_words.len(),
        netlist.num_inputs(),
        "input word count must equal the number of primary inputs"
    );
    if values.len() != netlist.len() {
        values.clear();
        values.resize(netlist.len(), 0);
    }
    for (i, gate) in netlist.gates().iter().enumerate() {
        let v = match *gate {
            Gate::Input(ord) => input_words[ord as usize],
            Gate::Const(c) => {
                if c {
                    u64::MAX
                } else {
                    0
                }
            }
            Gate::Buf(a) => values[a.index()],
            Gate::Not(a) => !values[a.index()],
            Gate::And(a, b) => values[a.index()] & values[b.index()],
            Gate::Or(a, b) => values[a.index()] | values[b.index()],
            Gate::Xor(a, b) => values[a.index()] ^ values[b.index()],
            Gate::Nand(a, b) => !(values[a.index()] & values[b.index()]),
            Gate::Nor(a, b) => !(values[a.index()] | values[b.index()]),
            Gate::Xnor(a, b) => !(values[a.index()] ^ values[b.index()]),
            Gate::Mux(s, a, b) => {
                let sv = values[s.index()];
                (values[a.index()] & !sv) | (values[b.index()] & sv)
            }
            Gate::Maj(a, b, c) => {
                let (av, bv, cv) = (values[a.index()], values[b.index()], values[c.index()]);
                (av & bv) | (av & cv) | (bv & cv)
            }
        };
        values[i] = v;
    }
}

/// Pack an integer operand into input words: bit `b` of `value` is written
/// to bit `lane` of `words[offset + b]`, overwriting whatever that lane
/// held before.
///
/// Helper for word-level simulation: arithmetic circuits declare inputs
/// LSB-first, so operand bit `b` maps to input word `offset + b`.
#[inline]
pub fn pack_operand(words: &mut [u64], offset: usize, width: usize, lane: usize, value: u64) {
    let mask = 1u64 << lane;
    for b in 0..width {
        let w = &mut words[offset + b];
        *w = (*w & !mask) | (((value >> b) & 1) << lane);
    }
}

/// Extract the integer formed by `output_words` (LSB-first) at `lane`.
#[inline]
pub fn unpack_result(output_words: &[u64], lane: usize) -> u64 {
    let mut v = 0u64;
    for (b, w) in output_words.iter().enumerate() {
        v |= ((w >> lane) & 1) << b;
    }
    v
}

/// Block-wise counterpart of [`pack_operand`] for the wide kernel: input
/// `offset + b` is a `[u64; LANE_WORDS]` block at
/// `(offset + b) * LANE_WORDS`, and `lane` ranges over `0..`[`LANES`].
#[inline]
pub fn pack_operand_wide(words: &mut [u64], offset: usize, width: usize, lane: usize, value: u64) {
    let (word, bit) = (lane / 64, lane % 64);
    let mask = 1u64 << bit;
    for b in 0..width {
        let w = &mut words[(offset + b) * LANE_WORDS + word];
        *w = (*w & !mask) | (((value >> b) & 1) << bit);
    }
}

/// Block-wise counterpart of [`unpack_result`]: `output_blocks` holds one
/// `[u64; LANE_WORDS]` block per output bit (LSB-first), `lane` ranges
/// over `0..`[`LANES`].
#[inline]
pub fn unpack_result_wide(output_blocks: &[u64], lane: usize) -> u64 {
    let (word, bit) = (lane / 64, lane % 64);
    let mut v = 0u64;
    for b in 0..output_blocks.len() / LANE_WORDS {
        v |= ((output_blocks[b * LANE_WORDS + word] >> bit) & 1) << b;
    }
    v
}

/// In-place 64×64 bit-matrix transpose: bit `j` of `a[i]` swaps with bit
/// `i` of `a[j]` (the recursive block-swap algorithm, 6 rounds).
///
/// This is how batch evaluation converts between lane-major simulation
/// words (one word per output bit, one lane per bit position) and
/// value-major results (one word per lane) in ~6 operations per lane
/// instead of one shift/mask chain per output bit per lane.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bit_adder() -> Netlist {
        // 2-bit ripple-carry adder: inputs a0 a1 b0 b1, outputs s0 s1 s2.
        let mut n = Netlist::new("add2");
        let a0 = n.add_input();
        let a1 = n.add_input();
        let b0 = n.add_input();
        let b1 = n.add_input();
        let s0 = n.xor(a0, b0);
        let c0 = n.and(a0, b0);
        let x1 = n.xor(a1, b1);
        let s1 = n.xor(x1, c0);
        let c1 = n.maj(a1, b1, c0);
        n.set_outputs(vec![s0, s1, c1]);
        n
    }

    #[test]
    fn adder_exhaustive_via_lanes() {
        let n = two_bit_adder();
        let mut sim = Simulator::new(&n);
        // Pack all 16 combinations into lanes 0..16.
        let mut words = vec![0u64; 4];
        for a in 0..4u64 {
            for b in 0..4u64 {
                let lane = (a * 4 + b) as usize;
                pack_operand(&mut words, 0, 2, lane, a);
                pack_operand(&mut words, 2, 2, lane, b);
            }
        }
        let out = sim.run(&words);
        for a in 0..4u64 {
            for b in 0..4u64 {
                let lane = (a * 4 + b) as usize;
                assert_eq!(unpack_result(&out, lane), a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn const_and_mux_semantics() {
        let mut n = Netlist::new("m");
        let s = n.add_input();
        let one = n.constant(true);
        let zero = n.constant(false);
        let y = n.mux(s, one, zero); // s ? 0 : 1  => NOT s
        n.set_outputs(vec![y]);
        let mut sim = Simulator::new(&n);
        let out = sim.run(&[0b01]);
        assert_eq!(out[0] & 0b11, 0b10);
    }

    #[test]
    fn tape_matches_reference_on_const_folding_patterns() {
        // Every fold rule: gates fed by constants in each operand slot.
        let mut n = Netlist::new("folds");
        let x = n.add_input();
        let y = n.add_input();
        let one = n.constant(true);
        let zero = n.constant(false);
        let mut outs = Vec::new();
        for (a, b) in [
            (x, one),
            (x, zero),
            (one, x),
            (zero, x),
            (one, zero),
            (one, one),
        ] {
            outs.push(n.and(a, b));
            outs.push(n.or(a, b));
            outs.push(n.xor(a, b));
            outs.push(n.nand(a, b));
            outs.push(n.nor(a, b));
            outs.push(n.xnor(a, b));
        }
        for (s, a, b) in [
            (one, x, y),
            (zero, x, y),
            (x, one, y),
            (x, zero, y),
            (x, y, one),
            (x, y, zero),
            (x, one, zero),
            (x, zero, one),
            (x, one, one),
            (x, zero, zero),
            (one, zero, one),
        ] {
            outs.push(n.mux(s, a, b));
            outs.push(n.maj(s, a, b));
            outs.push(n.maj(a, s, b));
            outs.push(n.maj(a, b, s));
        }
        outs.push(n.buf(one));
        outs.push(n.not(zero));
        let b1 = n.buf(zero);
        outs.push(n.not(b1)); // fold through a folded buf
        n.set_outputs(outs);

        let inputs = [0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210];
        let mut reference = Vec::new();
        eval_pass_reference(&n, &inputs, &mut reference);
        let tape = SimTape::compile(&n);
        let mut values = Vec::new();
        tape.execute(&inputs, &mut values);
        assert_eq!(values, reference);
    }

    #[test]
    fn wide_execution_matches_per_word_scalar_passes() {
        let n = two_bit_adder();
        let tape = SimTape::compile(&n);
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let wide_inputs: Vec<u64> = (0..n.num_inputs() * LANE_WORDS).map(|_| next()).collect();
        let mut wide = Vec::new();
        tape.execute_wide(&wide_inputs, &mut wide);
        for j in 0..LANE_WORDS {
            let narrow: Vec<u64> = (0..n.num_inputs())
                .map(|i| wide_inputs[i * LANE_WORDS + j])
                .collect();
            let mut scalar = Vec::new();
            tape.execute(&narrow, &mut scalar);
            for net in 0..n.len() {
                assert_eq!(
                    wide[net * LANE_WORDS + j],
                    scalar[net],
                    "net {net} word {j}"
                );
            }
        }
    }

    #[test]
    fn signal_probabilities_are_sane() {
        let n = two_bit_adder();
        let mut sim = Simulator::new(&n);
        let p = sim.signal_probabilities(64, 7);
        // Inputs should be roughly uniform.
        for &pi in &p[..4] {
            assert!((pi - 0.5).abs() < 0.08, "input probability {pi}");
        }
        // AND of two uniform inputs ~ 0.25.
        let c0 = 5; // index of the and gate
        assert!((p[c0] - 0.25).abs() < 0.08, "and probability {}", p[c0]);
        for &pi in &p {
            assert!((0.0..=1.0).contains(&pi));
        }
    }

    #[test]
    fn signal_probabilities_match_a_legacy_pass_loop() {
        // The wide-block estimator must reproduce the original
        // pass-at-a-time loop bit for bit, for pass counts around and
        // away from the block width.
        let n = two_bit_adder();
        for passes in [1, 3, 8, 9, 31, 32, 64] {
            for seed in [0u64, 7, 0xA51C] {
                let mut state = seed.wrapping_mul(2).wrapping_add(1);
                let mut next = || {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
                };
                let mut values = Vec::new();
                let mut ones = vec![0u64; n.len()];
                let mut inputs = vec![0u64; n.num_inputs()];
                for _ in 0..passes.max(1) {
                    for w in inputs.iter_mut() {
                        *w = next();
                    }
                    eval_pass_reference(&n, &inputs, &mut values);
                    for (o, v) in ones.iter_mut().zip(&values) {
                        *o += v.count_ones() as u64;
                    }
                }
                let total = (passes.max(1) * 64) as f64;
                let legacy: Vec<f64> = ones.iter().map(|&o| o as f64 / total).collect();

                let mut scratch = SimScratch::new();
                let mut got = Vec::new();
                scratch.signal_probabilities(&n, passes, seed, &mut got);
                let legacy_bits: Vec<u64> = legacy.iter().map(|p| p.to_bits()).collect();
                let got_bits: Vec<u64> = got.iter().map(|p| p.to_bits()).collect();
                assert_eq!(got_bits, legacy_bits, "passes={passes} seed={seed}");
            }
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut words = vec![0u64; 8];
        pack_operand(&mut words, 0, 8, 13, 0xA5);
        assert_eq!(unpack_result(&words[0..8], 13), 0xA5);
        // Overwrite with a different value on the same lane.
        pack_operand(&mut words, 0, 8, 13, 0x3C);
        assert_eq!(unpack_result(&words[0..8], 13), 0x3C);
    }

    #[test]
    fn wide_pack_unpack_round_trip() {
        let mut blocks = vec![0u64; 8 * LANE_WORDS];
        for lane in [0usize, 13, 63, 64, 200, LANES - 1] {
            pack_operand_wide(&mut blocks, 0, 8, lane, 0xA5);
            assert_eq!(unpack_result_wide(&blocks, lane), 0xA5, "lane {lane}");
            pack_operand_wide(&mut blocks, 0, 8, lane, 0x3C);
            assert_eq!(unpack_result_wide(&blocks, lane), 0x3C, "lane {lane}");
        }
        // Narrow and wide packing agree on word column 0.
        let mut narrow = vec![0u64; 8];
        pack_operand(&mut narrow, 0, 8, 17, 0x5A);
        let mut wide = vec![0u64; 8 * LANE_WORDS];
        pack_operand_wide(&mut wide, 0, 8, 17, 0x5A);
        for b in 0..8 {
            assert_eq!(wide[b * LANE_WORDS], narrow[b]);
        }
    }

    #[test]
    fn transpose64_is_an_involutive_transpose() {
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let original: Vec<u64> = (0..64).map(|_| next()).collect();
        let mut a: [u64; 64] = original.clone().try_into().unwrap();
        transpose64(&mut a);
        for (i, &row) in a.iter().enumerate() {
            for (j, &orig) in original.iter().enumerate() {
                assert_eq!(
                    (row >> j) & 1,
                    (orig >> i) & 1,
                    "bit ({i},{j}) not transposed"
                );
            }
        }
        transpose64(&mut a);
        assert_eq!(a.as_slice(), original.as_slice());
    }
}

//! The workspace's single float-ordering policy.
//!
//! Every ranking site in the flow — pareto sorting, model selection by
//! fidelity, split-point search, nearest-neighbour distances — orders
//! `f64` keys. `partial_cmp(..).unwrap_or(Equal)` is **not** a total
//! order once a NaN shows up: `sort_by` may panic under the standard
//! library's comparator-consistency checks, and `min_by`/`max_by` can
//! silently crown a NaN as the winner. Since model estimates are
//! untrusted input (a GP or MLP trained on a degenerate subset happily
//! emits NaN/inf), every comparison goes through the helpers here
//! instead.
//!
//! The policy, in one line: **comparisons are total (`f64::total_cmp`
//! based), all NaNs compare equal to each other, and NaN always ranks
//! worst** — last in an ascending sort of minimized keys, last in a
//! descending sort of maximized keys, and never the winner of a
//! `max_by`/`min_by` selection (unless every key is NaN).
//!
//! For non-NaN keys the helpers agree exactly with the IEEE order, with
//! the usual `total_cmp` refinement that `-0.0 < +0.0`.
//!
//! | helper       | use with                                  | NaN placement |
//! |--------------|-------------------------------------------|---------------|
//! | [`asc`]      | `sort_by`/`min_by` on minimized keys      | greatest      |
//! | [`desc`]     | best-first `sort_by` on maximized keys    | greatest      |
//! | [`for_max`]  | `max_by` on maximized keys                | least         |
//! | [`pair_asc`] | lexicographic `(f64, f64)` sorts          | greatest      |
//!
//! [`for_max`] places NaN *least* so that `Iterator::max_by` — which
//! keeps the last of equal maxima — never selects a NaN while preserving
//! the standard library's tie behaviour for non-NaN keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::cmp::Ordering;

/// Ascending total order; every NaN ranks greater than every non-NaN
/// (including `+inf`) and all NaNs compare equal.
///
/// Use for `sort_by` on minimized keys (losses, distances, costs) so NaN
/// lands last, and for `min_by` so NaN never wins the selection.
///
/// ```
/// let mut v = [2.0, f64::NAN, 1.0, f64::INFINITY];
/// v.sort_by(|a, b| afp_ord::asc(*a, *b));
/// assert_eq!(&v[..3], &[1.0, 2.0, f64::INFINITY]);
/// assert!(v[3].is_nan());
/// ```
#[inline]
pub fn asc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// Descending (best-first) total order for maximized keys; NaN still
/// ranks last.
///
/// Use for `sort_by` where the largest key should come first (fidelity
/// rankings): non-NaN keys sort descending, NaN keys sink to the end.
///
/// ```
/// let mut v = [0.2, f64::NAN, 0.9];
/// v.sort_by(|a, b| afp_ord::desc(*a, *b));
/// assert_eq!(&v[..2], &[0.9, 0.2]);
/// assert!(v[2].is_nan());
/// ```
#[inline]
pub fn desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Ascending total order with NaN ranked *least*; pass to
/// `Iterator::max_by` so a NaN key never wins while ties between non-NaN
/// keys keep the standard library's last-max behaviour.
///
/// ```
/// let best = [0.3, f64::NAN, 0.8, 0.8]
///     .iter()
///     .enumerate()
///     .max_by(|(_, a), (_, b)| afp_ord::for_max(**a, **b))
///     .map(|(i, _)| i);
/// assert_eq!(best, Some(3)); // last of the tied maxima, never the NaN
/// ```
#[inline]
pub fn for_max(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// Lexicographic ascending total order over `(f64, f64)` pairs, each
/// coordinate compared with [`asc`] (NaN greatest).
///
/// ```
/// use std::cmp::Ordering;
/// assert_eq!(afp_ord::pair_asc((1.0, 2.0), (1.0, 3.0)), Ordering::Less);
/// assert_eq!(afp_ord::pair_asc((f64::NAN, 0.0), (9.9, 9.9)), Ordering::Greater);
/// ```
#[inline]
pub fn pair_asc(a: (f64, f64), b: (f64, f64)) -> Ordering {
    asc(a.0, b.0).then_with(|| asc(a.1, b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAN: f64 = f64::NAN;
    const INF: f64 = f64::INFINITY;

    #[test]
    fn asc_matches_ieee_on_ordinary_values() {
        assert_eq!(asc(1.0, 2.0), Ordering::Less);
        assert_eq!(asc(2.0, 1.0), Ordering::Greater);
        assert_eq!(asc(1.5, 1.5), Ordering::Equal);
        assert_eq!(asc(-INF, INF), Ordering::Less);
        assert_eq!(asc(-0.0, 0.0), Ordering::Less); // total_cmp refinement
    }

    #[test]
    fn nan_ranks_worst_in_every_direction() {
        // Ascending (minimized keys): NaN greatest.
        assert_eq!(asc(NAN, INF), Ordering::Greater);
        assert_eq!(asc(INF, NAN), Ordering::Less);
        assert_eq!(asc(NAN, NAN), Ordering::Equal);
        assert_eq!(asc(-NAN, 0.0), Ordering::Greater); // sign of NaN ignored
                                                       // Descending (maximized keys): NaN still last.
        assert_eq!(desc(NAN, -INF), Ordering::Greater);
        assert_eq!(desc(0.9, NAN), Ordering::Less);
        // max_by selection: NaN least, so it never wins.
        assert_eq!(for_max(NAN, -INF), Ordering::Less);
        assert_eq!(for_max(1.0, NAN), Ordering::Greater);
    }

    #[test]
    fn desc_reverses_non_nan() {
        assert_eq!(desc(2.0, 1.0), Ordering::Less);
        assert_eq!(desc(1.0, 2.0), Ordering::Greater);
        assert_eq!(desc(1.0, 1.0), Ordering::Equal);
    }

    #[test]
    fn comparators_are_total_orders() {
        // Transitivity + antisymmetry over a value set that includes every
        // special case; sort_by panics on inconsistent comparators, so a
        // clean sort of all permutations is a strong witness.
        let vals = [NAN, -NAN, INF, -INF, 0.0, -0.0, 1.0, -1.0, 1e300];
        for cmp in [asc, desc, for_max] {
            let mut v = vals.to_vec();
            v.sort_by(|a, b| cmp(*a, *b));
            for i in 0..v.len() {
                for j in 0..v.len() {
                    let c = cmp(v[i], v[j]);
                    assert_eq!(c.reverse(), cmp(v[j], v[i]), "antisymmetry");
                    if i < j {
                        assert_ne!(c, Ordering::Greater, "sorted order violated");
                    }
                }
            }
        }
    }

    #[test]
    fn pair_order_is_lexicographic() {
        let mut pts = [(2.0, 1.0), (1.0, NAN), (1.0, 2.0), (NAN, 0.0)];
        pts.sort_by(|a, b| pair_asc(*a, *b));
        assert_eq!(pts[0], (1.0, 2.0));
        assert!(pts[1].1.is_nan() && pts[1].0 == 1.0);
        assert_eq!(pts[2], (2.0, 1.0));
        assert!(pts[3].0.is_nan());
    }

    #[test]
    fn min_by_never_picks_nan() {
        let v = [NAN, 3.0, 1.0, NAN];
        let m = v.iter().copied().min_by(|a, b| asc(*a, *b)).unwrap();
        assert_eq!(m, 1.0);
    }
}

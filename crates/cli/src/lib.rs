//! Implementation of the `afp` command-line tool.
//!
//! Subcommands (see `afp help`):
//!
//! * `library`  — enumerate an approximate-circuit library to Verilog + CSV
//! * `synth`    — ASIC/FPGA cost report for a structural Verilog file
//! * `error`    — behavioural error metrics of a circuit vs its golden
//!   function
//! * `map`      — LUT-map a Verilog file, verify equivalence, emit the
//!   mapped LUT netlist
//! * `flow`     — run the full ApproxFPGAs methodology on a library
//! * `serve`    — long-running characterization service (HTTP/1.1,
//!   keep-alive, optional `.afpm` model zoos for `GET /estimate`)
//! * `zoo`      — train a model zoo and persist it as a `.afpm` container
//! * `cache`    — inspect or migrate a characterization cache directory
//!
//! The parsing layer is deliberately dependency-free: flags are
//! `--name value` pairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

use afp_circuits::{build_library, ArithCircuit, ArithKind, LibrarySource, LibrarySpec};
use afp_netlist::Netlist;

/// A parsed command line: subcommand, flags and positional arguments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cli {
    /// The subcommand (first argument).
    pub command: String,
    /// `--flag value` pairs.
    pub flags: HashMap<String, String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
}

impl Cli {
    /// Parse raw arguments (without the program name).
    pub fn parse(args: &[String]) -> Cli {
        let mut cli = Cli {
            command: args.first().cloned().unwrap_or_default(),
            ..Cli::default()
        };
        let mut i = 1usize;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    cli.flags.insert(name.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    cli.flags.insert(name.to_string(), "true".to_string());
                    i += 1;
                }
            } else {
                cli.positional.push(args[i].clone());
                i += 1;
            }
        }
        cli
    }

    /// A flag value, or `default` when absent.
    pub fn flag_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    fn usize_flag(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
        }
    }

    fn kind_flag(&self) -> Result<ArithKind, String> {
        match self.flag_or("kind", "add") {
            "add" | "adder" => Ok(ArithKind::Adder),
            "mul" | "mult" | "multiplier" => Ok(ArithKind::Multiplier),
            other => Err(format!("--kind must be add|mul, got `{other}`")),
        }
    }
}

/// Top-level dispatch. Returns the text to print, or an error message.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, I/O
/// failures and parse errors.
pub fn run(args: &[String]) -> Result<String, String> {
    let cli = Cli::parse(args);
    match cli.command.as_str() {
        "library" => cmd_library(&cli),
        "synth" => cmd_synth(&cli),
        "error" => cmd_error(&cli),
        "map" => cmd_map(&cli),
        "flow" => cmd_flow(&cli),
        "serve" => cmd_serve(&cli),
        "zoo" => cmd_zoo(&cli),
        "cache" => cmd_cache(&cli),
        "targets" => cmd_targets(&cli),
        "help" | "" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

/// The help text.
pub fn usage() -> String {
    "afp — ApproxFPGAs reproduction CLI

USAGE:
  afp library --kind add|mul --width W --size N [--out DIR]
      Enumerate an approximate-circuit library; write one Verilog file per
      circuit plus library.csv when --out is given.
  afp synth FILE.v|FILE.bristol [--target asic|fpga|both]
      Parse a circuit (structural Verilog, or Bristol fashion for
      .bristol files) and report synthesis cost.
  afp error FILE.v|FILE.bristol --kind add|mul --width W
      Behavioural error metrics against the exact golden function.
  afp map FILE.v|FILE.bristol [--out MAPPED.v]
      LUT-map the circuit, verify LUT-network equivalence, optionally
      write the mapped netlist as LUT primitives.
  afp flow --kind add|mul --width W --size N [--fronts K] [--subset F]
           [--threads T] [--no-cache] [--cache-dir DIR]
           [--cache-format store|csv] [--target NAME] [--all-targets]
           [--library FILE.afps] [--paper-full] [--paper-scale F]
           [--shard N] [--report table|json|none] [--report-out PATH]
           [--report-normalized]
      Run the full ApproxFPGAs methodology and print the summary.
      --threads 0 (default) uses every core; results are identical for
      any thread count. --library streams a persisted .afps corpus
      shard-at-a-time instead of generating a library (at most --shard
      circuits resident at once; default 1024); --paper-full generates
      and persists the paper's full-scale six-library corpus (44,940
      8x8 multipliers and five smaller libraries) at --library's path
      (default results/paper_full.afps) and streams it — --paper-scale
      shrinks every library for smoke runs. A missing, torn or
      foreign-version corpus is a loud error, never a smaller run.
      --cache-dir persists the characterization cache
      across runs (an unusable directory is an error); --cache-format
      picks the disk tier: the binary frame store (default) or the
      legacy CSV file — both lossless, identical outcomes. --no-cache
      disables memoization. --target retargets the FPGA model to a named
      device profile (see `afp targets`; default lut6-7series);
      --all-targets sweeps every registry profile and prints a
      per-target comparison instead of one run's summary. --report table
      (default) appends a per-stage timing table; --report json writes
      the structured run report to --report-out (default
      results/run_report.json) and prints only the JSON document;
      --report-normalized strips the nondeterministic surfaces (stage
      timings, steals, mapper reuses, shard shape) from the JSON so
      documents from different runs, machines, shard sizes or library
      sources compare byte-for-byte; --report none skips tracing
      entirely.
  afp serve [--addr HOST:PORT] [--socket PATH] [--threads T]
            [--queue-depth N] [--target-default NAME] [--cache-dir DIR]
            [--cache-format store|csv] [--models ZOO.afpm[,ZOO2.afpm..]]
            [--estimate-only] [--keepalive-requests N]
            [--idle-timeout-ms MS]
      Run the characterization service: a long-lived daemon answering
      HTTP/1.1 characterization requests (GET /characterize?spec=
      mul8:trunc:3&target=NAME, POST /characterize with a Bristol body,
      POST /characterize/batch with an .afps body, GET /estimate?spec=..
      for the model fast path, GET /stats, POST /shutdown). Connections
      are keep-alive: one socket serves many (optionally pipelined)
      requests, bounded by --keepalive-requests (default 1000) per
      connection and --idle-timeout-ms (default 5000) between requests;
      `Connection: close` is honored per request. Identical concurrent
      requests coalesce into one in-flight characterization; connections
      beyond --queue-depth (default 64) are answered 429 instead of
      queueing unboundedly; shutdown drains every accepted request —
      including pipelined requests already received — before exiting.
      --models loads persisted `.afpm` zoos (see `afp zoo train`) so
      GET /estimate answers from the trained models in microseconds with
      zero synthesis; a request no zoo covers falls back to full
      characterization, or is answered 404 under --estimate-only. --addr
      (default 127.0.0.1:8080) and --socket (Unix-domain) are mutually
      exclusive; --target-default (default lut6-7series) applies when a
      request omits ?target=; --cache-dir/--cache-format share the warm
      tier with `afp flow`.
  afp zoo train --save MODELS.afpm [--kind add|mul] [--width W]
          [--size N] [--target NAME] [--models ML1,ML14,..] [--subset F]
          [--tolerance T] [--threads T]
      Characterize a library, train the model zoo on a --subset fraction
      (default 0.5), persist it as a sealed `.afpm` container at --save,
      then reload it and verify the round trip is byte-exact. --models
      picks Table I models by label (default: all 18); --target (default
      lut6-7series) fixes the FPGA ground truth the models learn.
      `afp serve --models MODELS.afpm` serves GET /estimate from the
      result.
  afp cache stats DIR
      Describe the characterization cache in DIR: entries, bytes and
      format version of the binary store and/or legacy CSV file.
  afp cache migrate DIR
      Migrate a legacy CSV cache in DIR to the binary store, once
      (idempotent; the CSV is kept as characterization.csv.migrated).
  afp targets [NAME]
      List the named device profiles the flow can target, or describe
      one profile in detail.
  afp help
      This text.
"
    .to_string()
}

fn cmd_library(cli: &Cli) -> Result<String, String> {
    let kind = cli.kind_flag()?;
    let width = cli.usize_flag("width", 8)?;
    let size = cli.usize_flag("size", 100)?;
    let spec = LibrarySpec::new(kind, width, size);
    let lib = build_library(&spec);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "generated {} circuits ({}{}u)",
        lib.len(),
        kind.mnemonic(),
        width
    );
    if let Some(dir) = cli.flags.get("out") {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        let mut csv = String::from("name,gates,depth\n");
        for c in &lib {
            let path = dir.join(format!("{}.v", c.name()));
            std::fs::write(&path, afp_netlist::export::to_verilog(c.netlist()))
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            let _ = writeln!(
                csv,
                "{},{},{}",
                c.name(),
                c.netlist().num_logic_gates(),
                afp_netlist::analyze::depth(c.netlist())
            );
        }
        std::fs::write(dir.join("library.csv"), csv)
            .map_err(|e| format!("cannot write library.csv: {e}"))?;
        let _ = writeln!(
            out,
            "wrote {} Verilog files + library.csv to {dir:?}",
            lib.len()
        );
    } else {
        for c in lib.iter().take(10) {
            let _ = writeln!(
                out,
                "  {:<30} {:>4} gates  depth {}",
                c.name(),
                c.netlist().num_logic_gates(),
                afp_netlist::analyze::depth(c.netlist())
            );
        }
        if lib.len() > 10 {
            let _ = writeln!(
                out,
                "  ... ({} more; use --out DIR to export)",
                lib.len() - 10
            );
        }
    }
    Ok(out)
}

fn load_netlist(cli: &Cli) -> Result<Netlist, String> {
    let path = cli
        .positional
        .first()
        .ok_or("expected a circuit file argument (.v or .bristol)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".bristol") {
        afp_netlist::bristol::from_bristol(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        afp_netlist::parse::from_verilog(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_synth(cli: &Cli) -> Result<String, String> {
    let netlist = load_netlist(cli)?;
    let target = cli.flag_or("target", "both");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} inputs, {} outputs, {} gates",
        netlist.name(),
        netlist.num_inputs(),
        netlist.num_outputs(),
        netlist.num_logic_gates()
    );
    if target == "asic" || target == "both" {
        let r = afp_asic::synthesize_asic(&netlist, &afp_asic::AsicConfig::default());
        let _ = writeln!(
            out,
            "ASIC: {:.2} um2, {:.3} ns, {:.4} mW ({} cells)",
            r.area_um2, r.delay_ns, r.power_mw, r.cells
        );
    }
    if target == "fpga" || target == "both" {
        let r = afp_fpga::synthesize_fpga(&netlist, &afp_fpga::FpgaConfig::default());
        let _ = writeln!(
            out,
            "FPGA: {} LUTs, {} slices, {} levels, {:.3} ns, {:.3} mW (est. synth {:.0} s)",
            r.luts, r.slices, r.depth_levels, r.delay_ns, r.power_mw, r.synth_time_s
        );
    }
    if !(target == "asic" || target == "fpga" || target == "both") {
        return Err(format!("--target must be asic|fpga|both, got `{target}`"));
    }
    Ok(out)
}

fn cmd_error(cli: &Cli) -> Result<String, String> {
    let netlist = load_netlist(cli)?;
    let kind = cli.kind_flag()?;
    let width = cli.usize_flag("width", 8)?;
    if netlist.num_inputs() != 2 * width {
        return Err(format!(
            "circuit has {} inputs, expected {} for width {width}",
            netlist.num_inputs(),
            2 * width
        ));
    }
    if netlist.num_outputs() != kind.out_width(width) {
        return Err(format!(
            "circuit has {} outputs, expected {}",
            netlist.num_outputs(),
            kind.out_width(width)
        ));
    }
    let circuit = ArithCircuit::new(kind, width, netlist);
    let m = afp_error::analyze(&circuit, &afp_error::ErrorConfig::default());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} vs exact {}{}u:",
        circuit.name(),
        kind.mnemonic(),
        width
    );
    let _ = writeln!(
        out,
        "  samples:     {} ({})",
        m.samples,
        if m.exhaustive {
            "exhaustive"
        } else {
            "stratified"
        }
    );
    let _ = writeln!(out, "  MED:         {:.6}", m.med);
    let _ = writeln!(out, "  MAE:         {:.3}", m.mae);
    let _ = writeln!(out, "  WCE:         {}", m.wce);
    let _ = writeln!(out, "  MRE:         {:.4}", m.mre);
    let _ = writeln!(out, "  error prob.: {:.4}", m.error_prob);
    let _ = writeln!(out, "  bias:        {:+.3}", m.bias);
    Ok(out)
}

fn cmd_map(cli: &Cli) -> Result<String, String> {
    let netlist = load_netlist(cli)?;
    let cfg = afp_fpga::FpgaConfig::default();
    let mapping = afp_fpga::map::map_luts(&netlist, &cfg);
    let programmed = afp_fpga::luts::program_luts(&netlist, &mapping);
    let mismatches = afp_fpga::luts::verify_mapping(&netlist, &programmed, 512, 0xAF9);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} LUTs, {} levels, verification {} (512 random vectors)",
        netlist.name(),
        mapping.luts.len(),
        mapping.depth,
        if mismatches == 0 { "PASSED" } else { "FAILED" }
    );
    if mismatches != 0 {
        return Err(format!(
            "mapping verification failed on {mismatches} vectors"
        ));
    }
    if let Some(path) = cli.flags.get("out") {
        std::fs::write(path, afp_fpga::luts::to_lut_verilog(&netlist, &programmed))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "wrote mapped netlist to {path}");
    }
    Ok(out)
}

fn cmd_targets(cli: &Cli) -> Result<String, String> {
    let mut out = String::new();
    if let Some(name) = cli.positional.first() {
        let p = afp_fpga::target::named(name)
            .ok_or_else(|| approxfpgas::UnknownTargetError { name: name.clone() }.to_string())?;
        let _ = writeln!(out, "{}: {}", p.name, p.description);
        let _ = writeln!(out, "  LUT inputs (K):    {}", p.arch.lut_inputs);
        let _ = writeln!(out, "  LUTs per slice:    {}", p.arch.luts_per_slice);
        let _ = writeln!(out, "  LUT delay:         {:.3} ns", p.arch.lut_delay_ns);
        let _ = writeln!(
            out,
            "  routing delay:     {:.3} ns base + {:.3} ns/ln(1+fanout)",
            p.arch.route_base_ns, p.arch.route_fanout_ns
        );
        let _ = writeln!(
            out,
            "  dynamic energy:    {:.2} pJ/LUT toggle + {:.2} pJ/route toggle",
            p.arch.lut_energy_pj, p.arch.route_energy_pj
        );
        let _ = writeln!(
            out,
            "  static power:      {:.1} uW/LUT",
            p.arch.lut_static_uw
        );
        let _ = writeln!(out, "  default clock:     {:.0} MHz", p.clock_mhz);
        let _ = writeln!(out, "  P&R jitter:        +/-{:.0}%", p.pnr_jitter * 100.0);
        if p.name == afp_fpga::DEFAULT_TARGET {
            let _ = writeln!(
                out,
                "  (default target; historical goldens are pinned to it)"
            );
        }
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "{:<18} {:>2} {:>9} {:>11} {:>9}  description",
        "name", "K", "LUT/slice", "clock [MHz]", "jitter"
    );
    for p in afp_fpga::target::registry() {
        let _ = writeln!(
            out,
            "{:<18} {:>2} {:>9} {:>11.0} {:>8.0}%  {}{}",
            p.name,
            p.arch.lut_inputs,
            p.arch.luts_per_slice,
            p.clock_mhz,
            p.pnr_jitter * 100.0,
            p.description,
            if p.name == afp_fpga::DEFAULT_TARGET {
                " [default]"
            } else {
                ""
            }
        );
    }
    let _ = writeln!(
        out,
        "\nuse `afp targets NAME` for details, `afp flow --target NAME` to retarget the flow"
    );
    Ok(out)
}

/// Default location of the generated paper-full corpus (`afp flow
/// --paper-full` without `--library`).
pub const PAPER_FULL_CORPUS: &str = "results/paper_full.afps";

/// Resolve the `--library` / `--paper-full` flags into a streamed
/// [`LibrarySource`], generating and persisting the paper-full corpus
/// first when asked. Returns the source plus human-readable notes about
/// corpus generation (empty when nothing was generated).
fn stored_source(cli: &Cli, threads: usize) -> Result<(Option<LibrarySource>, String), String> {
    let library_path = cli.flags.get("library").map(std::path::PathBuf::from);
    let paper_full = cli.flag_or("paper-full", "false") == "true";
    if !paper_full {
        if cli.flags.contains_key("paper-scale") {
            return Err("--paper-scale only applies together with --paper-full".to_string());
        }
        return Ok((library_path.map(LibrarySource::Stored), String::new()));
    }
    let scale: f64 = cli
        .flag_or("paper-scale", "1")
        .parse()
        .map_err(|_| "--paper-scale expects a fraction in (0, 1]".to_string())?;
    if !(scale.is_finite() && scale > 0.0 && scale <= 1.0) {
        return Err(format!(
            "--paper-scale expects a fraction in (0, 1], got `{scale}`"
        ));
    }
    let path = library_path.unwrap_or_else(|| std::path::PathBuf::from(PAPER_FULL_CORPUS));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let rt = afp_runtime::Runtime::new(threads);
    let specs = afp_circuits::paper_full_specs(scale);
    let mut notes = String::new();
    match afp_circuits::ensure_library(&path, &specs, &rt) {
        Ok(Some(summary)) => {
            let _ = writeln!(
                notes,
                "generated paper-full corpus at {} (scale {scale}): {} circuits written, \
                 {} structural duplicates elided",
                path.display(),
                summary.written,
                summary.deduplicated
            );
        }
        Ok(None) => {
            let _ = writeln!(notes, "reusing existing corpus {}", path.display());
        }
        Err(e) => return Err(format!("cannot prepare {}: {e}", path.display())),
    }
    Ok((Some(LibrarySource::Stored(path)), notes))
}

fn cmd_flow(cli: &Cli) -> Result<String, String> {
    let kind = cli.kind_flag()?;
    let width = cli.usize_flag("width", 8)?;
    let size = cli.usize_flag("size", 300)?;
    let fronts = cli.usize_flag("fronts", 3)?;
    let threads = cli.usize_flag("threads", 0)?;
    let shard = cli.usize_flag("shard", 0)?;
    // 0 is the internal "use the default" sentinel; accepting it from the
    // command line would silently run with 1024-circuit shards instead of
    // what the user plainly asked for.
    if cli.flags.get("shard").map(String::as_str) == Some("0") {
        return Err(format!(
            "--shard 0 is not a valid shard size (it would silently fall back to the \
             {}-circuit default); pass --shard N with N >= 1, or omit the flag",
            approxfpgas::DEFAULT_SHARD_CIRCUITS
        ));
    }
    for serve_only in [
        "addr",
        "socket",
        "queue-depth",
        "target-default",
        "models",
        "estimate-only",
        "keepalive-requests",
        "idle-timeout-ms",
    ] {
        if cli.flags.contains_key(serve_only) {
            return Err(format!(
                "--{serve_only} is an `afp serve` flag; `afp flow` does not accept it"
            ));
        }
    }
    let (source, corpus_notes) = stored_source(cli, threads)?;
    if source.is_some() {
        for generated_only in ["kind", "width", "size"] {
            if cli.flags.contains_key(generated_only) {
                return Err(format!(
                    "--{generated_only} describes a generated library; it cannot be combined \
                     with --library/--paper-full (the corpus already fixes the circuits)"
                ));
            }
        }
    }
    let subset: f64 = cli
        .flag_or("subset", "0.1")
        .parse()
        .map_err(|_| "--subset expects a fraction".to_string())?;
    let use_cache = cli.flag_or("no-cache", "false") != "true";
    let cache_dir = cli.flags.get("cache-dir").map(std::path::PathBuf::from);
    let cache_backend = match cli.flag_or("cache-format", "store") {
        "store" => approxfpgas::CacheBackend::Store,
        "csv" => approxfpgas::CacheBackend::Csv,
        other => return Err(format!("--cache-format must be store|csv, got `{other}`")),
    };
    let report_normalized = cli.flag_or("report-normalized", "false") == "true";
    let report_mode = cli.flag_or("report", "table");
    if !matches!(report_mode, "table" | "json" | "none") {
        return Err(format!(
            "--report must be table|json|none, got `{report_mode}`"
        ));
    }
    let report_out = std::path::PathBuf::from(cli.flag_or("report-out", "results/run_report.json"));
    let explicit_cache_dir = cache_dir.is_some();
    let all_targets = cli.flag_or("all-targets", "false") == "true";
    let target_name = cli.flag_or("target", afp_fpga::DEFAULT_TARGET).to_string();
    if all_targets && cli.flags.contains_key("target") {
        return Err("--target and --all-targets are mutually exclusive".to_string());
    }
    if all_targets && source.is_some() {
        return Err(
            "--all-targets sweeps generated libraries; it cannot be combined with \
             --library/--paper-full"
                .to_string(),
        );
    }
    let profile = afp_fpga::target::named(&target_name)
        .ok_or_else(|| approxfpgas::UnknownTargetError { name: target_name }.to_string())?;
    let mut config = approxfpgas::FlowConfig {
        library: LibrarySpec::new(kind, width, size),
        fronts,
        subset_fraction: subset,
        threads,
        shard_circuits: shard,
        use_cache,
        cache_dir,
        cache_backend,
        ..approxfpgas::FlowConfig::default()
    };
    config.fpga = profile.apply(&config.fpga);
    if all_targets {
        return cmd_flow_all_targets(&config);
    }
    // A cache dir the user asked for must work: fail loudly instead of
    // silently degrading to a memory-only cache.
    let flow = if explicit_cache_dir {
        approxfpgas::Flow::try_new(config.clone())
            .map_err(|e| format!("cannot open --cache-dir: {e}"))?
    } else {
        approxfpgas::Flow::new(config.clone())
    };
    let recorder = if report_mode == "none" {
        afp_obs::Recorder::disabled()
    } else {
        afp_obs::Recorder::enabled()
    };
    let outcome = match &source {
        Some(src) => flow
            .run_source_traced(src, &recorder)
            .map_err(|e| format!("cannot stream the circuit corpus: {e}"))?,
        None => flow.run_traced(&recorder),
    };
    if report_mode == "json" {
        // Stdout carries the JSON document and nothing else, so the
        // output pipes straight into `python3 -m json.tool`, `jq`, etc.
        let mut report = approxfpgas::run_report(&config, &outcome, &recorder);
        if report_normalized {
            report = approxfpgas::report::normalized(&report);
        }
        report.write_json(&report_out).map_err(|e| e.to_string())?;
        let mut doc = report.to_json();
        doc.push('\n');
        return Ok(doc);
    }
    let mut out = String::new();
    out.push_str(&corpus_notes);
    match &source {
        Some(LibrarySource::Stored(path)) => {
            let _ = writeln!(
                out,
                "corpus {} x{}: synthesized {}/{} circuits",
                path.display(),
                outcome.records.len(),
                outcome.time.flow_count,
                outcome.time.exhaustive_count
            );
        }
        _ => {
            let _ = writeln!(
                out,
                "library {}{}u x{}: synthesized {}/{} circuits",
                kind.mnemonic(),
                width,
                outcome.records.len(),
                outcome.time.flow_count,
                outcome.time.exhaustive_count
            );
        }
    }
    let _ = writeln!(
        out,
        "target: {} (K={}, {:.0} MHz)",
        config.fpga.target, config.fpga.arch.lut_inputs, config.fpga.clock_mhz
    );
    let _ = writeln!(
        out,
        "exploration: {:.1} h flow vs {:.1} h exhaustive ({})",
        outcome.time.flow_s() / 3600.0,
        outcome.time.exhaustive_s / 3600.0,
        afp_obs::fmt_ratio(outcome.time.speedup())
    );
    for (param, models) in &outcome.selected_models {
        let names: Vec<&str> = models.iter().map(|m| m.label()).collect();
        let _ = writeln!(
            out,
            "{param:?}: models [{}], coverage {:.0}%, front size {}",
            names.join(", "),
            100.0 * outcome.coverage[param],
            outcome.final_fronts[param].len()
        );
    }
    let rt = &outcome.runtime;
    let _ = writeln!(
        out,
        "runtime: {} tasks ({} steals), cache {} hits / {} misses, \
         {} ASIC + {} FPGA synths, {} error analyses, {:.1} MiB simulated",
        rt.tasks_executed,
        rt.steals,
        rt.cache_hits,
        rt.cache_misses,
        rt.asic_synths,
        rt.fpga_synths,
        rt.error_analyses,
        rt.bytes_simulated as f64 / (1024.0 * 1024.0)
    );
    if rt.cache_write_errors > 0 {
        let _ = writeln!(
            out,
            "warning: {} cache entries were not persisted to disk (disk append failed; \
             see cache.write_errors in the report)",
            rt.cache_write_errors
        );
        if let Some(err) = &outcome.cache_last_error {
            let _ = writeln!(out, "warning: last cache write error: {err}");
        }
    }
    let _ = writeln!(
        out,
        "mapper: {} cut merges ({} sig-rejected, {} dominance-pruned), {} mapper reuses",
        rt.cuts_merged, rt.cuts_sig_rejected, rt.cuts_dominance_pruned, rt.mapper_reuses
    );
    let _ = writeln!(
        out,
        "sim: {} tape reuses, {} structural dedup hits",
        rt.sim_tape_reuses, rt.structural_dedup_hits
    );
    if rt.shards_streamed > 0 {
        let _ = writeln!(
            out,
            "streaming: {} shards, peak {} circuits resident",
            rt.shards_streamed, rt.peak_resident_circuits
        );
    }
    let dropped: usize = outcome.dropped_models.values().map(|v| v.len()).sum();
    let _ = writeln!(
        out,
        "quarantine: {} non-finite estimates excluded, {} models dropped",
        rt.estimates_quarantined, dropped
    );
    if report_mode == "table" {
        let report = approxfpgas::run_report(&config, &outcome, &recorder);
        let _ = writeln!(out, "\nper-stage timing:");
        out.push_str(&report.render_table());
        if cli.flags.contains_key("report-out") {
            let written = report.write_json(&report_out).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "wrote run report to {}", written.display());
        }
    }
    Ok(out)
}

fn cmd_serve(cli: &Cli) -> Result<String, String> {
    // Flow-shaped flags on `serve` are a sign the user mixed up the two
    // subcommands; reject them loudly instead of silently ignoring them.
    for flow_only in [
        "library",
        "paper-full",
        "paper-scale",
        "shard",
        "kind",
        "width",
        "size",
        "fronts",
        "subset",
        "all-targets",
        "no-cache",
        "report",
        "report-out",
        "report-normalized",
    ] {
        if cli.flags.contains_key(flow_only) {
            return Err(format!(
                "--{flow_only} is an `afp flow` flag; `afp serve` does not accept it"
            ));
        }
    }
    if cli.flags.contains_key("target") {
        return Err(
            "`afp serve` takes the target per request (?target=NAME); use --target-default \
             for the fallback profile"
                .to_string(),
        );
    }
    if cli.flags.contains_key("addr") && cli.flags.contains_key("socket") {
        return Err("--addr and --socket are mutually exclusive; pick one listener".to_string());
    }
    let threads = cli.usize_flag("threads", 0)?;
    let queue_depth = cli.usize_flag("queue-depth", 64)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1 (0 would reject every request)".to_string());
    }
    let default_target = cli
        .flag_or("target-default", afp_fpga::DEFAULT_TARGET)
        .to_string();
    if afp_fpga::target::named(&default_target).is_none() {
        return Err(approxfpgas::UnknownTargetError {
            name: default_target,
        }
        .to_string());
    }
    let cache_dir = cli.flags.get("cache-dir").map(std::path::PathBuf::from);
    let cache_backend = match cli.flag_or("cache-format", "store") {
        "store" => approxfpgas::CacheBackend::Store,
        "csv" => approxfpgas::CacheBackend::Csv,
        other => return Err(format!("--cache-format must be store|csv, got `{other}`")),
    };
    let models: Vec<std::path::PathBuf> = cli
        .flags
        .get("models")
        .map(|raw| {
            raw.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(std::path::PathBuf::from)
                .collect()
        })
        .unwrap_or_default();
    let estimate_only = cli.flag_or("estimate-only", "false") == "true";
    if estimate_only && models.is_empty() {
        return Err(
            "--estimate-only without --models would answer 404 to every estimate; \
             pass at least one .afpm (see `afp zoo train`)"
                .to_string(),
        );
    }
    let keepalive_requests = cli.usize_flag("keepalive-requests", 1000)?;
    if keepalive_requests == 0 {
        return Err("--keepalive-requests must be at least 1".to_string());
    }
    let idle_timeout_ms = cli.usize_flag("idle-timeout-ms", 5000)?;
    if idle_timeout_ms == 0 {
        return Err("--idle-timeout-ms must be at least 1".to_string());
    }
    let bind = match cli.flags.get("socket") {
        Some(path) => {
            #[cfg(unix)]
            {
                afp_serve::Bind::Unix(std::path::PathBuf::from(path))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("--socket requires a Unix platform".to_string());
            }
        }
        None => afp_serve::Bind::Tcp(cli.flag_or("addr", "127.0.0.1:8080").to_string()),
    };
    let model_count = models.len();
    let handle = afp_serve::serve(afp_serve::ServeConfig {
        bind,
        threads,
        queue_depth,
        default_target: default_target.clone(),
        cache_dir,
        cache_backend,
        models,
        estimate_only,
        keepalive_requests,
        keepalive_idle: std::time::Duration::from_millis(idle_timeout_ms as u64),
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    // Announce the endpoint eagerly — `run` only prints on exit, and the
    // daemon blocks here until something POSTs /shutdown.
    let models_note = if model_count > 0 {
        format!("; {model_count} model zoo(s) loaded for /estimate")
    } else {
        String::new()
    };
    match handle.addr() {
        Some(addr) => println!(
            "afp serve: listening on http://{addr} (default target {default_target}\
             {models_note}; POST /shutdown to stop)"
        ),
        None => println!(
            "afp serve: listening on {} (default target {default_target}{models_note}; \
             POST /shutdown to stop)",
            cli.flag_or("socket", "<socket>")
        ),
    }
    let snap = handle.join();
    Ok(format!(
        "serve drained: {} requests served ({} coalesced, {} keep-alive reuses, \
         {} queue rejections, inflight peak {}), {} estimates from models \
         ({} estimate-cache hits), {} ASIC synths, cache {} hits / {} misses\n",
        snap.requests_served,
        snap.requests_coalesced,
        snap.keepalive_reuses,
        snap.queue_rejections,
        snap.inflight_peak,
        snap.estimates_served,
        snap.model_cache_hits,
        snap.asic_synths,
        snap.cache_hits,
        snap.cache_misses
    ))
}

/// `afp zoo` — train and persist model zoos (`.afpm` containers).
fn cmd_zoo(cli: &Cli) -> Result<String, String> {
    match cli.positional.first().map(String::as_str) {
        Some("train") => cmd_zoo_train(cli),
        Some(other) => Err(format!(
            "unknown `afp zoo` subcommand `{other}` (expected `train`)"
        )),
        None => Err("usage: afp zoo train --save MODELS.afpm (see `afp help`)".to_string()),
    }
}

/// Parse a comma-separated `--models ML1,ML14` list of Table I labels.
fn parse_model_list(raw: &str) -> Result<Vec<afp_ml::MlModelId>, String> {
    raw.split(',')
        .map(str::trim)
        .filter(|tok| !tok.is_empty())
        .map(|tok| {
            afp_ml::MlModelId::ALL
                .iter()
                .copied()
                .find(|m| m.label().eq_ignore_ascii_case(tok))
                .ok_or_else(|| format!("unknown model `{tok}` (expected ML1..ML18)"))
        })
        .collect()
}

fn cmd_zoo_train(cli: &Cli) -> Result<String, String> {
    use approxfpgas::record::FpgaParam;
    let Some(save) = cli.flags.get("save") else {
        return Err("--save PATH.afpm is required: the persisted zoo is what \
             `afp serve --models` loads"
            .to_string());
    };
    let kind = cli.kind_flag()?;
    let width = cli.usize_flag("width", 8)?;
    let size = cli.usize_flag("size", 300)?;
    let threads = cli.usize_flag("threads", 0)?;
    let subset: f64 = cli
        .flag_or("subset", "0.5")
        .parse()
        .map_err(|_| "--subset expects a fraction".to_string())?;
    let tolerance: f64 = cli
        .flag_or("tolerance", "0.01")
        .parse()
        .map_err(|_| "--tolerance expects a number".to_string())?;
    let target_name = cli.flag_or("target", afp_fpga::DEFAULT_TARGET).to_string();
    let profile = afp_fpga::target::named(&target_name).ok_or_else(|| {
        approxfpgas::UnknownTargetError {
            name: target_name.clone(),
        }
        .to_string()
    })?;
    let models = match cli.flags.get("models") {
        Some(raw) => parse_model_list(raw)?,
        None => afp_ml::MlModelId::ALL.to_vec(),
    };
    if models.is_empty() {
        return Err("--models lists no models; drop the flag to train all 18".to_string());
    }

    let spec = LibrarySpec::new(kind, width, size);
    let lib = build_library(&spec);
    let rt = afp_runtime::Runtime::new(threads);
    let fpga = profile.apply(&afp_fpga::FpgaConfig::default());
    let records = approxfpgas::dataset::characterize_library_with(
        &lib,
        &afp_asic::AsicConfig::default(),
        &fpga,
        &afp_error::ErrorConfig::default(),
        &rt,
        None,
    );
    let sub = approxfpgas::dataset::sample_subset(records.len(), subset, 24.min(records.len()), 7);
    let (train, val) = approxfpgas::dataset::train_validate_split(&sub, 0.8, 7);
    let zoo = approxfpgas::fidelity::train_zoo_with(
        &records,
        &train,
        &val,
        &models,
        tolerance,
        &rt,
        &afp_obs::Recorder::disabled(),
    );

    let path = Path::new(save);
    let coverage = vec![(kind, width)];
    let saved_count = approxfpgas::save_zoo(path, &zoo, &target_name, &coverage)
        .map_err(|e| format!("cannot save zoo to {}: {e}", path.display()))?;
    // Reload and prove the round trip is exact: every persisted model
    // must reproduce its in-memory estimates bit-for-bit.
    let loaded = approxfpgas::load_zoo(path)
        .map_err(|e| format!("saved zoo at {} fails to reload: {e}", path.display()))?;
    let layout = zoo.layout();
    let mut verified = 0usize;
    for rec in records.iter().take(16) {
        let features = approxfpgas::record::extract_features(rec, layout);
        for &model in &models {
            for param in FpgaParam::ALL {
                let (Some(a), Some(b)) = (
                    zoo.estimate_row(model, param, &features),
                    loaded.zoo.estimate_row(model, param, &features),
                ) else {
                    continue;
                };
                if a.to_bits() != b.to_bits() {
                    return Err(format!(
                        "round-trip drift: {} / {} differs after save/load of {}",
                        model.label(),
                        param.label(),
                        path.display()
                    ));
                }
                verified += 1;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trained {} model(s) x {} params on {}{}u x{} (subset {}: {} train / {} validate, target {})",
        models.len(),
        FpgaParam::ALL.len(),
        kind.mnemonic(),
        width,
        records.len(),
        sub.len(),
        train.len(),
        val.len(),
        target_name
    );
    for param in FpgaParam::ALL {
        if let Some(best) = loaded.zoo.top_models(param, 1, true).first() {
            let _ = writeln!(out, "  best {}: {}", param.label(), best.label());
        }
    }
    let _ = writeln!(
        out,
        "saved {saved_count} model records to {} (sealed .afpm, coverage {}{}u)",
        path.display(),
        kind.mnemonic(),
        width
    );
    let _ = writeln!(
        out,
        "round-trip verified: {verified} estimates byte-identical"
    );
    Ok(out)
}

fn cmd_flow_all_targets(base: &approxfpgas::FlowConfig) -> Result<String, String> {
    use approxfpgas::record::FpgaParam;
    let set = approxfpgas::TargetSet::all();
    let sweep = approxfpgas::sweep_targets(base, &set);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "target sweep: {} profiles, library {}{}u x{}",
        sweep.runs.len(),
        base.library.kind.mnemonic(),
        base.library.width,
        sweep
            .runs
            .first()
            .map(|r| r.outcome.records.len())
            .unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "target", "latency", "power", "area", "mean", "synth", "front sizes"
    );
    for run in &sweep.runs {
        let o = &run.outcome;
        let pct = |p: FpgaParam| 100.0 * o.coverage.get(&p).copied().unwrap_or(0.0);
        let fronts: Vec<String> = FpgaParam::ALL
            .iter()
            .map(|p| format!("{}", o.final_fronts.get(p).map(|f| f.len()).unwrap_or(0)))
            .collect();
        let _ = writeln!(
            out,
            "{:<18} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}% {:>6}/{:<4} {:>12}",
            run.target,
            pct(FpgaParam::Latency),
            pct(FpgaParam::Power),
            pct(FpgaParam::Area),
            100.0 * o.mean_coverage(),
            o.time.flow_count,
            o.time.exhaustive_count,
            fronts.join("/")
        );
    }
    let _ = writeln!(
        out,
        "\ncoverage = share of each target's true pareto front recovered; front \
         sizes are latency/power/area.\nsee `cross_target` (afp-bench) for the \
         train-on-A / evaluate-on-B transfer matrix."
    );
    Ok(out)
}

fn cmd_cache(cli: &Cli) -> Result<String, String> {
    let action = cli
        .positional
        .first()
        .map(String::as_str)
        .ok_or("expected `afp cache stats DIR` or `afp cache migrate DIR`")?;
    let dir = cli
        .positional
        .get(1)
        .ok_or("expected a cache directory argument")?;
    let dir = Path::new(dir);
    let store_path = dir.join(approxfpgas::cache::STORE_FILE);
    let csv_path = dir.join(approxfpgas::cache::CACHE_FILE);
    match action {
        "stats" => {
            let mut out = String::new();
            let _ = writeln!(out, "cache directory: {}", dir.display());
            match afp_store::inspect(&store_path) {
                Ok(info) => {
                    let _ = writeln!(
                        out,
                        "store: {} — {} entries, {} bytes (format v{}, records v{}, {}{})",
                        approxfpgas::cache::STORE_FILE,
                        info.records,
                        info.bytes,
                        info.format_version,
                        info.record_version,
                        if info.sealed { "sealed" } else { "unsealed" },
                        if info.truncated {
                            ", torn tail — repaired on next open"
                        } else {
                            ""
                        }
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    let _ = writeln!(out, "store: absent");
                }
                Err(e) => return Err(format!("cannot inspect {}: {e}", store_path.display())),
            }
            match std::fs::read_to_string(&csv_path) {
                Ok(text) => {
                    let rows = text.lines().count().saturating_sub(1);
                    let _ = writeln!(
                        out,
                        "csv: {} — {} entries, {} bytes (legacy; run `afp cache migrate` \
                         or any store-backed flow to convert)",
                        approxfpgas::cache::CACHE_FILE,
                        rows,
                        text.len()
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    let _ = writeln!(out, "csv: absent");
                }
                Err(e) => return Err(format!("cannot read {}: {e}", csv_path.display())),
            }
            Ok(out)
        }
        "migrate" => {
            let summary = approxfpgas::CharacterizationCache::migrate_csv_cache(dir)
                .map_err(|e| format!("migration failed: {e}"))?;
            let mut out = String::new();
            if summary.performed {
                let _ = writeln!(
                    out,
                    "migrated {} entries from {} to {} (CSV kept as {}.migrated)",
                    summary.migrated,
                    approxfpgas::cache::CACHE_FILE,
                    approxfpgas::cache::STORE_FILE,
                    approxfpgas::cache::CACHE_FILE
                );
            } else {
                let _ = writeln!(
                    out,
                    "nothing to migrate (no legacy CSV, or the store already exists)"
                );
            }
            Ok(out)
        }
        other => Err(format!("unknown cache action `{other}` (stats|migrate)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_splits_flags_and_positionals() {
        let cli = Cli::parse(&args(&["synth", "file.v", "--target", "fpga", "--verbose"]));
        assert_eq!(cli.command, "synth");
        assert_eq!(cli.positional, vec!["file.v"]);
        assert_eq!(cli.flag_or("target", "x"), "fpga");
        assert_eq!(cli.flag_or("verbose", "false"), "true");
        assert_eq!(cli.flag_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn help_lists_all_commands() {
        let text = run(&args(&["help"])).unwrap();
        for cmd in [
            "library", "synth", "error", "map", "flow", "serve", "zoo", "cache", "targets",
        ] {
            assert!(text.contains(cmd), "missing {cmd}");
        }
        assert!(text.contains("--target"), "{text}");
        assert!(text.contains("--all-targets"), "{text}");
        assert!(text.contains("--cache-format"), "{text}");
        assert!(text.contains("--report-normalized"), "{text}");
        assert!(text.contains("--library"), "{text}");
        assert!(text.contains("--paper-full"), "{text}");
        assert!(text.contains("--paper-scale"), "{text}");
        assert!(text.contains("--shard"), "{text}");
        assert!(text.contains("--queue-depth"), "{text}");
        assert!(text.contains("--target-default"), "{text}");
        assert!(text.contains("--models"), "{text}");
        assert!(text.contains("--estimate-only"), "{text}");
        assert!(text.contains("--keepalive-requests"), "{text}");
        assert!(text.contains("--idle-timeout-ms"), "{text}");
        assert!(text.contains("zoo train"), "{text}");
        assert!(text.contains("/estimate"), "{text}");
    }

    #[test]
    fn flow_rejects_shard_zero_instead_of_defaulting() {
        let e = run(&args(&["flow", "--size", "4", "--shard", "0"])).unwrap_err();
        assert!(e.contains("--shard 0"), "{e}");
        assert!(e.contains("1024"), "{e}");
        // The sentinel is still fine when the flag is simply absent.
        assert!(run(&args(&["flow", "--size", "4", "--subset", "1.0"])).is_ok());
    }

    #[test]
    fn flow_and_serve_reject_each_others_flags() {
        let e = run(&args(&["flow", "--size", "4", "--queue-depth", "8"])).unwrap_err();
        assert!(e.contains("afp serve"), "{e}");
        let e = run(&args(&["serve", "--paper-full", "true"])).unwrap_err();
        assert!(e.contains("afp flow"), "{e}");
        let e = run(&args(&["serve", "--target", "lut4-ice40"])).unwrap_err();
        assert!(e.contains("--target-default"), "{e}");
        let e = run(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--socket",
            "/tmp/x",
        ]))
        .unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = run(&args(&["serve", "--queue-depth", "0"])).unwrap_err();
        assert!(e.contains("--queue-depth"), "{e}");
        let e = run(&args(&["serve", "--target-default", "lut9-none"])).unwrap_err();
        assert!(e.contains("unknown target"), "{e}");
        let e = run(&args(&["flow", "--size", "4", "--models", "a.afpm"])).unwrap_err();
        assert!(e.contains("afp serve"), "{e}");
        let e = run(&args(&["flow", "--size", "4", "--keepalive-requests", "8"])).unwrap_err();
        assert!(e.contains("afp serve"), "{e}");
        let e = run(&args(&["serve", "--estimate-only"])).unwrap_err();
        assert!(e.contains("--models"), "{e}");
        let e = run(&args(&["serve", "--keepalive-requests", "0"])).unwrap_err();
        assert!(e.contains("--keepalive-requests"), "{e}");
        let e = run(&args(&["serve", "--idle-timeout-ms", "0"])).unwrap_err();
        assert!(e.contains("--idle-timeout-ms"), "{e}");
    }

    #[test]
    fn zoo_requires_a_subcommand_and_save_path() {
        let e = run(&args(&["zoo"])).unwrap_err();
        assert!(e.contains("zoo train"), "{e}");
        let e = run(&args(&["zoo", "prune"])).unwrap_err();
        assert!(e.contains("prune"), "{e}");
        let e = run(&args(&["zoo", "train"])).unwrap_err();
        assert!(e.contains("--save"), "{e}");
        let e = run(&args(&[
            "zoo",
            "train",
            "--save",
            "/tmp/x.afpm",
            "--models",
            "ML99",
        ]))
        .unwrap_err();
        assert!(e.contains("ML99"), "{e}");
        let e = run(&args(&[
            "zoo",
            "train",
            "--save",
            "/tmp/x.afpm",
            "--models",
            ",",
        ]))
        .unwrap_err();
        assert!(e.contains("no models"), "{e}");
    }

    #[test]
    fn zoo_train_persists_a_reloadable_zoo() {
        let path = std::env::temp_dir().join(format!("afp-cli-zoo-{}.afpm", std::process::id()));
        let out = run(&args(&[
            "zoo",
            "train",
            "--save",
            path.to_str().unwrap(),
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "40",
            "--subset",
            "0.5",
            "--models",
            "ml1,ML14",
        ]))
        .unwrap();
        assert!(out.contains("trained 2 model(s)"), "{out}");
        assert!(out.contains("round-trip verified:"), "{out}");
        assert!(!out.contains("round-trip verified: 0 "), "{out}");
        let saved = approxfpgas::load_zoo(&path).expect("saved zoo reloads");
        assert_eq!(saved.target, afp_fpga::DEFAULT_TARGET);
        assert!(saved.covers(ArithKind::Adder, 8));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn targets_lists_every_registry_profile() {
        let out = run(&args(&["targets"])).unwrap();
        for p in afp_fpga::target::registry() {
            assert!(out.contains(p.name), "missing {} in {out}", p.name);
        }
        assert!(out.contains("[default]"), "{out}");
    }

    #[test]
    fn targets_describes_one_profile() {
        let out = run(&args(&["targets", "lut4-ice40"])).unwrap();
        assert!(out.contains("lut4-ice40:"), "{out}");
        assert!(out.contains("LUT inputs (K):    4"), "{out}");
        let e = run(&args(&["targets", "lut9-none"])).unwrap_err();
        assert!(e.contains("unknown target"), "{e}");
        assert!(e.contains("lut6-7series"), "{e}");
    }

    #[test]
    fn flow_accepts_a_named_target() {
        let out = run(&args(&[
            "flow",
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "60",
            "--subset",
            "0.4",
            "--target",
            "lut4-ice40",
            "--report",
            "none",
        ]))
        .unwrap();
        assert!(out.contains("target: lut4-ice40 (K=4, 48 MHz)"), "{out}");
        assert!(out.contains("coverage"), "{out}");
    }

    #[test]
    fn flow_rejects_unknown_and_conflicting_targets() {
        let e = run(&args(&[
            "flow",
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "40",
            "--target",
            "lut9-none",
        ]))
        .unwrap_err();
        assert!(e.contains("unknown target `lut9-none`"), "{e}");
        let e = run(&args(&[
            "flow",
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "40",
            "--target",
            "lut4-ice40",
            "--all-targets",
        ]))
        .unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn library_inline_listing_works() {
        let out = run(&args(&[
            "library", "--kind", "add", "--width", "8", "--size", "12",
        ]))
        .unwrap();
        assert!(out.contains("generated"));
        assert!(out.contains("gates"));
    }

    #[test]
    fn synth_and_map_round_trip_through_a_temp_file() {
        let dir = std::env::temp_dir().join("afp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adder.v");
        let circuit = afp_circuits::adders::ripple_carry(8);
        std::fs::write(&path, afp_netlist::export::to_verilog(circuit.netlist())).unwrap();
        let p = path.to_string_lossy().to_string();

        let synth = run(&args(&["synth", &p])).unwrap();
        assert!(synth.contains("ASIC:") && synth.contains("FPGA:"));

        let mapped_path = dir.join("adder_mapped.v").to_string_lossy().to_string();
        let mapped = run(&args(&["map", &p, "--out", &mapped_path])).unwrap();
        assert!(mapped.contains("PASSED"));
        let text = std::fs::read_to_string(&mapped_path).unwrap();
        assert!(text.contains("LUT"));

        let err = run(&args(&["error", &p, "--kind", "add", "--width", "8"])).unwrap();
        assert!(err.contains("MED:"));
        assert!(
            err.contains("0.000000"),
            "exact adder must have MED 0:\n{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_command_validates_interface() {
        let dir = std::env::temp_dir().join("afp_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adder.v");
        let circuit = afp_circuits::adders::ripple_carry(8);
        std::fs::write(&path, afp_netlist::export::to_verilog(circuit.netlist())).unwrap();
        let p = path.to_string_lossy().to_string();
        let e = run(&args(&["error", &p, "--kind", "mul", "--width", "8"])).unwrap_err();
        assert!(e.contains("outputs"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flow_command_runs_small() {
        let out = run(&args(&[
            "flow", "--kind", "add", "--width", "8", "--size", "60", "--subset", "0.4",
        ]))
        .unwrap();
        assert!(out.contains("synthesized"));
        assert!(out.contains("coverage"));
        assert!(out.contains("runtime:"), "missing counter summary:\n{out}");
        assert!(out.contains("mapper:"), "missing mapper summary:\n{out}");
        assert!(out.contains("cut merges"), "{out}");
        assert!(out.contains("sig-rejected"), "{out}");
        assert!(out.contains("dominance-pruned"), "{out}");
        assert!(out.contains("mapper reuses"), "{out}");
        assert!(out.contains("sim:"), "missing sim summary:\n{out}");
        assert!(out.contains("tape reuses"), "{out}");
        assert!(out.contains("structural dedup hits"), "{out}");
        // The flow actually did mapping work, so the counters are live.
        assert!(!out.contains("0 cut merges"), "{out}");
        assert!(!out.contains(" 0 tape reuses"), "{out}");
    }

    #[test]
    fn flow_command_emits_stage_table_by_default() {
        let out = run(&args(&[
            "flow", "--kind", "add", "--width", "8", "--size", "60", "--subset", "0.4",
        ]))
        .unwrap();
        assert!(out.contains("per-stage timing:"), "{out}");
        assert!(out.contains("flow/characterize"), "{out}");
        assert!(out.contains("flow/train_zoo"), "{out}");
        assert!(out.contains("items/s"), "{out}");
        // No report file was requested, so none is written.
        assert!(!out.contains("wrote run report"), "{out}");
    }

    #[test]
    fn flow_report_json_prints_a_single_json_document_and_writes_the_file() {
        let dir = std::env::temp_dir().join(format!("afp_cli_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report_path = dir.join("results/run_report.json");
        let out = run(&args(&[
            "flow",
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "60",
            "--subset",
            "0.4",
            "--report",
            "json",
            "--report-out",
            &report_path.to_string_lossy(),
        ]))
        .unwrap();
        // Stdout is exactly one JSON document.
        assert!(out.starts_with("{\"version\":1,"), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
        assert_eq!(out.lines().count(), 1, "{out}");
        for key in [
            "\"stages\":[",
            "\"flow\":{",
            "\"target\":{\"name\":\"lut6-7series\"",
            "\"time\":{",
            "\"runtime\":{",
            "\"cache\":{",
            "\"quarantine\":{",
            "\"coverage\":{",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        // Clean path: nothing quarantined.
        assert!(out.contains("\"estimates_quarantined\":0"), "{out}");
        // The file holds the same document (parent dirs were created).
        let on_disk = std::fs::read_to_string(&report_path).unwrap();
        assert_eq!(on_disk, out);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flow_report_none_skips_tracing_output() {
        let out = run(&args(&[
            "flow", "--kind", "add", "--width", "8", "--size", "60", "--subset", "0.4", "--report",
            "none",
        ]))
        .unwrap();
        assert!(out.contains("synthesized"));
        assert!(!out.contains("per-stage timing:"), "{out}");
    }

    #[test]
    fn flow_report_mode_is_validated() {
        let e = run(&args(&[
            "flow", "--kind", "add", "--width", "8", "--size", "40", "--report", "xml",
        ]))
        .unwrap_err();
        assert!(e.contains("--report must be"), "{e}");
    }

    #[test]
    fn flow_rejects_unusable_cache_dir() {
        let dir = std::env::temp_dir().join(format!("afp_cli_cachedir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("file");
        std::fs::write(&blocker, b"x").unwrap();
        let e = run(&args(&[
            "flow",
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "40",
            "--cache-dir",
            &blocker.to_string_lossy(),
        ]))
        .unwrap_err();
        assert!(e.contains("cannot open --cache-dir"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synth_reads_bristol_files() {
        let dir = std::env::temp_dir().join(format!("afp_cli_bristol_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let circuit = afp_circuits::adders::ripple_carry(4);
        let path = dir.join("adder.bristol");
        std::fs::write(&path, afp_netlist::bristol::to_bristol(circuit.netlist())).unwrap();
        let p = path.to_string_lossy().to_string();
        let out = run(&args(&["synth", &p])).unwrap();
        assert!(out.contains("8 inputs, 5 outputs"), "{out}");
        assert!(out.contains("ASIC:") && out.contains("FPGA:"), "{out}");
        // The error command agrees the import is behaviourally exact.
        let err = run(&args(&["error", &p, "--kind", "add", "--width", "4"])).unwrap();
        assert!(err.contains("MED:         0.000000"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_stats_and_migrate_round_trip() {
        let dir = std::env::temp_dir().join(format!("afp_cli_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_string_lossy().to_string();
        // Empty directory: both tiers absent.
        std::fs::create_dir_all(&dir).unwrap();
        let out = run(&args(&["cache", "stats", &d])).unwrap();
        assert!(out.contains("store: absent"), "{out}");
        assert!(out.contains("csv: absent"), "{out}");
        // Produce a legacy CSV cache, then migrate it via the CLI.
        let flow_args = [
            "flow",
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "60",
            "--subset",
            "0.4",
            "--report",
            "none",
            "--cache-dir",
            &d,
            "--cache-format",
            "csv",
        ];
        run(&args(&flow_args)).unwrap();
        let out = run(&args(&["cache", "stats", &d])).unwrap();
        assert!(out.contains("csv: characterization.csv"), "{out}");
        let out = run(&args(&["cache", "migrate", &d])).unwrap();
        assert!(out.contains("migrated "), "{out}");
        // Idempotent: a second migrate is a no-op.
        let out = run(&args(&["cache", "migrate", &d])).unwrap();
        assert!(out.contains("nothing to migrate"), "{out}");
        let out = run(&args(&["cache", "stats", &d])).unwrap();
        assert!(out.contains("store: characterization.afps"), "{out}");
        assert!(out.contains("unsealed"), "{out}");
        assert!(out.contains("csv: absent"), "{out}");
        // The migrated store warms a default (store-backend) flow run.
        let mut warm_args: Vec<&str> = flow_args[..flow_args.len() - 2].to_vec();
        warm_args.push("--threads");
        warm_args.push("1");
        let out = run(&args(&warm_args)).unwrap();
        assert!(
            out.contains(" 0 misses"),
            "warm run must be all hits: {out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_command_validates_arguments() {
        assert!(run(&args(&["cache"])).is_err());
        assert!(run(&args(&["cache", "stats"])).is_err());
        let e = run(&args(&["cache", "frob", "/tmp"])).unwrap_err();
        assert!(e.contains("unknown cache action"), "{e}");
    }

    #[test]
    fn flow_validates_cache_format() {
        let e = run(&args(&[
            "flow",
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "40",
            "--cache-format",
            "sqlite",
        ]))
        .unwrap_err();
        assert!(e.contains("--cache-format must be store|csv"), "{e}");
    }

    #[test]
    fn flow_report_normalized_is_stable_across_backends() {
        let dir = std::env::temp_dir().join(format!("afp_cli_norm_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = |cache_dir: &str, format: &str, report_out: &str| {
            args(&[
                "flow",
                "--kind",
                "add",
                "--width",
                "8",
                "--size",
                "60",
                "--subset",
                "0.4",
                "--report",
                "json",
                "--report-normalized",
                "--report-out",
                report_out,
                "--cache-dir",
                cache_dir,
                "--cache-format",
                format,
            ])
        };
        let csv_dir = dir.join("csv").to_string_lossy().to_string();
        let store_dir = dir.join("store").to_string_lossy().to_string();
        let csv_out = dir.join("csv.json").to_string_lossy().to_string();
        let store_out = dir.join("store.json").to_string_lossy().to_string();
        let a = run(&base(&csv_dir, "csv", &csv_out)).unwrap();
        let b = run(&base(&store_dir, "store", &store_out)).unwrap();
        assert_eq!(a, b, "normalized reports must not depend on the backend");
        // Normalization really stripped the wall-clock surfaces.
        assert!(a.contains("\"steals\":0"), "{a}");
        assert!(a.contains("\"write_errors\":0"), "{a}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flow_streams_a_persisted_library() {
        let dir = std::env::temp_dir().join(format!("afp_cli_stream_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.afps");
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 60));
        afp_circuits::write_library(&path, &lib).unwrap();
        let p = path.to_string_lossy().to_string();
        let out = run(&args(&[
            "flow",
            "--library",
            &p,
            "--subset",
            "0.4",
            "--shard",
            "16",
            "--report",
            "none",
        ]))
        .unwrap();
        assert!(out.contains("corpus "), "{out}");
        assert!(out.contains("streaming: "), "{out}");
        assert!(out.contains("shards, peak "), "{out}");
        assert!(out.contains("circuits resident"), "{out}");
        // The corpus fixes the circuits: generated-library flags conflict.
        let e = run(&args(&["flow", "--library", &p, "--size", "60"])).unwrap_err();
        assert!(e.contains("cannot be combined"), "{e}");
        let e = run(&args(&["flow", "--library", &p, "--all-targets"])).unwrap_err();
        assert!(e.contains("cannot be combined"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flow_fails_loudly_on_bad_corpora() {
        let dir = std::env::temp_dir().join(format!("afp_cli_badcorpus_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Missing file.
        let missing = dir.join("nope.afps").to_string_lossy().to_string();
        let e = run(&args(&["flow", "--library", &missing])).unwrap_err();
        assert!(e.contains("cannot stream"), "{e}");
        // Truncated corpus: the valid prefix must not silently pass.
        let path = dir.join("torn.afps");
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 40));
        afp_circuits::write_library(&path, &lib).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 12]).unwrap();
        let p = path.to_string_lossy().to_string();
        let e = run(&args(&["flow", "--library", &p])).unwrap_err();
        assert!(e.contains("torn or corrupt"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flow_paper_full_generates_then_reuses_a_scaled_corpus() {
        let dir = std::env::temp_dir().join(format!("afp_cli_paper_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper.afps").to_string_lossy().to_string();
        let base = [
            "flow",
            "--paper-full",
            "--paper-scale",
            "0.002",
            "--library",
            &path,
            "--subset",
            "0.4",
            "--report",
            "none",
        ];
        let out = run(&args(&base)).unwrap();
        assert!(out.contains("generated paper-full corpus"), "{out}");
        assert!(out.contains("streaming: "), "{out}");
        // Second run streams the already-persisted corpus.
        let out = run(&args(&base)).unwrap();
        assert!(out.contains("reusing existing corpus"), "{out}");
        // --paper-scale is validated, and pointless without --paper-full.
        let e = run(&args(&["flow", "--paper-full", "--paper-scale", "7"])).unwrap_err();
        assert!(e.contains("--paper-scale expects"), "{e}");
        let e = run(&args(&["flow", "--paper-scale", "0.5"])).unwrap_err();
        assert!(e.contains("only applies"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flow_command_accepts_runtime_flags() {
        let out = run(&args(&[
            "flow",
            "--kind",
            "add",
            "--width",
            "8",
            "--size",
            "60",
            "--subset",
            "0.4",
            "--threads",
            "1",
            "--no-cache",
        ]))
        .unwrap();
        // --no-cache: every characterization is a miss-free direct compute.
        assert!(out.contains("cache 0 hits / 0 misses"), "{out}");
    }
}

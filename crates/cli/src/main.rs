//! `afp` — the ApproxFPGAs reproduction command-line tool.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match afp_cli::run(&args) {
        Ok(text) => print!("{text}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}

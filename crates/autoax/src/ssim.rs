//! Structural similarity index (SSIM) — the case study's QoR metric.

use crate::image::Image;

const C1: f64 = 6.5025; // (0.01 * 255)^2
const C2: f64 = 58.5225; // (0.03 * 255)^2
const WINDOW: usize = 8;

/// Mean SSIM between two equal-size images over non-overlapping 8x8
/// windows (standard constants, uniform window).
///
/// Returns a value in `[-1, 1]`; identical images score 1.
///
/// # Panics
///
/// Panics if the image dimensions differ or are smaller than one window.
///
/// # Example
///
/// ```
/// use afp_autoax::image::gradient;
/// use afp_autoax::ssim::ssim;
///
/// let img = gradient(32);
/// assert!((ssim(&img, &img) - 1.0).abs() < 1e-12);
/// ```
pub fn ssim(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    assert!(
        a.width() >= WINDOW && a.height() >= WINDOW,
        "images smaller than the SSIM window"
    );
    let mut total = 0.0;
    let mut windows = 0usize;
    for wy in (0..=(a.height() - WINDOW)).step_by(WINDOW) {
        for wx in (0..=(a.width() - WINDOW)).step_by(WINDOW) {
            total += window_ssim(a, b, wx, wy);
            windows += 1;
        }
    }
    total / windows.max(1) as f64
}

fn window_ssim(a: &Image, b: &Image, wx: usize, wy: usize) -> f64 {
    let n = (WINDOW * WINDOW) as f64;
    let (mut sa, mut sb) = (0.0, 0.0);
    for y in wy..wy + WINDOW {
        for x in wx..wx + WINDOW {
            sa += a.pixel_clamped(x as isize, y as isize) as f64;
            sb += b.pixel_clamped(x as isize, y as isize) as f64;
        }
    }
    let (ma, mb) = (sa / n, sb / n);
    let (mut va, mut vb, mut cov) = (0.0, 0.0, 0.0);
    for y in wy..wy + WINDOW {
        for x in wx..wx + WINDOW {
            let da = a.pixel_clamped(x as isize, y as isize) as f64 - ma;
            let db = b.pixel_clamped(x as isize, y as isize) as f64 - mb;
            va += da * da;
            vb += db * db;
            cov += da * db;
        }
    }
    va /= n - 1.0;
    vb /= n - 1.0;
    cov /= n - 1.0;
    ((2.0 * ma * mb + C1) * (2.0 * cov + C2)) / ((ma * ma + mb * mb + C1) * (va + vb + C2))
}

/// Mean SSIM of image pairs (e.g. a whole corpus against references).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_ssim(outputs: &[Image], references: &[Image]) -> f64 {
    assert_eq!(outputs.len(), references.len(), "corpus length mismatch");
    if outputs.is_empty() {
        return 0.0;
    }
    outputs
        .iter()
        .zip(references)
        .map(|(o, r)| ssim(o, r))
        .sum::<f64>()
        / outputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{checkerboard, gradient, noise, Image};

    #[test]
    fn identical_images_score_one() {
        for img in [gradient(32), checkerboard(32, 4), noise(32, 5)] {
            assert!((ssim(&img, &img) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn heavy_distortion_scores_low() {
        let a = checkerboard(32, 4);
        let inverted = Image::from_raw(32, 32, a.pixels().iter().map(|&p| 255 - p).collect());
        assert!(ssim(&a, &inverted) < 0.2);
    }

    #[test]
    fn small_perturbation_scores_high_but_below_one() {
        let a = gradient(32);
        let b = Image::from_raw(
            32,
            32,
            a.pixels()
                .iter()
                .enumerate()
                .map(|(i, &p)| if i % 17 == 0 { p.saturating_add(3) } else { p })
                .collect(),
        );
        let s = ssim(&a, &b);
        assert!(s > 0.9 && s < 1.0, "ssim {s}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = gradient(32);
        let b = noise(32, 1);
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_distortion_strength() {
        let a = gradient(32);
        let perturb = |amount: u8| {
            Image::from_raw(
                32,
                32,
                a.pixels()
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        if i % 3 == 0 {
                            p.saturating_add(amount)
                        } else {
                            p
                        }
                    })
                    .collect(),
            )
        };
        let weak = ssim(&a, &perturb(5));
        let strong = ssim(&a, &perturb(60));
        assert!(weak > strong);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn size_mismatch_panics() {
        let _ = ssim(&gradient(16), &gradient(32));
    }
}

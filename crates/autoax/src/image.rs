//! Synthetic grayscale test images.
//!
//! The paper measures the Gaussian filter's output quality on an image
//! corpus; lacking their images, we synthesize a deterministic corpus with
//! the frequency content that matters for a low-pass filter: smooth
//! gradients, hard edges (checkerboard), natural-ish fractal texture
//! (midpoint displacement "plasma") and high-frequency noise.

/// An 8-bit grayscale image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// Create from raw row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Image {
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        Image {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)` with clamp-to-edge semantics for out-of-range
    /// coordinates (the filter's border handling).
    pub fn pixel_clamped(&self, x: isize, y: isize) -> u8 {
        let xi = x.clamp(0, self.width as isize - 1) as usize;
        let yi = y.clamp(0, self.height as isize - 1) as usize;
        self.data[yi * self.width + xi]
    }

    /// Raw pixels, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&p| p as f64).sum::<f64>() / self.data.len().max(1) as f64
    }
}

/// Smooth diagonal gradient.
pub fn gradient(size: usize) -> Image {
    let mut data = Vec::with_capacity(size * size);
    for y in 0..size {
        for x in 0..size {
            data.push((((x + y) * 255) / (2 * size - 2).max(1)) as u8);
        }
    }
    Image::from_raw(size, size, data)
}

/// Checkerboard with `cell`-pixel squares (hard edges).
pub fn checkerboard(size: usize, cell: usize) -> Image {
    let cell = cell.max(1);
    let mut data = Vec::with_capacity(size * size);
    for y in 0..size {
        for x in 0..size {
            let on = ((x / cell) + (y / cell)).is_multiple_of(2);
            data.push(if on { 230 } else { 25 });
        }
    }
    Image::from_raw(size, size, data)
}

/// Uniform pseudo-random noise.
pub fn noise(size: usize, seed: u64) -> Image {
    let mut s = seed | 1;
    let mut data = Vec::with_capacity(size * size);
    for _ in 0..size * size {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        data.push((s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8);
    }
    Image::from_raw(size, size, data)
}

/// Fractal "plasma" texture via midpoint displacement on a
/// power-of-two-plus-one lattice, cropped to `size`.
pub fn plasma(size: usize, seed: u64) -> Image {
    let mut n = 1usize;
    while n + 1 < size.max(2) {
        n *= 2;
    }
    let lattice = n + 1;
    let mut grid = vec![0.0f64; lattice * lattice];
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        ((s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    // Seed corners.
    for &(cx, cy) in &[(0, 0), (n, 0), (0, n), (n, n)] {
        grid[cy * lattice + cx] = rnd() * 0.5 + 0.5;
    }
    let mut step = n;
    let mut amp = 0.5;
    while step > 1 {
        let half = step / 2;
        // Diamond step.
        for y in (half..lattice).step_by(step) {
            for x in (half..lattice).step_by(step) {
                let avg = (grid[(y - half) * lattice + (x - half)]
                    + grid[(y - half) * lattice + (x + half)]
                    + grid[(y + half) * lattice + (x - half)]
                    + grid[(y + half) * lattice + (x + half)])
                    / 4.0;
                grid[y * lattice + x] = avg + rnd() * amp;
            }
        }
        // Square step.
        for y in (0..lattice).step_by(half) {
            let x0 = if (y / half).is_multiple_of(2) {
                half
            } else {
                0
            };
            for x in (x0..lattice).step_by(step) {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                for &(dx, dy) in &[
                    (0i64, -(half as i64)),
                    (0, half as i64),
                    (-(half as i64), 0),
                    (half as i64, 0),
                ] {
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx >= 0 && ny >= 0 && (nx as usize) < lattice && (ny as usize) < lattice {
                        sum += grid[ny as usize * lattice + nx as usize];
                        cnt += 1.0;
                    }
                }
                grid[y * lattice + x] = sum / cnt + rnd() * amp;
            }
        }
        step = half;
        amp *= 0.55;
    }
    let mut data = Vec::with_capacity(size * size);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for y in 0..size {
        for x in 0..size {
            let v = grid[(y.min(n)) * lattice + (x.min(n))];
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = (hi - lo).max(1e-9);
    for y in 0..size {
        for x in 0..size {
            let v = grid[(y.min(n)) * lattice + (x.min(n))];
            data.push((255.0 * (v - lo) / span) as u8);
        }
    }
    Image::from_raw(size, size, data)
}

/// The deterministic evaluation corpus used by the case study.
pub fn test_corpus(size: usize, seed: u64) -> Vec<Image> {
    vec![
        gradient(size),
        checkerboard(size, (size / 8).max(2)),
        plasma(size, seed ^ 0x11),
        noise(size, seed ^ 0x22),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_right_shapes() {
        for img in test_corpus(32, 9) {
            assert_eq!(img.width(), 32);
            assert_eq!(img.height(), 32);
            assert_eq!(img.pixels().len(), 1024);
        }
    }

    #[test]
    fn clamped_access_handles_borders() {
        let img = gradient(8);
        assert_eq!(img.pixel_clamped(-5, -5), img.pixel_clamped(0, 0));
        assert_eq!(img.pixel_clamped(100, 3), img.pixel_clamped(7, 3));
    }

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(test_corpus(16, 4), test_corpus(16, 4));
        assert_ne!(noise(16, 1), noise(16, 2));
    }

    #[test]
    fn images_have_meaningful_contrast() {
        for img in test_corpus(32, 7) {
            let p = img.pixels();
            let min = *p.iter().min().unwrap();
            let max = *p.iter().max().unwrap();
            assert!(max - min > 60, "flat image: {min}..{max}");
        }
    }

    #[test]
    fn plasma_is_smooth_er_than_noise() {
        // Mean absolute horizontal difference: plasma << noise.
        let tv = |img: &Image| -> f64 {
            let mut sum = 0.0;
            for y in 0..img.height() {
                for x in 1..img.width() {
                    sum += (img.pixel_clamped(x as isize, y as isize) as f64
                        - img.pixel_clamped(x as isize - 1, y as isize) as f64)
                        .abs();
                }
            }
            sum / (img.width() * img.height()) as f64
        };
        assert!(tv(&plasma(64, 3)) < tv(&noise(64, 3)) * 0.6);
    }
}

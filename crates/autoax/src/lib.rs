//! AutoAx-FPGA case study (§IV of the ApproxFPGAs paper, Fig. 9).
//!
//! Retargets the AutoAx accelerator-composition methodology to FPGAs: a
//! 5x5 Gaussian-filter accelerator whose multiplier and adder slots are
//! instantiated from pareto-optimal FPGA approximate circuits. The flow:
//!
//! 1. builds a component library (9 approximate 8x8 multipliers, 8
//!    approximate 16-bit adders — the paper's counts),
//! 2. samples random slot assignments and measures their quality (SSIM
//!    against the exact filter over a synthetic image corpus) and FPGA
//!    cost (composition model over the component reports),
//! 3. trains QoR and HW-cost estimators on the sample,
//! 4. hill-climbs three estimated pareto fronts (latency-SSIM, power-SSIM,
//!    area-SSIM),
//! 5. "synthesizes" (measures) the surviving candidates and compares them
//!    against a plain random search.
//!
//! Modules: [`image`] (synthetic corpus), [`ssim`], [`filter`] (exact
//! reference + accelerator model), [`components`], [`search`]
//! (hill-climber, random search, estimators).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod filter;
pub mod image;
pub mod search;
pub mod sobel;
pub mod ssim;

pub use components::{Component, ComponentLibrary};
pub use filter::{AcceleratorConfig, GaussianAccelerator, HwCost};
pub use search::{AutoAx, AutoAxConfig, AutoAxOutcome, CostObjective, MeasuredDesign};
pub use sobel::{exact_sobel, SobelAccelerator, SobelConfig};

//! The approximate-component library feeding the accelerator slots:
//! 9 approximate 8x8 multipliers and 8 approximate 16-bit adders (the
//! paper's counts), each with behavioural model and FPGA cost report.

use afp_circuits::{adders, multipliers, ArithCircuit, ArithKind, BatchEvaluator};
use afp_fpga::{synthesize_fpga, FpgaConfig, FpgaReport};

/// One selectable component: an approximate circuit plus its FPGA report.
#[derive(Clone, Debug)]
pub struct Component {
    circuit: ArithCircuit,
    fpga: FpgaReport,
    /// Full 8x8 product table for multipliers (None for adders).
    mult_table: Option<Vec<u16>>,
}

impl Component {
    /// Wrap a circuit, synthesizing it for the FPGA model.
    pub fn new(mut circuit: ArithCircuit, fpga_config: &FpgaConfig) -> Component {
        circuit.simplify();
        let fpga = synthesize_fpga(circuit.netlist(), fpga_config);
        let mult_table = if circuit.kind() == ArithKind::Multiplier && circuit.width() == 8 {
            let mut batch = BatchEvaluator::new(&circuit);
            let mut table = Vec::with_capacity(65536);
            let mut pairs = Vec::with_capacity(64);
            for a in 0..256u64 {
                for b in 0..256u64 {
                    pairs.push((a, b));
                    if pairs.len() == 64 {
                        table.extend(batch.eval_chunk(&pairs).iter().map(|&v| v as u16));
                        pairs.clear();
                    }
                }
            }
            Some(table)
        } else {
            None
        };
        Component {
            circuit,
            fpga,
            mult_table,
        }
    }

    /// The wrapped circuit.
    pub fn circuit(&self) -> &ArithCircuit {
        &self.circuit
    }

    /// Component name.
    pub fn name(&self) -> &str {
        self.circuit.name()
    }

    /// FPGA cost report.
    pub fn fpga(&self) -> &FpgaReport {
        &self.fpga
    }

    /// Behavioural 8x8 multiply via the precomputed table.
    ///
    /// # Panics
    ///
    /// Panics if this component is not an 8x8 multiplier.
    pub fn mult(&self, a: u8, b: u8) -> u16 {
        let table = self
            .mult_table
            .as_ref()
            .expect("component is not an 8x8 multiplier");
        table[(a as usize) << 8 | b as usize]
    }

    /// Behavioural adder evaluation for a batch of 16-bit operand pairs.
    ///
    /// # Panics
    ///
    /// Panics if this component is not an adder.
    pub fn add_batch(&self, pairs: &[(u64, u64)]) -> Vec<u64> {
        assert_eq!(
            self.circuit.kind(),
            ArithKind::Adder,
            "component is not an adder"
        );
        let mut batch = BatchEvaluator::new(&self.circuit);
        batch.eval_pairs(pairs)
    }
}

/// The slot-assignable component library.
#[derive(Clone, Debug)]
pub struct ComponentLibrary {
    multipliers: Vec<Component>,
    adders: Vec<Component>,
}

impl ComponentLibrary {
    /// Build from explicit component lists.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty, a multiplier is not 8x8, or an
    /// adder is not 16-bit.
    pub fn new(multipliers: Vec<Component>, adders: Vec<Component>) -> ComponentLibrary {
        assert!(
            !multipliers.is_empty() && !adders.is_empty(),
            "component lists must be non-empty"
        );
        for m in &multipliers {
            assert_eq!(m.circuit.kind(), ArithKind::Multiplier, "not a multiplier");
            assert_eq!(m.circuit.width(), 8, "multipliers must be 8x8");
        }
        for a in &adders {
            assert_eq!(a.circuit.kind(), ArithKind::Adder, "not an adder");
            assert_eq!(a.circuit.width(), 16, "adders must be 16-bit");
        }
        ComponentLibrary {
            multipliers,
            adders,
        }
    }

    /// The paper's component counts: 9 pareto-style 8x8 multipliers and 8
    /// 16-bit adders, spanning exact → heavily approximate.
    pub fn paper_defaults(fpga_config: &FpgaConfig) -> ComponentLibrary {
        let mult_circuits = vec![
            multipliers::wallace_multiplier(8), // exact anchor
            multipliers::truncated(8, 2),
            multipliers::truncated(8, 4),
            multipliers::truncated(8, 6),
            multipliers::broken_array(8, 4, 2),
            multipliers::broken_array(8, 6, 2),
            multipliers::underdesigned(8, 0x0001),
            multipliers::underdesigned(8, 0x0113),
            multipliers::approx_compressor(8, 6),
        ];
        let adder_circuits = vec![
            adders::ripple_carry(16), // exact anchor
            adders::loa(16, 4),
            adders::loa(16, 6),
            adders::loa(16, 8),
            adders::truncated(16, 4),
            adders::no_carry(16, 6),
            adders::gear(16, 4, 4),
            adders::afa_substituted(16, 5, adders::ApproxFa::IgnoreCin),
        ];
        ComponentLibrary::new(
            mult_circuits
                .into_iter()
                .map(|c| Component::new(c, fpga_config))
                .collect(),
            adder_circuits
                .into_iter()
                .map(|c| Component::new(c, fpga_config))
                .collect(),
        )
    }

    /// The multiplier options.
    pub fn multipliers(&self) -> &[Component] {
        &self.multipliers
    }

    /// The adder options.
    pub fn adders(&self) -> &[Component] {
        &self.adders
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> ComponentLibrary {
        ComponentLibrary::paper_defaults(&FpgaConfig::default())
    }

    #[test]
    fn paper_counts_match() {
        let lib = library();
        assert_eq!(lib.multipliers().len(), 9);
        assert_eq!(lib.adders().len(), 8);
    }

    #[test]
    fn mult_table_matches_behaviour() {
        let lib = library();
        let exact = &lib.multipliers()[0];
        assert_eq!(exact.mult(13, 11), 143);
        assert_eq!(exact.mult(255, 255), 65025);
        // Truncated multiplier underestimates small products.
        let trunc = &lib.multipliers()[3];
        assert!(trunc.mult(3, 3) <= 9);
    }

    #[test]
    fn adders_evaluate_in_batch() {
        let lib = library();
        let exact = &lib.adders()[0];
        let out = exact.add_batch(&[(1000, 2000), (65535, 1)]);
        assert_eq!(out, vec![3000, 65536]);
    }

    #[test]
    fn components_have_nonzero_costs_and_exact_is_priciest_area() {
        let lib = library();
        let exact_luts = lib.multipliers()[0].fpga().luts;
        assert!(exact_luts > 0);
        for m in lib.multipliers() {
            assert!(m.fpga().luts > 0);
            assert!(m.fpga().power_mw > 0.0);
        }
        let min_luts = lib
            .multipliers()
            .iter()
            .map(|m| m.fpga().luts)
            .min()
            .unwrap();
        assert!(min_luts < exact_luts, "approximations should save LUTs");
    }

    #[test]
    #[should_panic(expected = "not an 8x8 multiplier")]
    fn adder_has_no_mult_table() {
        let lib = library();
        let _ = lib.adders()[0].mult(1, 2);
    }
}

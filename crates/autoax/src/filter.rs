//! The 5x5 Gaussian-filter accelerator: exact reference, configurable
//! approximate datapath, and the FPGA cost composition model.

use crate::components::ComponentLibrary;
use crate::image::Image;

/// The separable binomial kernel `[1,4,6,4,1] ⊗ [1,4,6,4,1]` (sum 256).
pub const KERNEL_1D: [u16; 5] = [1, 4, 6, 4, 1];

/// Number of multiplier slots: one per `(|dy|, |dx|)` symmetry class of
/// the 5x5 kernel.
pub const MULT_SLOTS: usize = 9;

/// Number of adder slots: one per level of the 25-operand reduction tree.
pub const ADDER_SLOTS: usize = 5;

/// Multiplier instances per slot class (25 taps total).
pub const MULT_INSTANCES: [usize; MULT_SLOTS] = [1, 2, 2, 2, 4, 4, 2, 4, 4];

/// Adder instances per reduction level (24 additions total).
pub const ADDER_INSTANCES: [usize; ADDER_SLOTS] = [12, 6, 3, 2, 1];

/// Symmetry class of tap offset `(dy, dx)` in `-2..=2`.
fn tap_class(dy: isize, dx: isize) -> usize {
    let (ay, ax) = (dy.unsigned_abs(), dx.unsigned_abs());
    ay * 3 + ax // (|dy|, |dx|) in 0..=2 each
}

/// Kernel coefficient of tap offset `(dy, dx)`.
fn tap_coeff(dy: isize, dx: isize) -> u16 {
    KERNEL_1D[(dy + 2) as usize] * KERNEL_1D[(dx + 2) as usize]
}

/// One slot assignment: which library component serves each multiplier
/// class and each adder level.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AcceleratorConfig {
    /// Multiplier component index per slot class.
    pub mult_slots: [usize; MULT_SLOTS],
    /// Adder component index per reduction level.
    pub adder_slots: [usize; ADDER_SLOTS],
}

impl AcceleratorConfig {
    /// The all-exact configuration (component 0 everywhere, which the
    /// paper-default library reserves for the exact circuits).
    pub fn exact() -> AcceleratorConfig {
        AcceleratorConfig {
            mult_slots: [0; MULT_SLOTS],
            adder_slots: [0; ADDER_SLOTS],
        }
    }

    /// Size of the full configuration space for `library`.
    pub fn space_size(library: &ComponentLibrary) -> f64 {
        (library.multipliers().len() as f64).powi(MULT_SLOTS as i32)
            * (library.adders().len() as f64).powi(ADDER_SLOTS as i32)
    }

    /// One-hot feature vector for the estimators.
    pub fn features(&self, library: &ComponentLibrary) -> Vec<f64> {
        let m = library.multipliers().len();
        let a = library.adders().len();
        let mut f = vec![0.0; MULT_SLOTS * m + ADDER_SLOTS * a];
        for (slot, &choice) in self.mult_slots.iter().enumerate() {
            f[slot * m + choice] = 1.0;
        }
        let off = MULT_SLOTS * m;
        for (slot, &choice) in self.adder_slots.iter().enumerate() {
            f[off + slot * a + choice] = 1.0;
        }
        f
    }
}

/// FPGA cost of a composed accelerator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HwCost {
    /// Total LUTs over all component instances.
    pub luts: usize,
    /// Total power in mW.
    pub power_mw: f64,
    /// Critical-path delay in ns (slowest multiplier + adder-tree path).
    pub delay_ns: f64,
    /// Modeled synthesis time for the composed accelerator in seconds.
    pub synth_time_s: f64,
}

/// The configurable Gaussian accelerator bound to a component library.
pub struct GaussianAccelerator<'l> {
    library: &'l ComponentLibrary,
}

impl<'l> GaussianAccelerator<'l> {
    /// Bind an accelerator model to `library`.
    pub fn new(library: &'l ComponentLibrary) -> GaussianAccelerator<'l> {
        GaussianAccelerator { library }
    }

    /// The bound component library.
    pub fn library(&self) -> &ComponentLibrary {
        self.library
    }

    /// Run the approximate datapath over `input`.
    ///
    /// Products use the per-class multiplier tables; the 25-operand
    /// reduction runs level by level through the assigned adder
    /// components' behavioural models (batched bit-parallel evaluation).
    pub fn filter(&self, config: &AcceleratorConfig, input: &Image) -> Image {
        let (w, h) = (input.width(), input.height());
        let mults = self.library.multipliers();
        let adders = self.library.adders();
        // Per-pixel 25 products.
        let mut values: Vec<Vec<u64>> = Vec::with_capacity(w * h);
        for y in 0..h as isize {
            for x in 0..w as isize {
                let mut taps = Vec::with_capacity(25);
                for dy in -2isize..=2 {
                    for dx in -2isize..=2 {
                        let px = input.pixel_clamped(x + dx, y + dy);
                        let class = tap_class(dy, dx);
                        let coeff = tap_coeff(dy, dx);
                        let m = &mults[config.mult_slots[class]];
                        taps.push(m.mult(px, coeff as u8) as u64);
                    }
                }
                values.push(taps);
            }
        }
        // Reduction tree: level by level, batched across pixels.
        for level in 0..ADDER_SLOTS {
            let adder = &adders[config.adder_slots[level]];
            let mut pairs: Vec<(u64, u64)> = Vec::new();
            for taps in &values {
                for chunk in taps.chunks(2) {
                    if chunk.len() == 2 {
                        pairs.push((chunk[0] & 0xFFFF, chunk[1] & 0xFFFF));
                    }
                }
            }
            let sums = adder.add_batch(&pairs);
            let mut cursor = 0usize;
            for taps in values.iter_mut() {
                let mut next = Vec::with_capacity(taps.len().div_ceil(2));
                for chunk in taps.chunks(2) {
                    if chunk.len() == 2 {
                        next.push(sums[cursor] & 0x1FFFF);
                        cursor += 1;
                    } else {
                        next.push(chunk[0]);
                    }
                }
                *taps = next;
            }
            let _ = level;
        }
        let data: Vec<u8> = values
            .iter()
            .map(|taps| (taps[0] >> 8).min(255) as u8)
            .collect();
        Image::from_raw(w, h, data)
    }

    /// FPGA cost of the composed accelerator under the composition model:
    /// instance-weighted sums for area/power, slowest-multiplier plus
    /// adder-tree path for delay.
    pub fn hw_cost(&self, config: &AcceleratorConfig) -> HwCost {
        let mults = self.library.multipliers();
        let adders = self.library.adders();
        let mut luts = 0usize;
        let mut power = 0.0f64;
        let mut gates = 0usize;
        let mut mult_delay = 0.0f64;
        for (slot, &choice) in config.mult_slots.iter().enumerate() {
            let c = &mults[choice];
            luts += MULT_INSTANCES[slot] * c.fpga().luts;
            power += MULT_INSTANCES[slot] as f64 * c.fpga().power_mw;
            gates += MULT_INSTANCES[slot] * c.circuit().netlist().num_logic_gates();
            mult_delay = mult_delay.max(c.fpga().delay_ns);
        }
        let mut tree_delay = 0.0f64;
        let mut depth = 0u32;
        for (level, &choice) in config.adder_slots.iter().enumerate() {
            let c = &adders[choice];
            luts += ADDER_INSTANCES[level] * c.fpga().luts;
            power += ADDER_INSTANCES[level] as f64 * c.fpga().power_mw;
            gates += ADDER_INSTANCES[level] * c.circuit().netlist().num_logic_gates();
            tree_delay += c.fpga().delay_ns + 0.25; // + inter-stage routing
            depth += c.fpga().depth_levels;
        }
        let delay = mult_delay + tree_delay;
        let synth_time_s = afp_fpga::synth_time::estimate(gates, luts, depth, config_hash(config));
        HwCost {
            luts,
            power_mw: power,
            delay_ns: delay,
            synth_time_s,
        }
    }
}

fn config_hash(config: &AcceleratorConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in config.mult_slots.iter().chain(&config.adder_slots) {
        h ^= v as u64 + 0x9E37_79B9_7F4A_7C15;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Exact integer reference filter (`sum(coeff * px) >> 8`, clamp-to-edge).
pub fn exact_gaussian(input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut data = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let mut sum = 0u32;
            for dy in -2isize..=2 {
                for dx in -2isize..=2 {
                    sum += input.pixel_clamped(x + dx, y + dy) as u32 * tap_coeff(dy, dx) as u32;
                }
            }
            data.push((sum >> 8).min(255) as u8);
        }
    }
    Image::from_raw(w, h, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{gradient, test_corpus};
    use crate::ssim::ssim;
    use afp_fpga::FpgaConfig;

    fn library() -> ComponentLibrary {
        ComponentLibrary::paper_defaults(&FpgaConfig::default())
    }

    #[test]
    fn tap_classes_cover_nine_and_instances_sum_to_25() {
        let mut counts = [0usize; MULT_SLOTS];
        for dy in -2isize..=2 {
            for dx in -2isize..=2 {
                counts[tap_class(dy, dx)] += 1;
            }
        }
        assert_eq!(counts, MULT_INSTANCES);
        assert_eq!(MULT_INSTANCES.iter().sum::<usize>(), 25);
        assert_eq!(ADDER_INSTANCES.iter().sum::<usize>(), 24);
    }

    #[test]
    fn kernel_sums_to_256() {
        let total: u32 = (-2isize..=2)
            .flat_map(|dy| (-2isize..=2).map(move |dx| tap_coeff(dy, dx) as u32))
            .sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn exact_config_matches_reference_filter() {
        let lib = library();
        let accel = GaussianAccelerator::new(&lib);
        for img in test_corpus(32, 3) {
            let approx = accel.filter(&AcceleratorConfig::exact(), &img);
            let exact = exact_gaussian(&img);
            assert_eq!(approx, exact, "exact config must be bit-exact");
        }
    }

    #[test]
    fn exact_filter_smooths() {
        let img = crate::image::noise(32, 5);
        let out = exact_gaussian(&img);
        // Total variation decreases under low-pass filtering.
        let tv = |im: &Image| -> f64 {
            let mut s = 0.0;
            for y in 0..im.height() {
                for x in 1..im.width() {
                    s += (im.pixel_clamped(x as isize, y as isize) as f64
                        - im.pixel_clamped(x as isize - 1, y as isize) as f64)
                        .abs();
                }
            }
            s
        };
        assert!(tv(&out) < tv(&img) * 0.5);
    }

    #[test]
    fn approximate_config_degrades_gracefully() {
        let lib = library();
        let accel = GaussianAccelerator::new(&lib);
        let img = gradient(32);
        let exact = exact_gaussian(&img);
        // Mildly approximate: truncated-2 multipliers everywhere.
        let mild = AcceleratorConfig {
            mult_slots: [1; MULT_SLOTS],
            adder_slots: [0; ADDER_SLOTS],
        };
        // Heavily approximate.
        let heavy = AcceleratorConfig {
            mult_slots: [3; MULT_SLOTS],
            adder_slots: [5; ADDER_SLOTS],
        };
        let s_mild = ssim(&accel.filter(&mild, &img), &exact);
        let s_heavy = ssim(&accel.filter(&heavy, &img), &exact);
        assert!(s_mild > 0.8, "mild config too bad: {s_mild}");
        assert!(s_mild > s_heavy, "mild {s_mild} vs heavy {s_heavy}");
    }

    #[test]
    fn hw_cost_composition_is_monotone() {
        let lib = library();
        let accel = GaussianAccelerator::new(&lib);
        let exact = accel.hw_cost(&AcceleratorConfig::exact());
        // Cheapest multiplier everywhere should cut LUTs and power.
        let cheapest_mult = (0..lib.multipliers().len())
            .min_by_key(|&i| lib.multipliers()[i].fpga().luts)
            .unwrap();
        let cheap = AcceleratorConfig {
            mult_slots: [cheapest_mult; MULT_SLOTS],
            adder_slots: [0; ADDER_SLOTS],
        };
        let cheap_cost = accel.hw_cost(&cheap);
        assert!(cheap_cost.luts < exact.luts);
        assert!(cheap_cost.power_mw < exact.power_mw);
        assert!(exact.synth_time_s > 0.0);
    }

    #[test]
    fn config_space_matches_formula() {
        let lib = library();
        let space = AcceleratorConfig::space_size(&lib);
        assert_eq!(space, 9f64.powi(9) * 8f64.powi(5));
        assert!(space > 1e13);
    }

    #[test]
    fn features_are_one_hot() {
        let lib = library();
        let cfg = AcceleratorConfig::exact();
        let f = cfg.features(&lib);
        assert_eq!(f.len(), 9 * 9 + 5 * 8);
        assert_eq!(f.iter().sum::<f64>() as usize, MULT_SLOTS + ADDER_SLOTS);
    }
}

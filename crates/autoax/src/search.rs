//! The AutoAx-FPGA search: estimator training, hill-climbing pareto
//! construction and the random-search baseline (Fig. 9).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use afp_ml::forest::RandomForest;
use afp_ml::{Matrix, Regressor};
use approxfpgas::pareto::{pareto_front, peel_fronts};

use crate::components::ComponentLibrary;
use crate::filter::{
    exact_gaussian, AcceleratorConfig, GaussianAccelerator, ADDER_SLOTS, MULT_SLOTS,
};
use crate::image::{test_corpus, Image};
use crate::ssim::mean_ssim;

/// Which FPGA cost the search trades against SSIM (the paper's three
/// scenarios).
// Safe total order (`Eq + Ord`, no float keys): the clippy.toml
// `partial_cmp` ban fires inside the derive expansion, not here.
#[allow(clippy::disallowed_methods)]
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostObjective {
    /// Latency-SSIM.
    Latency,
    /// Power-SSIM.
    Power,
    /// Area-SSIM.
    Area,
}

impl CostObjective {
    /// All scenarios in paper order.
    pub const ALL: [CostObjective; 3] = [
        CostObjective::Latency,
        CostObjective::Power,
        CostObjective::Area,
    ];

    /// Extract the cost from an [`crate::filter::HwCost`].
    pub fn of(&self, cost: &crate::filter::HwCost) -> f64 {
        match self {
            CostObjective::Latency => cost.delay_ns,
            CostObjective::Power => cost.power_mw,
            CostObjective::Area => cost.luts as f64,
        }
    }

    /// Scenario label.
    pub fn label(&self) -> &'static str {
        match self {
            CostObjective::Latency => "latency-SSIM",
            CostObjective::Power => "power-SSIM",
            CostObjective::Area => "area-SSIM",
        }
    }
}

/// A fully measured accelerator design point.
#[derive(Clone, Debug)]
pub struct MeasuredDesign {
    /// The slot assignment.
    pub config: AcceleratorConfig,
    /// Measured quality (mean SSIM over the corpus, higher is better).
    pub ssim: f64,
    /// Measured (composed) FPGA cost.
    pub cost: crate::filter::HwCost,
}

/// Configuration of the AutoAx-FPGA run.
#[derive(Clone, Debug)]
pub struct AutoAxConfig {
    /// Random designs measured to train the estimators (paper: 5000).
    pub training_samples: usize,
    /// Hill-climber restarts per scenario.
    pub restarts: usize,
    /// Hill-climber steps per restart.
    pub steps: usize,
    /// Random-search baseline budget (measured designs).
    pub random_budget: usize,
    /// Image corpus edge length.
    pub image_size: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for AutoAxConfig {
    fn default() -> AutoAxConfig {
        AutoAxConfig {
            training_samples: 600,
            restarts: 24,
            steps: 60,
            random_budget: 120,
            image_size: 32,
            seed: 0xA07A,
        }
    }
}

/// Result of one AutoAx-FPGA run.
pub struct AutoAxOutcome {
    /// Measured training sample (shared across scenarios).
    pub training: Vec<MeasuredDesign>,
    /// Synthesized (measured) hill-climber candidates per scenario.
    pub autoax: Vec<(CostObjective, Vec<MeasuredDesign>)>,
    /// Random-search baseline designs.
    pub random: Vec<MeasuredDesign>,
    /// Size of the full configuration space.
    pub space_size: f64,
}

impl AutoAxOutcome {
    /// Pareto front (cost vs 1-SSIM, both minimized) of a design list for
    /// `objective`, returned as indices into `designs`.
    pub fn front(designs: &[MeasuredDesign], objective: CostObjective) -> Vec<usize> {
        let pts: Vec<(f64, f64)> = designs
            .iter()
            .map(|d| (objective.of(&d.cost), 1.0 - d.ssim))
            .collect();
        pareto_front(&pts)
    }

    /// Hypervolume-style dominance check: fraction of `b` designs that are
    /// dominated by some design in `a` (cost vs 1-SSIM minimized).
    pub fn domination_rate(
        a: &[MeasuredDesign],
        b: &[MeasuredDesign],
        objective: CostObjective,
    ) -> f64 {
        if b.is_empty() {
            return 0.0;
        }
        let dominated = b
            .iter()
            .filter(|d| {
                let dp = (objective.of(&d.cost), 1.0 - d.ssim);
                a.iter().any(|x| {
                    let xp = (objective.of(&x.cost), 1.0 - x.ssim);
                    approxfpgas::pareto::dominates(xp, dp)
                })
            })
            .count();
        dominated as f64 / b.len() as f64
    }
}

/// The AutoAx-FPGA runner bound to a component library.
pub struct AutoAx<'l> {
    library: &'l ComponentLibrary,
    config: AutoAxConfig,
    corpus: Vec<Image>,
    references: Vec<Image>,
}

impl<'l> AutoAx<'l> {
    /// Create a runner; precomputes the image corpus and exact references.
    pub fn new(library: &'l ComponentLibrary, config: AutoAxConfig) -> AutoAx<'l> {
        let corpus = test_corpus(config.image_size, config.seed);
        let references = corpus.iter().map(exact_gaussian).collect();
        AutoAx {
            library,
            config,
            corpus,
            references,
        }
    }

    /// Measure one configuration: run the behavioural datapath on the
    /// corpus and compose the hardware cost.
    pub fn measure(&self, config: &AcceleratorConfig) -> MeasuredDesign {
        let accel = GaussianAccelerator::new(self.library);
        let outputs: Vec<Image> = self
            .corpus
            .iter()
            .map(|img| accel.filter(config, img))
            .collect();
        MeasuredDesign {
            config: config.clone(),
            ssim: mean_ssim(&outputs, &self.references),
            cost: accel.hw_cost(config),
        }
    }

    fn random_config(&self, rng: &mut SmallRng) -> AcceleratorConfig {
        let m = self.library.multipliers().len();
        let a = self.library.adders().len();
        let mut cfg = AcceleratorConfig::exact();
        for s in cfg.mult_slots.iter_mut() {
            *s = rng.gen_range(0..m);
        }
        for s in cfg.adder_slots.iter_mut() {
            *s = rng.gen_range(0..a);
        }
        cfg
    }

    fn neighbor(&self, config: &AcceleratorConfig, rng: &mut SmallRng) -> AcceleratorConfig {
        let mut next = config.clone();
        if rng.gen_bool(MULT_SLOTS as f64 / (MULT_SLOTS + ADDER_SLOTS) as f64) {
            let slot = rng.gen_range(0..MULT_SLOTS);
            next.mult_slots[slot] = rng.gen_range(0..self.library.multipliers().len());
        } else {
            let slot = rng.gen_range(0..ADDER_SLOTS);
            next.adder_slots[slot] = rng.gen_range(0..self.library.adders().len());
        }
        next
    }

    /// Run the full AutoAx-FPGA methodology.
    pub fn run(&self) -> AutoAxOutcome {
        self.run_traced(&afp_obs::Recorder::disabled())
    }

    /// [`AutoAx::run`] with structured tracing: the training-sample
    /// measurement, estimator fits, hill climb, candidate synthesis and
    /// random baseline each record an `autoax/...` span. Tracing never
    /// influences the search, so traced and untraced runs are identical.
    pub fn run_traced(&self, recorder: &afp_obs::Recorder) -> AutoAxOutcome {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        // 1. Random training sample, measured.
        let training: Vec<MeasuredDesign> = {
            let mut span = recorder.span("autoax/train_sample");
            span.add_items(self.config.training_samples as u64);
            (0..self.config.training_samples)
                .map(|_| self.measure(&self.random_config(&mut rng)))
                .collect()
        };

        // 2. Estimators: QoR and one per cost objective.
        let mut estimator_span = recorder.span("autoax/estimators");
        let x_rows: Vec<Vec<f64>> = training
            .iter()
            .map(|d| d.config.features(self.library))
            .collect();
        let refs: Vec<&[f64]> = x_rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y_ssim: Vec<f64> = training.iter().map(|d| d.ssim).collect();
        let mut qor_estimator = RandomForest::new(30, Default::default(), self.config.seed ^ 0x90);
        qor_estimator
            .fit(&x, &y_ssim)
            .expect("training sample is non-degenerate");
        estimator_span.add_items(1);
        drop(estimator_span);

        let mut autoax = Vec::new();
        for objective in CostObjective::ALL {
            let y_cost: Vec<f64> = training.iter().map(|d| objective.of(&d.cost)).collect();
            let mut cost_estimator =
                RandomForest::new(30, Default::default(), self.config.seed ^ 0x91);
            {
                let mut span = recorder.span("autoax/estimators");
                cost_estimator
                    .fit(&x, &y_cost)
                    .expect("training sample is non-degenerate");
                span.add_items(1);
            }

            // 3. Hill-climb an estimated pareto archive. Every *accepted*
            //    step is archived (not just the endpoint), so the archive
            //    traces the whole descent and its estimated front carries
            //    enough candidates to synthesize, as in the paper.
            let mut climb_span = recorder.span("autoax/hill_climb");
            let mut archive: Vec<(AcceleratorConfig, f64, f64)> = Vec::new(); // (cfg, est_cost, est_err)
            for _ in 0..self.config.restarts {
                let mut current = self.random_config(&mut rng);
                let mut cur_score =
                    self.estimate_scalar(&current, &qor_estimator, &cost_estimator, &mut rng);
                archive.push((current.clone(), cur_score.1, cur_score.2));
                for _ in 0..self.config.steps {
                    let cand = self.neighbor(&current, &mut rng);
                    let cand_score =
                        self.estimate_scalar(&cand, &qor_estimator, &cost_estimator, &mut rng);
                    if cand_score.0 <= cur_score.0 {
                        current = cand;
                        cur_score = cand_score;
                        archive.push((current.clone(), cur_score.1, cur_score.2));
                    }
                }
            }
            climb_span.add_items(archive.len() as u64);
            drop(climb_span);
            // Estimated pareto front of the archive -> candidates to
            // "synthesize" (measure).
            // The paper constructs 3 pseudo-pareto fronts from the
            // hill-climber's archive and synthesizes all of them.
            // Estimator output is untrusted input: archive entries with a
            // non-finite estimated coordinate are quarantined from the
            // peeling (same policy as the main flow) instead of leaking
            // into the synthesis budget.
            let mut kept: Vec<usize> = Vec::with_capacity(archive.len());
            let mut pts: Vec<(f64, f64)> = Vec::with_capacity(archive.len());
            for (i, (_, c, e)) in archive.iter().enumerate() {
                if c.is_finite() && e.is_finite() {
                    kept.push(i);
                    pts.push((*c, *e));
                }
            }
            let mut synth_span = recorder.span("autoax/synthesize");
            let mut seen: std::collections::HashSet<AcceleratorConfig> =
                std::collections::HashSet::new();
            let mut measured: Vec<MeasuredDesign> = Vec::new();
            for front in peel_fronts(&pts, 3) {
                for i in front {
                    let ai = kept[i];
                    if seen.insert(archive[ai].0.clone()) {
                        measured.push(self.measure(&archive[ai].0));
                    }
                }
            }
            synth_span.add_items(measured.len() as u64);
            drop(synth_span);
            autoax.push((objective, measured));
        }

        // 4. Random-search baseline: same synthesis budget, no estimators.
        let random: Vec<MeasuredDesign> = {
            let mut span = recorder.span("autoax/random_baseline");
            span.add_items(self.config.random_budget as u64);
            (0..self.config.random_budget)
                .map(|_| self.measure(&self.random_config(&mut rng)))
                .collect()
        };

        AutoAxOutcome {
            training,
            autoax,
            random,
            space_size: AcceleratorConfig::space_size(self.library),
        }
    }

    /// Scalarized estimated objective for hill climbing: weighted sum of
    /// estimated cost and estimated quality loss, with a random weight per
    /// call drawn from the restart RNG to diversify the archive.
    fn estimate_scalar(
        &self,
        config: &AcceleratorConfig,
        qor: &RandomForest,
        cost: &RandomForest,
        rng: &mut SmallRng,
    ) -> (f64, f64, f64) {
        let f = config.features(self.library);
        // Estimates are untrusted: `clamp` propagates NaN, so pin
        // non-finite predictions to their worst rankable value instead of
        // letting them poison the hill-climb's accept comparison.
        let est_ssim = qor.predict_row(&f);
        let est_ssim = if est_ssim.is_finite() {
            est_ssim.clamp(-1.0, 1.0)
        } else {
            -1.0
        };
        let est_cost = cost.predict_row(&f);
        let est_cost = if est_cost.is_finite() {
            est_cost.max(0.0)
        } else {
            f64::INFINITY
        };
        let err = 1.0 - est_ssim;
        // Mild stochastic weighting (seeded) keeps different climbs on
        // different parts of the front.
        let w = 0.3 + 0.4 * rng.gen::<f64>();
        (w * err * 100.0 + (1.0 - w) * est_cost, est_cost, err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_fpga::FpgaConfig;

    fn quick() -> AutoAxConfig {
        AutoAxConfig {
            training_samples: 60,
            restarts: 6,
            steps: 12,
            random_budget: 20,
            image_size: 16,
            seed: 5,
        }
    }

    #[test]
    fn measure_exact_config_is_perfect_quality() {
        let lib = ComponentLibrary::paper_defaults(&FpgaConfig::default());
        let ax = AutoAx::new(&lib, quick());
        let d = ax.measure(&AcceleratorConfig::exact());
        assert!((d.ssim - 1.0).abs() < 1e-12);
        assert!(d.cost.luts > 0);
    }

    #[test]
    fn run_produces_all_scenarios() {
        let lib = ComponentLibrary::paper_defaults(&FpgaConfig::default());
        let ax = AutoAx::new(&lib, quick());
        let out = ax.run();
        assert_eq!(out.training.len(), 60);
        assert_eq!(out.autoax.len(), 3);
        assert_eq!(out.random.len(), 20);
        assert!(out.space_size > 1e13);
        for (obj, designs) in &out.autoax {
            assert!(!designs.is_empty(), "{obj:?} produced no designs");
            for d in designs {
                assert!(d.ssim <= 1.0 + 1e-12);
                assert!(obj.of(&d.cost) > 0.0);
            }
        }
    }

    #[test]
    fn autoax_beats_or_matches_random_search() {
        let lib = ComponentLibrary::paper_defaults(&FpgaConfig::default());
        let ax = AutoAx::new(
            &lib,
            AutoAxConfig {
                training_samples: 120,
                restarts: 10,
                steps: 25,
                random_budget: 30,
                image_size: 16,
                seed: 9,
            },
        );
        let out = ax.run();
        // At least one scenario should dominate a decent share of the
        // random designs (the paper's qualitative claim).
        let best_rate = CostObjective::ALL
            .iter()
            .map(|&obj| {
                let designs = &out
                    .autoax
                    .iter()
                    .find(|(o, _)| *o == obj)
                    .expect("scenario present")
                    .1;
                AutoAxOutcome::domination_rate(designs, &out.random, obj)
            })
            .fold(0.0f64, f64::max);
        assert!(best_rate > 0.2, "autoax dominates only {best_rate}");
    }

    #[test]
    fn fronts_are_nondominated() {
        let lib = ComponentLibrary::paper_defaults(&FpgaConfig::default());
        let ax = AutoAx::new(&lib, quick());
        let out = ax.run();
        for (obj, designs) in &out.autoax {
            let front = AutoAxOutcome::front(designs, *obj);
            for &a in &front {
                for &b in &front {
                    if a != b {
                        let pa = (obj.of(&designs[a].cost), 1.0 - designs[a].ssim);
                        let pb = (obj.of(&designs[b].cost), 1.0 - designs[b].ssim);
                        assert!(!approxfpgas::pareto::dominates(pa, pb));
                    }
                }
            }
        }
    }

    #[test]
    fn run_is_deterministic() {
        let lib = ComponentLibrary::paper_defaults(&FpgaConfig::default());
        let a = AutoAx::new(&lib, quick()).run();
        let b = AutoAx::new(&lib, quick()).run();
        assert_eq!(a.training.len(), b.training.len());
        for (x, y) in a.training.iter().zip(&b.training) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.ssim, y.ssim);
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_records_stages() {
        let lib = ComponentLibrary::paper_defaults(&FpgaConfig::default());
        let plain = AutoAx::new(&lib, quick()).run();
        let recorder = afp_obs::Recorder::enabled();
        let traced = AutoAx::new(&lib, quick()).run_traced(&recorder);
        assert_eq!(plain.training.len(), traced.training.len());
        for (x, y) in plain.training.iter().zip(&traced.training) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.ssim, y.ssim);
        }
        for ((oa, da), (ob, db)) in plain.autoax.iter().zip(&traced.autoax) {
            assert_eq!(oa, ob);
            assert_eq!(da.len(), db.len());
        }
        if recorder.is_enabled() {
            let names: Vec<String> = recorder.stages().into_iter().map(|(n, _)| n).collect();
            for stage in [
                "autoax/train_sample",
                "autoax/estimators",
                "autoax/hill_climb",
                "autoax/synthesize",
                "autoax/random_baseline",
            ] {
                assert!(names.iter().any(|n| n == stage), "missing stage {stage}");
            }
        }
    }
}

//! A second case-study accelerator: Sobel edge detection.
//!
//! Unlike the Gaussian filter, the Sobel datapath uses no multipliers
//! (the x2 taps are shifts), so its approximation space is adder-only:
//! five adder slots over the component library = `8^5 = 32,768`
//! configurations — small enough to enumerate *exhaustively*, which makes
//! it the perfect testbed for validating estimator-driven search against
//! the true pareto front (something the paper could not afford to do).
//!
//! Slot plan per pixel (3x3 window `p[r][c]`):
//!
//! * slot 0 — column/row outer sums `p0 + p2`
//! * slot 1 — adding the doubled center `t + 2*p1`
//! * slot 2 — same as slot 0 for the second gradient axis
//! * slot 3 — same as slot 1 for the second gradient axis
//! * slot 4 — magnitude `|gx| + |gy|`
//!
//! Differences are exact (two's-complement subtraction is not an
//! approximate-adder use case in the library), matching how AutoAx
//! assigns components only to the addition slots.

use crate::components::ComponentLibrary;
use crate::filter::HwCost;
use crate::image::Image;

/// Number of adder slots in the Sobel datapath.
pub const SOBEL_SLOTS: usize = 5;

/// Adder instances per slot (per-pixel adds behind each slot).
pub const SOBEL_INSTANCES: [usize; SOBEL_SLOTS] = [2, 2, 2, 2, 1];

/// Slot assignment for the Sobel accelerator.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SobelConfig {
    /// Adder component index per slot.
    pub adder_slots: [usize; SOBEL_SLOTS],
}

impl SobelConfig {
    /// All-exact configuration (component 0 = exact in the default
    /// library).
    pub fn exact() -> SobelConfig {
        SobelConfig {
            adder_slots: [0; SOBEL_SLOTS],
        }
    }

    /// Size of the full configuration space for `library`.
    pub fn space_size(library: &ComponentLibrary) -> usize {
        library.adders().len().pow(SOBEL_SLOTS as u32)
    }

    /// Enumerate every configuration (row-major over slots).
    pub fn enumerate(library: &ComponentLibrary) -> Vec<SobelConfig> {
        let a = library.adders().len();
        let total = SobelConfig::space_size(library);
        (0..total)
            .map(|mut idx| {
                let mut slots = [0usize; SOBEL_SLOTS];
                for s in slots.iter_mut() {
                    *s = idx % a;
                    idx /= a;
                }
                SobelConfig { adder_slots: slots }
            })
            .collect()
    }
}

/// The Sobel accelerator bound to a component library (adders only).
pub struct SobelAccelerator<'l> {
    library: &'l ComponentLibrary,
}

impl<'l> SobelAccelerator<'l> {
    /// Bind to `library`.
    pub fn new(library: &'l ComponentLibrary) -> SobelAccelerator<'l> {
        SobelAccelerator { library }
    }

    /// Run the approximate datapath: per-pixel gradient magnitude
    /// `min(255, |gx| + |gy|)` with the additions routed through the
    /// assigned adder components (batched evaluation).
    pub fn filter(&self, config: &SobelConfig, input: &Image) -> Image {
        let (w, h) = (input.width(), input.height());
        let adders = self.library.adders();
        let px = |x: isize, y: isize| -> u64 { input.pixel_clamped(x, y) as u64 };

        // Stage A (slots 0 and 2): outer sums for both axes.
        let mut pairs_col: Vec<(u64, u64)> = Vec::with_capacity(2 * w * h);
        let mut pairs_row: Vec<(u64, u64)> = Vec::with_capacity(2 * w * h);
        for y in 0..h as isize {
            for x in 0..w as isize {
                // gx columns: left (x-1), right (x+1).
                pairs_col.push((px(x - 1, y - 1), px(x - 1, y + 1)));
                pairs_col.push((px(x + 1, y - 1), px(x + 1, y + 1)));
                // gy rows: top (y-1), bottom (y+1).
                pairs_row.push((px(x - 1, y - 1), px(x + 1, y - 1)));
                pairs_row.push((px(x - 1, y + 1), px(x + 1, y + 1)));
            }
        }
        let col_outer = adders[config.adder_slots[0]].add_batch(&pairs_col);
        let row_outer = adders[config.adder_slots[2]].add_batch(&pairs_row);

        // Stage B (slots 1 and 3): add the doubled centers.
        let mut pairs_colc: Vec<(u64, u64)> = Vec::with_capacity(2 * w * h);
        let mut pairs_rowc: Vec<(u64, u64)> = Vec::with_capacity(2 * w * h);
        let mut k = 0usize;
        for y in 0..h as isize {
            for x in 0..w as isize {
                pairs_colc.push((col_outer[k] & 0xFFFF, 2 * px(x - 1, y)));
                pairs_colc.push((col_outer[k + 1] & 0xFFFF, 2 * px(x + 1, y)));
                pairs_rowc.push((row_outer[k] & 0xFFFF, 2 * px(x, y - 1)));
                pairs_rowc.push((row_outer[k + 1] & 0xFFFF, 2 * px(x, y + 1)));
                k += 2;
            }
        }
        let col_full = adders[config.adder_slots[1]].add_batch(&pairs_colc);
        let row_full = adders[config.adder_slots[3]].add_batch(&pairs_rowc);

        // Exact differences and the final magnitude addition (slot 4).
        let mut mag_pairs: Vec<(u64, u64)> = Vec::with_capacity(w * h);
        for i in 0..w * h {
            let gx = (col_full[2 * i + 1] as i64 - col_full[2 * i] as i64).unsigned_abs();
            let gy = (row_full[2 * i + 1] as i64 - row_full[2 * i] as i64).unsigned_abs();
            mag_pairs.push((gx & 0xFFFF, gy & 0xFFFF));
        }
        let mags = adders[config.adder_slots[4]].add_batch(&mag_pairs);
        let data: Vec<u8> = mags.iter().map(|&m| m.min(255) as u8).collect();
        Image::from_raw(w, h, data)
    }

    /// Composed hardware cost (instance-weighted sums; critical path =
    /// stage A + stage B + subtract/abs constant + magnitude).
    pub fn hw_cost(&self, config: &SobelConfig) -> HwCost {
        let adders = self.library.adders();
        let mut luts = 0usize;
        let mut power = 0.0;
        let mut gates = 0usize;
        let mut depth = 0u32;
        let mut delay = 0.0;
        for (slot, &choice) in config.adder_slots.iter().enumerate() {
            let c = &adders[choice];
            luts += SOBEL_INSTANCES[slot] * c.fpga().luts;
            power += SOBEL_INSTANCES[slot] as f64 * c.fpga().power_mw;
            gates += SOBEL_INSTANCES[slot] * c.circuit().netlist().num_logic_gates();
            depth += c.fpga().depth_levels;
            // Slots 0/2 and 1/3 operate in parallel pairs; count the path
            // once per stage plus the magnitude adder.
            if slot == 0 || slot == 1 || slot == 4 {
                delay += c.fpga().delay_ns + 0.25;
            }
        }
        // Fixed cost of the exact subtract/abs datapath (two 11-bit
        // subtractors + muxes), modeled as a constant block.
        luts += 28;
        power += 6.0;
        delay += 1.1;
        let synth_time_s =
            afp_fpga::synth_time::estimate(gates + 150, luts, depth + 4, hash(config));
        HwCost {
            luts,
            power_mw: power,
            delay_ns: delay,
            synth_time_s,
        }
    }
}

fn hash(config: &SobelConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in &config.adder_slots {
        h ^= v as u64 + 0x9E37;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Exact integer Sobel reference: `min(255, |gx| + |gy|)`, clamp-to-edge.
pub fn exact_sobel(input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut data = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let p = |dx: isize, dy: isize| input.pixel_clamped(x + dx, y + dy) as i64;
            let gx = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2 * p(-1, 0) + p(-1, 1));
            let gy = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2 * p(0, -1) + p(1, -1));
            data.push((gx.abs() + gy.abs()).min(255) as u8);
        }
    }
    Image::from_raw(w, h, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{checkerboard, gradient, plasma};
    use crate::ssim::ssim;
    use afp_fpga::FpgaConfig;

    fn library() -> ComponentLibrary {
        ComponentLibrary::paper_defaults(&FpgaConfig::default())
    }

    #[test]
    fn exact_config_matches_reference() {
        let lib = library();
        let accel = SobelAccelerator::new(&lib);
        for img in [gradient(24), checkerboard(24, 4), plasma(24, 9)] {
            assert_eq!(
                accel.filter(&SobelConfig::exact(), &img),
                exact_sobel(&img),
                "exact Sobel config must be bit-exact"
            );
        }
    }

    #[test]
    fn sobel_finds_edges() {
        let img = checkerboard(32, 8);
        let out = exact_sobel(&img);
        // Interior of a cell: zero gradient; at cell boundaries: strong.
        let max = out.pixels().iter().copied().max().unwrap();
        let zeros = out.pixels().iter().filter(|&&p| p == 0).count();
        assert_eq!(max, 255);
        assert!(zeros > out.pixels().len() / 3, "flat areas must be dark");
    }

    #[test]
    fn approximate_adders_degrade_quality_monotonically_in_cost() {
        let lib = library();
        let accel = SobelAccelerator::new(&lib);
        let img = plasma(32, 5);
        let reference = exact_sobel(&img);
        let exact_cfg = SobelConfig::exact();
        let rough = SobelConfig {
            adder_slots: [5; SOBEL_SLOTS], // no_carry(16,6)
        };
        let s_exact = ssim(&accel.filter(&exact_cfg, &img), &reference);
        let s_rough = ssim(&accel.filter(&rough, &img), &reference);
        assert!((s_exact - 1.0).abs() < 1e-12);
        assert!(s_rough < 1.0);
        let c_exact = accel.hw_cost(&exact_cfg);
        let c_rough = accel.hw_cost(&rough);
        assert!(c_rough.luts < c_exact.luts);
    }

    #[test]
    fn enumeration_covers_the_space() {
        let lib = library();
        let all = SobelConfig::enumerate(&lib);
        assert_eq!(all.len(), 8usize.pow(5));
        assert_eq!(all.len(), SobelConfig::space_size(&lib));
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), all.len());
    }

    #[test]
    fn hw_cost_is_deterministic_and_positive() {
        let lib = library();
        let accel = SobelAccelerator::new(&lib);
        let cfg = SobelConfig {
            adder_slots: [1, 2, 3, 0, 4],
        };
        let a = accel.hw_cost(&cfg);
        let b = accel.hw_cost(&cfg);
        assert_eq!(a, b);
        assert!(a.luts > 0 && a.power_mw > 0.0 && a.delay_ns > 0.0);
    }
}

//! The ApproxFPGAs methodology (DAC 2020) — ML-driven exploration of
//! pareto-optimal approximate circuits for FPGAs.
//!
//! Given a large library of approximate arithmetic circuits whose ASIC
//! parameters and error metrics are cheap to obtain, but whose FPGA
//! parameters require expensive synthesis, the flow:
//!
//! 1. synthesizes a small subset (default 10%) for the target FPGA,
//! 2. trains the 18 statistical/ML models of Table I to estimate each FPGA
//!    parameter (latency, power, #LUTs) from structural + ASIC features,
//! 3. scores the models by the paper's *fidelity* metric and keeps the
//!    top performers,
//! 4. estimates the whole library, builds several *pseudo-pareto fronts*
//!    per model (peeling scheme of §II), takes the union,
//! 5. re-synthesizes only those candidates and extracts the measured
//!    pareto-optimal FPGA ACs,
//!
//! cutting exploration time roughly 10x while recovering most of the true
//! pareto front.
//!
//! Entry point: [`flow::Flow`]. Sub-modules mirror the paper's pipeline:
//! [`record`] (features), [`dataset`] (subset + split), [`fidelity`]
//! (model evaluation), [`pareto`] (fronts, peeling, coverage),
//! [`flow`] (orchestration + time accounting).
//!
//! # Example
//!
//! ```
//! use afp_circuits::{ArithKind, LibrarySpec};
//! use afp_ml::MlModelId;
//! use approxfpgas::flow::{Flow, FlowConfig};
//!
//! // A miniature run (tiny library, few models) — at full library sizes
//! // (see afp-bench) the same flow reaches the paper's ~10x speedup.
//! let config = FlowConfig {
//!     library: LibrarySpec::new(ArithKind::Adder, 8, 60),
//!     models: vec![MlModelId::Ml11, MlModelId::Ml14, MlModelId::Ml18],
//!     top_models: 2,
//!     ..FlowConfig::default()
//! };
//! let outcome = Flow::new(config).run();
//! assert!(outcome.time.flow_count <= outcome.time.exhaustive_count);
//! assert!(!outcome.final_fronts.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dataset;
pub mod fidelity;
pub mod flow;
pub mod pareto;
pub mod record;
pub mod report;
pub mod request;
pub mod targets;
pub mod zoo_store;

pub use cache::{CacheBackend, CachedCharacterization, CharacterizationCache};
pub use fidelity::FidelityRecord;
pub use flow::{ChaosSpec, Flow, FlowConfig, FlowOutcome, TimeAccounting, DEFAULT_SHARD_CIRCUITS};
pub use pareto::{coverage, pareto_front, peel_fronts};
pub use record::{CircuitRecord, FeatureLayout, FpgaParam};
pub use report::run_report;
pub use request::{characterize_request, request_report, RequestConfig};
pub use targets::{
    sweep_targets, transfer_experiment, transfer_matrix, TargetRun, TargetSet, TargetSweep,
    TransferOutcome, UnknownTargetError,
};
pub use zoo_store::{load_zoo, save_zoo, SavedZoo, ZooStoreError, AFPM_RECORD_VERSION};

/// Structured tracing and run reports (re-export of [`afp_obs`]).
///
/// [`flow::Flow::run_traced`] records per-stage spans into an
/// [`obs::Recorder`]; [`report::run_report`] folds the recorder plus a
/// [`FlowOutcome`] into an [`obs::RunReport`] with table and JSON sinks.
pub use afp_obs as obs;

/// The workspace float-ordering policy (re-export of [`afp_ord`]).
///
/// Every ranking in the flow — pareto sweeps, fidelity top-k, split
/// search — uses these total-order comparators; NaN ranks worst and can
/// neither panic a sort nor win a selection. See the [`afp_ord`] crate
/// docs for the full policy table.
pub use afp_ord as ord;

//! The content-addressed characterization cache.
//!
//! Characterizing a circuit — ASIC synthesis, FPGA synthesis, behavioural
//! error analysis — is the dominant cost of a flow run, yet its result is
//! a pure function of the circuit *structure* and the three model
//! configurations. This module keys that computation by a 128-bit
//! fingerprint of exactly those inputs and memoizes the three reports, in
//! memory and optionally in an append-only CSV file, so repeated runs (or
//! repeated circuits) skip synthesis entirely.

use std::path::Path;

use afp_asic::AsicReport;
use afp_circuits::ArithCircuit;
use afp_error::ErrorMetrics;
use afp_fpga::FpgaReport;
use afp_runtime::{Counters, CsvRecord, DiskTier, Fingerprint, Key128, MemoCache, StableHasher};

/// The memoized result of characterizing one circuit under one
/// configuration triple: everything expensive, nothing circuit-identity
/// specific (name, id and stats are recomputed cheaply on a hit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachedCharacterization {
    /// ASIC synthesis report.
    pub asic: AsicReport,
    /// Behavioural error metrics.
    pub error: ErrorMetrics,
    /// FPGA synthesis report.
    pub fpga: FpgaReport,
}

impl CsvRecord for CachedCharacterization {
    const VERSION: u32 = 1;

    fn columns() -> Vec<&'static str> {
        vec![
            "asic_area_um2",
            "asic_delay_ns",
            "asic_power_mw",
            "asic_dynamic_mw",
            "asic_leakage_mw",
            "asic_cells",
            "err_samples",
            "err_exhaustive",
            "err_med",
            "err_mae",
            "err_wce",
            "err_wce_rel",
            "err_mre",
            "err_error_prob",
            "err_mse",
            "err_bias",
            "fpga_luts",
            "fpga_slices",
            "fpga_depth",
            "fpga_delay_ns",
            "fpga_power_mw",
            "fpga_synth_time_s",
        ]
    }

    fn to_fields(&self) -> Vec<String> {
        // `{:?}` for f64 is the shortest representation that parses back
        // to the same bits, so the disk tier is lossless.
        vec![
            format!("{:?}", self.asic.area_um2),
            format!("{:?}", self.asic.delay_ns),
            format!("{:?}", self.asic.power_mw),
            format!("{:?}", self.asic.dynamic_mw),
            format!("{:?}", self.asic.leakage_mw),
            format!("{}", self.asic.cells),
            format!("{}", self.error.samples),
            format!("{}", self.error.exhaustive),
            format!("{:?}", self.error.med),
            format!("{:?}", self.error.mae),
            format!("{}", self.error.wce),
            format!("{:?}", self.error.wce_rel),
            format!("{:?}", self.error.mre),
            format!("{:?}", self.error.error_prob),
            format!("{:?}", self.error.mse),
            format!("{:?}", self.error.bias),
            format!("{}", self.fpga.luts),
            format!("{}", self.fpga.slices),
            format!("{}", self.fpga.depth_levels),
            format!("{:?}", self.fpga.delay_ns),
            format!("{:?}", self.fpga.power_mw),
            format!("{:?}", self.fpga.synth_time_s),
        ]
    }

    fn from_fields(fields: &[&str]) -> Option<CachedCharacterization> {
        let [aa, ad, ap, ady, al, ac, es, ee, emed, emae, ewce, ewr, emre, eep, emse, eb, fl, fs, fd, fde, fp, ft] =
            fields
        else {
            return None;
        };
        Some(CachedCharacterization {
            asic: AsicReport {
                area_um2: aa.parse().ok()?,
                delay_ns: ad.parse().ok()?,
                power_mw: ap.parse().ok()?,
                dynamic_mw: ady.parse().ok()?,
                leakage_mw: al.parse().ok()?,
                cells: ac.parse().ok()?,
            },
            error: ErrorMetrics {
                samples: es.parse().ok()?,
                exhaustive: ee.parse().ok()?,
                med: emed.parse().ok()?,
                mae: emae.parse().ok()?,
                wce: ewce.parse().ok()?,
                wce_rel: ewr.parse().ok()?,
                mre: emre.parse().ok()?,
                error_prob: eep.parse().ok()?,
                mse: emse.parse().ok()?,
                bias: eb.parse().ok()?,
            },
            fpga: FpgaReport {
                luts: fl.parse().ok()?,
                slices: fs.parse().ok()?,
                depth_levels: fd.parse().ok()?,
                delay_ns: fde.parse().ok()?,
                power_mw: fp.parse().ok()?,
                synth_time_s: ft.parse().ok()?,
            },
        })
    }
}

/// Two-tier (memory + optional disk) cache of [`CachedCharacterization`]s.
#[derive(Debug)]
pub struct CharacterizationCache {
    memo: MemoCache<CachedCharacterization>,
    disk: Option<DiskTier<CachedCharacterization>>,
}

/// File name of the disk tier inside the cache directory.
pub const CACHE_FILE: &str = "characterization.csv";

impl CharacterizationCache {
    /// A memory-only cache (per-process; hits across runs of one
    /// [`crate::flow::Flow`] instance).
    pub fn in_memory() -> CharacterizationCache {
        CharacterizationCache {
            memo: MemoCache::new(),
            disk: None,
        }
    }

    /// A cache persisted to `dir/characterization.csv`; existing entries
    /// are loaded into the memory tier immediately. Falls back to a
    /// memory-only cache if the directory is not writable — callers that
    /// need loud failure use [`CharacterizationCache::try_with_disk`].
    pub fn with_disk(dir: &Path) -> CharacterizationCache {
        CharacterizationCache::try_with_disk(dir)
            .unwrap_or_else(|_| CharacterizationCache::in_memory())
    }

    /// Like [`CharacterizationCache::with_disk`], but an unusable cache
    /// directory (cannot be created, or the cache file cannot be opened
    /// for append) is returned as the underlying I/O error instead of
    /// silently degrading to a memory-only cache.
    pub fn try_with_disk(dir: &Path) -> std::io::Result<CharacterizationCache> {
        let mut disk = DiskTier::open(dir, CACHE_FILE)?;
        let memo = MemoCache::new();
        for (key, value) in disk.take_loaded() {
            memo.insert(key, value);
        }
        Ok(CharacterizationCache {
            memo,
            disk: Some(disk),
        })
    }

    /// The content key of one characterization: circuit structure (not
    /// name) plus every configuration field that affects the reports.
    pub fn key(
        circuit: &ArithCircuit,
        asic: &afp_asic::AsicConfig,
        fpga: &afp_fpga::FpgaConfig,
        error: &afp_error::ErrorConfig,
    ) -> Key128 {
        let mut h = StableHasher::new();
        h.write_str("characterization");
        h.write_str(circuit.kind().mnemonic());
        h.write_usize(circuit.width());
        h.write_u64(circuit.netlist().structural_hash());
        asic.fingerprint(&mut h);
        fpga.fingerprint(&mut h);
        error.fingerprint(&mut h);
        h.finish()
    }

    /// Look up `key`, recording hit/miss in `counters`.
    pub fn get(&self, key: Key128, counters: &Counters) -> Option<CachedCharacterization> {
        self.memo.get(key, counters)
    }

    /// Store a freshly computed entry in both tiers.
    pub fn insert(&self, key: Key128, value: CachedCharacterization) {
        self.memo.insert(key, value);
        if let Some(disk) = &self.disk {
            disk.append(key, &value);
        }
    }

    /// Number of entries in the memory tier.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::adders;

    fn sample() -> CachedCharacterization {
        let c = adders::loa(8, 3);
        let asic = afp_asic::synthesize_asic(c.netlist(), &afp_asic::AsicConfig::default());
        let fpga = afp_fpga::synthesize_fpga(c.netlist(), &afp_fpga::FpgaConfig::default());
        let error = afp_error::analyze(&c, &afp_error::ErrorConfig::default());
        CachedCharacterization { asic, error, fpga }
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let v = sample();
        let fields = v.to_fields();
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let back = CachedCharacterization::from_fields(&refs).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn key_ignores_name_but_not_structure_or_config() {
        let a = adders::loa(8, 3);
        let mut renamed = a.clone();
        renamed.set_name("something-else");
        let asic = afp_asic::AsicConfig::default();
        let fpga = afp_fpga::FpgaConfig::default();
        let err = afp_error::ErrorConfig::default();
        let k = |c: &ArithCircuit, e: &afp_error::ErrorConfig| {
            CharacterizationCache::key(c, &asic, &fpga, e)
        };
        assert_eq!(k(&a, &err), k(&renamed, &err));
        assert_ne!(k(&a, &err), k(&adders::loa(8, 4), &err));
        let other_err = afp_error::ErrorConfig {
            seed: err.seed ^ 1,
            ..err.clone()
        };
        assert_ne!(k(&a, &err), k(&a, &other_err));
    }

    #[test]
    fn key_pins_every_fpga_field_that_affects_reports() {
        // The power model simulates with `activity_passes` random passes
        // from `seed`, and `prune_dominated` changes which cuts the mapper
        // keeps — all three must be part of the content key, or stale
        // entries would be served after a config change.
        let a = adders::loa(8, 3);
        let asic = afp_asic::AsicConfig::default();
        let err = afp_error::ErrorConfig::default();
        let base = afp_fpga::FpgaConfig::default();
        let k = |f: &afp_fpga::FpgaConfig| CharacterizationCache::key(&a, &asic, f, &err);
        let mut passes = base.clone();
        passes.activity_passes += 1;
        assert_ne!(k(&base), k(&passes), "activity_passes must change the key");
        let mut seed = base.clone();
        seed.seed ^= 1;
        assert_ne!(k(&base), k(&seed), "seed must change the key");
        let mut pruned = base.clone();
        pruned.prune_dominated = !base.prune_dominated;
        assert_ne!(k(&base), k(&pruned), "prune_dominated must change the key");
        assert_eq!(k(&base), k(&base.clone()), "key is deterministic");
    }

    #[test]
    fn try_with_disk_surfaces_unusable_directories() {
        let dir = std::env::temp_dir().join(format!("afp-core-trydisk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A plain file where the directory should be: create_dir_all fails.
        let blocker = dir.join("not-a-dir");
        std::fs::write(&blocker, b"x").unwrap();
        assert!(CharacterizationCache::try_with_disk(&blocker).is_err());
        // with_disk on the same path degrades to memory-only, silently.
        let fallback = CharacterizationCache::with_disk(&blocker);
        assert!(fallback.is_empty());
        // A good directory works.
        assert!(CharacterizationCache::try_with_disk(&dir.join("ok")).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("afp-core-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let v = sample();
        let key = CharacterizationCache::key(
            &adders::loa(8, 3),
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
        );
        {
            let cache = CharacterizationCache::with_disk(&dir);
            cache.insert(key, v);
        }
        let reopened = CharacterizationCache::with_disk(&dir);
        let counters = Counters::default();
        assert_eq!(reopened.get(key, &counters), Some(v));
        assert_eq!(counters.snapshot().cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The content-addressed characterization cache.
//!
//! Characterizing a circuit — ASIC synthesis, FPGA synthesis, behavioural
//! error analysis — is the dominant cost of a flow run, yet its result is
//! a pure function of the circuit *structure* and the three model
//! configurations. This module keys that computation by a 128-bit
//! fingerprint of exactly those inputs and memoizes the three reports, in
//! memory and optionally on disk, so repeated runs (or repeated circuits)
//! skip synthesis entirely.
//!
//! The disk tier has two backends: the default binary store
//! ([`afp_store::StoreTier`], compact frames + fast decode) and the
//! legacy plain-CSV tier ([`afp_runtime::DiskTier`], greppable). Both are
//! lossless — float fields round-trip bit-exactly — so flow outcomes are
//! identical whichever backend persisted the entries. Opening the default
//! backend transparently migrates a legacy CSV file once.

use std::path::Path;

use afp_asic::AsicReport;
use afp_circuits::ArithCircuit;
use afp_error::ErrorMetrics;
use afp_fpga::FpgaReport;
use afp_runtime::{Counters, CsvRecord, DiskTier, Fingerprint, Key128, MemoCache, StableHasher};
use afp_store::bytes::{put_f64, put_ivarint, put_uvarint, ByteReader};
use afp_store::{BinRecord, CsvMigration, StoreTier};

/// The memoized result of characterizing one circuit under one
/// configuration triple: everything expensive, nothing circuit-identity
/// specific (name, id and stats are recomputed cheaply on a hit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachedCharacterization {
    /// ASIC synthesis report.
    pub asic: AsicReport,
    /// Behavioural error metrics.
    pub error: ErrorMetrics,
    /// FPGA synthesis report.
    pub fpga: FpgaReport,
}

impl CsvRecord for CachedCharacterization {
    const VERSION: u32 = 1;

    fn columns() -> Vec<&'static str> {
        vec![
            "asic_area_um2",
            "asic_delay_ns",
            "asic_power_mw",
            "asic_dynamic_mw",
            "asic_leakage_mw",
            "asic_cells",
            "err_samples",
            "err_exhaustive",
            "err_med",
            "err_mae",
            "err_wce",
            "err_wce_rel",
            "err_mre",
            "err_error_prob",
            "err_mse",
            "err_bias",
            "fpga_luts",
            "fpga_slices",
            "fpga_depth",
            "fpga_delay_ns",
            "fpga_power_mw",
            "fpga_synth_time_s",
        ]
    }

    fn to_fields(&self) -> Vec<String> {
        // `{:?}` for f64 is the shortest representation that parses back
        // to the same bits, so the disk tier is lossless.
        vec![
            format!("{:?}", self.asic.area_um2),
            format!("{:?}", self.asic.delay_ns),
            format!("{:?}", self.asic.power_mw),
            format!("{:?}", self.asic.dynamic_mw),
            format!("{:?}", self.asic.leakage_mw),
            format!("{}", self.asic.cells),
            format!("{}", self.error.samples),
            format!("{}", self.error.exhaustive),
            format!("{:?}", self.error.med),
            format!("{:?}", self.error.mae),
            format!("{}", self.error.wce),
            format!("{:?}", self.error.wce_rel),
            format!("{:?}", self.error.mre),
            format!("{:?}", self.error.error_prob),
            format!("{:?}", self.error.mse),
            format!("{:?}", self.error.bias),
            format!("{}", self.fpga.luts),
            format!("{}", self.fpga.slices),
            format!("{}", self.fpga.depth_levels),
            format!("{:?}", self.fpga.delay_ns),
            format!("{:?}", self.fpga.power_mw),
            format!("{:?}", self.fpga.synth_time_s),
        ]
    }

    fn from_fields(fields: &[&str]) -> Option<CachedCharacterization> {
        let [aa, ad, ap, ady, al, ac, es, ee, emed, emae, ewce, ewr, emre, eep, emse, eb, fl, fs, fd, fde, fp, ft] =
            fields
        else {
            return None;
        };
        Some(CachedCharacterization {
            asic: AsicReport {
                area_um2: aa.parse().ok()?,
                delay_ns: ad.parse().ok()?,
                power_mw: ap.parse().ok()?,
                dynamic_mw: ady.parse().ok()?,
                leakage_mw: al.parse().ok()?,
                cells: ac.parse().ok()?,
            },
            error: ErrorMetrics {
                samples: es.parse().ok()?,
                exhaustive: ee.parse().ok()?,
                med: emed.parse().ok()?,
                mae: emae.parse().ok()?,
                wce: ewce.parse().ok()?,
                wce_rel: ewr.parse().ok()?,
                mre: emre.parse().ok()?,
                error_prob: eep.parse().ok()?,
                mse: emse.parse().ok()?,
                bias: eb.parse().ok()?,
            },
            fpga: FpgaReport {
                luts: fl.parse().ok()?,
                slices: fs.parse().ok()?,
                depth_levels: fd.parse().ok()?,
                delay_ns: fde.parse().ok()?,
                power_mw: fp.parse().ok()?,
                synth_time_s: ft.parse().ok()?,
            },
        })
    }
}

/// Binary payload layout (see `DESIGN.md` "Circuit store"): raw-bits
/// `f64` for full-entropy model outputs, varints for counts, and a
/// rational reconstruction for the error metrics, which are almost always
/// exact multiples of `1/samples` — those collapse from 8 bytes to a flag
/// byte plus a short varint while staying bit-exact.
impl BinRecord for CachedCharacterization {
    const VERSION: u32 = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.asic.area_um2);
        put_f64(out, self.asic.delay_ns);
        put_f64(out, self.asic.power_mw);
        put_f64(out, self.asic.dynamic_mw);
        put_f64(out, self.asic.leakage_mw);
        put_uvarint(out, self.asic.cells as u64);
        put_uvarint(out, self.error.samples);
        out.push(self.error.exhaustive as u8);
        let den = self.error.samples;
        put_metric(out, self.error.med, den);
        put_metric(out, self.error.mae, den);
        put_uvarint(out, self.error.wce);
        put_metric(out, self.error.wce_rel, den);
        put_metric(out, self.error.mre, den);
        put_metric(out, self.error.error_prob, den);
        put_metric(out, self.error.mse, den);
        put_metric(out, self.error.bias, den);
        put_uvarint(out, self.fpga.luts as u64);
        put_uvarint(out, self.fpga.slices as u64);
        put_uvarint(out, self.fpga.depth_levels as u64);
        put_f64(out, self.fpga.delay_ns);
        put_f64(out, self.fpga.power_mw);
        put_f64(out, self.fpga.synth_time_s);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<CachedCharacterization> {
        let asic = AsicReport {
            area_um2: r.f64_le()?,
            delay_ns: r.f64_le()?,
            power_mw: r.f64_le()?,
            dynamic_mw: r.f64_le()?,
            leakage_mw: r.f64_le()?,
            cells: usize::try_from(r.uvarint()?).ok()?,
        };
        let samples = r.uvarint()?;
        let exhaustive = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let error = ErrorMetrics {
            samples,
            exhaustive,
            med: read_metric(r, samples)?,
            mae: read_metric(r, samples)?,
            wce: r.uvarint()?,
            wce_rel: read_metric(r, samples)?,
            mre: read_metric(r, samples)?,
            error_prob: read_metric(r, samples)?,
            mse: read_metric(r, samples)?,
            bias: read_metric(r, samples)?,
        };
        let fpga = FpgaReport {
            luts: usize::try_from(r.uvarint()?).ok()?,
            slices: usize::try_from(r.uvarint()?).ok()?,
            depth_levels: u32::try_from(r.uvarint()?).ok()?,
            delay_ns: r.f64_le()?,
            power_mw: r.f64_le()?,
            synth_time_s: r.f64_le()?,
        };
        Some(CachedCharacterization { asic, error, fpga })
    }
}

/// Encode a metric that is usually an exact rational `n / den`: flag 1 +
/// signed varint numerator when the reconstruction is bit-exact, flag 0 +
/// raw 8 bytes otherwise. Decoding recomputes `n as f64 / den as f64`,
/// which [`exact_ratio`] already verified reproduces the original bits.
fn put_metric(out: &mut Vec<u8>, v: f64, den: u64) {
    match exact_ratio(v, den) {
        Some(n) => {
            out.push(1);
            put_ivarint(out, n);
        }
        None => {
            out.push(0);
            put_f64(out, v);
        }
    }
}

fn read_metric(r: &mut ByteReader<'_>, den: u64) -> Option<f64> {
    match r.u8()? {
        1 => {
            let n = r.ivarint()?;
            if den == 0 {
                return None;
            }
            Some(n as f64 / den as f64)
        }
        0 => r.f64_le(),
        _ => None,
    }
}

/// The numerator `n` such that `n as f64 / den as f64` is bit-identical
/// to `v`, when one exists in safe integer range.
fn exact_ratio(v: f64, den: u64) -> Option<i64> {
    if den == 0 {
        return None;
    }
    let den_f = den as f64;
    let scaled = v * den_f;
    if !scaled.is_finite() || scaled.abs() >= 9_007_199_254_740_992.0 {
        return None; // out of exact-integer f64 range (2^53)
    }
    let n = scaled.round() as i64;
    // Bit comparison (not `==`) so -0.0 and 0.0 stay distinct.
    if (n as f64 / den_f).to_bits() == v.to_bits() {
        Some(n)
    } else {
        None
    }
}

/// Disk persistence backend for the characterization cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheBackend {
    /// The binary frame store (`characterization.afps`): compact,
    /// CRC-checked, compacted into compressed blocks. The default.
    #[default]
    Store,
    /// The legacy append-only CSV file (`characterization.csv`):
    /// greppable, kept for comparison runs and old tooling.
    Csv,
}

#[derive(Debug)]
enum DiskBackend {
    Csv(DiskTier<CachedCharacterization>),
    Store(StoreTier<CachedCharacterization>),
}

/// Two-tier (memory + optional disk) cache of [`CachedCharacterization`]s.
#[derive(Debug)]
pub struct CharacterizationCache {
    memo: MemoCache<CachedCharacterization>,
    disk: Option<DiskBackend>,
}

/// File name of the legacy CSV disk tier inside the cache directory.
pub const CACHE_FILE: &str = "characterization.csv";

/// File name of the binary store disk tier inside the cache directory.
pub const STORE_FILE: &str = "characterization.afps";

impl CharacterizationCache {
    /// A memory-only cache (per-process; hits across runs of one
    /// [`crate::flow::Flow`] instance).
    pub fn in_memory() -> CharacterizationCache {
        CharacterizationCache {
            memo: MemoCache::new(),
            disk: None,
        }
    }

    /// A cache persisted to `dir/characterization.afps` (the binary store
    /// backend); existing entries are loaded into the memory tier
    /// immediately, and a legacy `characterization.csv` in the same
    /// directory is migrated on first open. Falls back to a memory-only
    /// cache if the directory is not writable — callers that need loud
    /// failure use [`CharacterizationCache::try_with_disk`].
    pub fn with_disk(dir: &Path) -> CharacterizationCache {
        CharacterizationCache::try_with_disk(dir)
            .unwrap_or_else(|_| CharacterizationCache::in_memory())
    }

    /// Like [`CharacterizationCache::with_disk`], but an unusable cache
    /// directory (cannot be created, or the cache file cannot be opened
    /// for append) is returned as the underlying I/O error instead of
    /// silently degrading to a memory-only cache.
    pub fn try_with_disk(dir: &Path) -> std::io::Result<CharacterizationCache> {
        let disk = StoreTier::open_migrating(dir, STORE_FILE, CACHE_FILE)?;
        Ok(CharacterizationCache::from_backend(DiskBackend::Store(
            disk,
        )))
    }

    /// A cache persisted to the legacy CSV backend
    /// (`dir/characterization.csv`), falling back to memory-only on an
    /// unwritable directory.
    pub fn with_csv_disk(dir: &Path) -> CharacterizationCache {
        CharacterizationCache::try_with_csv_disk(dir)
            .unwrap_or_else(|_| CharacterizationCache::in_memory())
    }

    /// Like [`CharacterizationCache::with_csv_disk`], but loud about an
    /// unusable cache directory.
    pub fn try_with_csv_disk(dir: &Path) -> std::io::Result<CharacterizationCache> {
        let disk = DiskTier::open(dir, CACHE_FILE)?;
        Ok(CharacterizationCache::from_backend(DiskBackend::Csv(disk)))
    }

    fn from_backend(mut disk: DiskBackend) -> CharacterizationCache {
        let memo = MemoCache::new();
        let loaded = match &mut disk {
            DiskBackend::Csv(tier) => tier.take_loaded(),
            DiskBackend::Store(tier) => tier.take_loaded(),
        };
        for (key, value) in loaded {
            memo.insert(key, value);
        }
        CharacterizationCache {
            memo,
            disk: Some(disk),
        }
    }

    /// Migrate a legacy CSV cache in `dir` to the binary store, once.
    /// No-op when the store already exists or there is no CSV (that is
    /// what makes `afp cache migrate` idempotent).
    pub fn migrate_csv_cache(dir: &Path) -> std::io::Result<CsvMigration> {
        afp_store::migrate_csv::<CachedCharacterization>(dir, STORE_FILE, CACHE_FILE)
    }

    /// Entries whose disk append failed since this cache was opened (the
    /// run kept the values in memory; persistence was lost). Always zero
    /// for a memory-only cache.
    pub fn write_errors(&self) -> u64 {
        match &self.disk {
            Some(DiskBackend::Csv(tier)) => tier.write_errors(),
            Some(DiskBackend::Store(tier)) => tier.write_errors(),
            None => 0,
        }
    }

    /// The most recent disk-append failure message, if any. The disk
    /// tiers only warn on stderr for the *first* failure; this carries
    /// the last one into reports so an operator can see why the warm
    /// tier is degraded. Always `None` for a memory-only cache.
    pub fn last_write_error(&self) -> Option<String> {
        match &self.disk {
            Some(DiskBackend::Csv(tier)) => tier.last_write_error(),
            Some(DiskBackend::Store(tier)) => tier.last_write_error(),
            None => None,
        }
    }

    /// The content key of one characterization: circuit structure (not
    /// name) plus every configuration field that affects the reports.
    pub fn key(
        circuit: &ArithCircuit,
        asic: &afp_asic::AsicConfig,
        fpga: &afp_fpga::FpgaConfig,
        error: &afp_error::ErrorConfig,
    ) -> Key128 {
        let mut h = StableHasher::new();
        h.write_str("characterization");
        h.write_str(circuit.kind().mnemonic());
        h.write_usize(circuit.width());
        h.write_u64(circuit.netlist().structural_hash());
        asic.fingerprint(&mut h);
        fpga.fingerprint(&mut h);
        error.fingerprint(&mut h);
        h.finish()
    }

    /// Look up `key`, recording hit/miss in `counters`.
    pub fn get(&self, key: Key128, counters: &Counters) -> Option<CachedCharacterization> {
        self.memo.get(key, counters)
    }

    /// Non-counting warm check: whether `key` is already in the memory
    /// tier. Used by the serve layer to label responses warm/cold
    /// without distorting hit/miss statistics.
    pub fn contains(&self, key: Key128) -> bool {
        self.memo.peek(key).is_some()
    }

    /// Store a freshly computed entry in both tiers.
    pub fn insert(&self, key: Key128, value: CachedCharacterization) {
        self.memo.insert(key, value);
        match &self.disk {
            Some(DiskBackend::Csv(tier)) => tier.append(key, &value),
            Some(DiskBackend::Store(tier)) => tier.append(key, &value),
            None => {}
        }
    }

    /// Number of entries in the memory tier.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::adders;

    fn sample() -> CachedCharacterization {
        let c = adders::loa(8, 3);
        let asic = afp_asic::synthesize_asic(c.netlist(), &afp_asic::AsicConfig::default());
        let fpga = afp_fpga::synthesize_fpga(c.netlist(), &afp_fpga::FpgaConfig::default());
        let error = afp_error::analyze(&c, &afp_error::ErrorConfig::default());
        CachedCharacterization { asic, error, fpga }
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let v = sample();
        let fields = v.to_fields();
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let back = CachedCharacterization::from_fields(&refs).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn bin_round_trip_is_lossless() {
        let v = sample();
        let mut bytes = Vec::new();
        v.encode(&mut bytes);
        let mut r = ByteReader::new(&bytes);
        let back = CachedCharacterization::decode(&mut r).unwrap();
        assert!(r.is_empty(), "decode must consume the whole payload");
        assert_eq!(v, back);
        // The rational metric packing should beat the 22-column CSV row.
        let csv_len: usize = v.to_fields().iter().map(|f| f.len() + 1).sum();
        assert!(
            bytes.len() * 2 < csv_len,
            "binary ({}) should be <half the CSV row ({csv_len})",
            bytes.len()
        );
    }

    #[test]
    fn bin_round_trip_survives_awkward_floats() {
        let mut v = sample();
        v.error.bias = -0.0;
        v.error.mre = f64::NAN;
        v.error.mse = 1.0 / 3.0 + 1e-18; // not an exact multiple of 1/samples
        v.fpga.delay_ns = f64::INFINITY;
        let mut bytes = Vec::new();
        v.encode(&mut bytes);
        let back = CachedCharacterization::decode(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(v.error.bias.to_bits(), back.error.bias.to_bits());
        assert!(back.error.mre.is_nan());
        assert_eq!(v.error.mse.to_bits(), back.error.mse.to_bits());
        assert_eq!(v.fpga.delay_ns, back.fpga.delay_ns);
    }

    #[test]
    fn csv_cache_migrates_to_store_on_open() {
        let dir = std::env::temp_dir().join(format!("afp-core-migrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let v = sample();
        let key = Key128 {
            hi: 0x1234_5678,
            lo: 0x9abc_def0,
        };
        {
            let cache = CharacterizationCache::with_csv_disk(&dir);
            cache.insert(key, v);
        }
        assert!(dir.join(CACHE_FILE).exists());
        // Default open migrates the CSV once and serves the entry.
        let migrated = CharacterizationCache::with_disk(&dir);
        let counters = Counters::default();
        assert_eq!(migrated.get(key, &counters), Some(v));
        assert!(dir.join(STORE_FILE).exists());
        assert!(
            !dir.join(CACHE_FILE).exists(),
            "CSV renamed after migration"
        );
        // And an explicit migrate afterwards is a no-op.
        let again = CharacterizationCache::migrate_csv_cache(&dir).unwrap();
        assert!(!again.performed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_ignores_name_but_not_structure_or_config() {
        let a = adders::loa(8, 3);
        let mut renamed = a.clone();
        renamed.set_name("something-else");
        let asic = afp_asic::AsicConfig::default();
        let fpga = afp_fpga::FpgaConfig::default();
        let err = afp_error::ErrorConfig::default();
        let k = |c: &ArithCircuit, e: &afp_error::ErrorConfig| {
            CharacterizationCache::key(c, &asic, &fpga, e)
        };
        assert_eq!(k(&a, &err), k(&renamed, &err));
        assert_ne!(k(&a, &err), k(&adders::loa(8, 4), &err));
        let other_err = afp_error::ErrorConfig {
            seed: err.seed ^ 1,
            ..err.clone()
        };
        assert_ne!(k(&a, &err), k(&a, &other_err));
    }

    #[test]
    fn key_pins_every_fpga_field_that_affects_reports() {
        // The power model simulates with `activity_passes` random passes
        // from `seed`, and `prune_dominated` changes which cuts the mapper
        // keeps — all three must be part of the content key, or stale
        // entries would be served after a config change.
        let a = adders::loa(8, 3);
        let asic = afp_asic::AsicConfig::default();
        let err = afp_error::ErrorConfig::default();
        let base = afp_fpga::FpgaConfig::default();
        let k = |f: &afp_fpga::FpgaConfig| CharacterizationCache::key(&a, &asic, f, &err);
        let mut passes = base.clone();
        passes.activity_passes += 1;
        assert_ne!(k(&base), k(&passes), "activity_passes must change the key");
        let mut seed = base.clone();
        seed.seed ^= 1;
        assert_ne!(k(&base), k(&seed), "seed must change the key");
        let mut pruned = base.clone();
        pruned.prune_dominated = !base.prune_dominated;
        assert_ne!(k(&base), k(&pruned), "prune_dominated must change the key");
        assert_eq!(k(&base), k(&base.clone()), "key is deterministic");
    }

    #[test]
    fn try_with_disk_surfaces_unusable_directories() {
        let dir = std::env::temp_dir().join(format!("afp-core-trydisk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A plain file where the directory should be: create_dir_all fails.
        let blocker = dir.join("not-a-dir");
        std::fs::write(&blocker, b"x").unwrap();
        assert!(CharacterizationCache::try_with_disk(&blocker).is_err());
        // with_disk on the same path degrades to memory-only, silently.
        let fallback = CharacterizationCache::with_disk(&blocker);
        assert!(fallback.is_empty());
        // A good directory works.
        assert!(CharacterizationCache::try_with_disk(&dir.join("ok")).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("afp-core-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let v = sample();
        let key = CharacterizationCache::key(
            &adders::loa(8, 3),
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
        );
        {
            let cache = CharacterizationCache::with_disk(&dir);
            cache.insert(key, v);
        }
        let reopened = CharacterizationCache::with_disk(&dir);
        let counters = Counters::default();
        assert_eq!(reopened.get(key, &counters), Some(v));
        assert_eq!(counters.snapshot().cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Request-scoped characterization — the service-side entry point.
//!
//! `afp serve` answers "characterize this circuit on target X" without
//! running the full flow (no subset selection, no model training, no
//! estimation). This module provides that entry: [`RequestConfig`] pins
//! the exact configuration the flow itself would use for ground-truth
//! characterization, [`characterize_request`] runs one circuit through
//! the shared cache on a [`Runtime`], and [`request_report`] renders the
//! result as a schema-stable [`RunReport`].
//!
//! Determinism contract: the report is a pure function of the
//! [`CircuitRecord`] (the record's library `id` is deliberately
//! excluded), and the record itself is a pure function of `(circuit,
//! config)` — so a served response is byte-identical to what the
//! equivalent `afp flow` characterization of the same circuit would
//! report, no matter whether it came from a cold computation, the warm
//! cache, or a coalesced in-flight join.

use afp_circuits::ArithCircuit;
use afp_obs::{RunReport, Section, Value};
use afp_runtime::{Key128, Runtime};

use crate::cache::CharacterizationCache;
use crate::flow::FlowConfig;
use crate::record::{characterize_with_scratch, CharacterizeScratch, CircuitRecord};

/// The characterization configuration of one request — exactly the
/// pieces of a [`FlowConfig`] that affect a single record.
#[derive(Clone, Debug)]
pub struct RequestConfig {
    /// ASIC synthesis model configuration.
    pub asic: afp_asic::AsicConfig,
    /// FPGA synthesis model configuration (carries the target profile).
    pub fpga: afp_fpga::FpgaConfig,
    /// Behavioural error-analysis configuration.
    pub error: afp_error::ErrorConfig,
}

impl Default for RequestConfig {
    fn default() -> RequestConfig {
        RequestConfig::for_target_config(FlowConfig::default().fpga)
    }
}

impl RequestConfig {
    /// The configuration `afp flow` would use against `fpga` — ASIC and
    /// error settings at flow defaults, so served records match flow
    /// records bit for bit.
    pub fn for_target_config(fpga: afp_fpga::FpgaConfig) -> RequestConfig {
        let flow = FlowConfig::default();
        RequestConfig {
            asic: flow.asic,
            fpga,
            error: flow.error,
        }
    }

    /// The content key of this request for `circuit` — identical to the
    /// cache key the flow would use, so serve, flow, and the disk tier
    /// all agree on what "the same request" means.
    pub fn key(&self, circuit: &ArithCircuit) -> Key128 {
        CharacterizationCache::key(circuit, &self.asic, &self.fpga, &self.error)
    }
}

/// Characterize one circuit under `config`, through `cache` when given.
///
/// This is the flow's own characterization primitive scoped to a single
/// record: a cache hit reuses all three reports, a miss computes and
/// inserts them. The record's `id` is fixed to 0 — request-scoped
/// records have no library position.
pub fn characterize_request(
    circuit: &ArithCircuit,
    config: &RequestConfig,
    rt: &Runtime,
    cache: Option<&CharacterizationCache>,
    scratch: &mut CharacterizeScratch,
) -> CircuitRecord {
    characterize_with_scratch(
        0,
        circuit,
        &config.asic,
        &config.fpga,
        &config.error,
        rt,
        cache,
        scratch,
    )
}

/// Render one record as the per-request [`RunReport`].
///
/// Sections, in order: `request` (circuit identity + target), `asic`,
/// `error`, `fpga`. Field order is fixed by the builder, and the
/// library `id` is excluded, so the JSON is byte-stable for a given
/// `(circuit, config)` regardless of how the record was obtained.
pub fn request_report(record: &CircuitRecord) -> RunReport {
    let mut report = RunReport::new();
    report.push_section(
        Section::new("request")
            .field("name", Value::Str(record.name.clone()))
            .field("kind", Value::Str(record.kind.mnemonic().to_string()))
            .field("width", Value::UInt(record.width as u64))
            .field("target", Value::Str(record.target.clone()))
            .field("gates", Value::UInt(record.stats.gates as u64))
            .field("depth", Value::UInt(record.stats.depth as u64)),
    );
    report.push_section(
        Section::new("asic")
            .field("area_um2", Value::Num(record.asic.area_um2))
            .field("delay_ns", Value::Num(record.asic.delay_ns))
            .field("power_mw", Value::Num(record.asic.power_mw))
            .field("cells", Value::UInt(record.asic.cells as u64)),
    );
    report.push_section(
        Section::new("error")
            .field("samples", Value::UInt(record.error.samples))
            .field("exhaustive", Value::Bool(record.error.exhaustive))
            .field("med", Value::Num(record.error.med))
            .field("mae", Value::Num(record.error.mae))
            .field("wce", Value::UInt(record.error.wce))
            .field("error_prob", Value::Num(record.error.error_prob)),
    );
    report.push_section(
        Section::new("fpga")
            .field("luts", Value::UInt(record.fpga.luts as u64))
            .field("slices", Value::UInt(record.fpga.slices as u64))
            .field("depth_levels", Value::UInt(record.fpga.depth_levels as u64))
            .field("delay_ns", Value::Num(record.fpga.delay_ns))
            .field("power_mw", Value::Num(record.fpga.power_mw)),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::characterize;
    use afp_circuits::from_spec_ref;

    #[test]
    fn request_matches_flow_characterization_bit_for_bit() {
        let circuit = from_spec_ref("mul8:trunc:3").unwrap();
        let config = RequestConfig::default();
        let rt = Runtime::serial();
        let mut scratch = CharacterizeScratch::default();
        let via_request = characterize_request(&circuit, &config, &rt, None, &mut scratch);
        let via_flow_path = characterize(0, &circuit, &config.asic, &config.fpga, &config.error);
        assert_eq!(
            request_report(&via_request).to_json(),
            request_report(&via_flow_path).to_json()
        );
    }

    #[test]
    fn report_is_independent_of_cache_state_and_id() {
        let circuit = from_spec_ref("add8:loa:2").unwrap();
        let config = RequestConfig::default();
        let rt = Runtime::serial();
        let cache = CharacterizationCache::in_memory();
        let mut scratch = CharacterizeScratch::default();
        let cold = characterize_request(&circuit, &config, &rt, Some(&cache), &mut scratch);
        let warm = characterize_request(&circuit, &config, &rt, Some(&cache), &mut scratch);
        // Same request through an id-shifted flow-style call.
        let other_id = characterize(17, &circuit, &config.asic, &config.fpga, &config.error);
        let json = request_report(&cold).to_json();
        assert_eq!(json, request_report(&warm).to_json());
        assert_eq!(json, request_report(&other_id).to_json());
        assert_eq!(rt.snapshot().cache_hits, 1);
    }

    #[test]
    fn report_schema_is_stable() {
        let circuit = from_spec_ref("add8:rca").unwrap();
        let config = RequestConfig::default();
        let record = characterize(0, &circuit, &config.asic, &config.fpga, &config.error);
        let json = request_report(&record).to_json();
        assert!(json.starts_with(
            "{\"version\":1,\"total_wall_s\":0.0,\"stages\":[],\
             \"request\":{\"name\":\"add8u_rca\",\"kind\":\"add\",\"width\":8,"
        ));
        for section in ["\"asic\":{", "\"error\":{", "\"fpga\":{"] {
            assert!(json.contains(section), "{json}");
        }
    }

    #[test]
    fn request_key_matches_the_cache_key() {
        let circuit = from_spec_ref("mul8:wallace").unwrap();
        let config = RequestConfig::default();
        assert_eq!(
            config.key(&circuit),
            CharacterizationCache::key(&circuit, &config.asic, &config.fpga, &config.error)
        );
    }
}

//! Dataset assembly: parallel circuit characterization, 10% subset
//! sampling and the 80/20 train/validation split.

use afp_circuits::ArithCircuit;
use afp_obs::Recorder;
use afp_runtime::Runtime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cache::CharacterizationCache;
use crate::record::{characterize_with_scratch, CharacterizeScratch, CircuitRecord};

/// Characterize every circuit in `library` in parallel (one worker per
/// available core, work-stealing).
///
/// Record ids equal library indices.
pub fn characterize_library(
    library: &[ArithCircuit],
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
) -> Vec<CircuitRecord> {
    characterize_library_with(
        library,
        asic_config,
        fpga_config,
        error_config,
        &Runtime::new(0),
        None,
    )
}

/// [`characterize_library`] on an explicit [`Runtime`], optionally through
/// the characterization cache. Items are distributed dynamically (circuit
/// cost varies wildly across a library), but records always come back in
/// library order, independent of the thread count.
///
/// Each worker thread owns one [`afp_fpga::Mapper`] and sweeps its share
/// of the library through it, so repeated FPGA synthesis reuses warm cut
/// arenas, scratch vectors and simulator buffers instead of reallocating
/// per circuit. Reports are bit-identical for any thread count.
pub fn characterize_library_with(
    library: &[ArithCircuit],
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
    rt: &Runtime,
    cache: Option<&CharacterizationCache>,
) -> Vec<CircuitRecord> {
    characterize_library_traced(
        library,
        asic_config,
        fpga_config,
        error_config,
        rt,
        cache,
        &Recorder::disabled(),
    )
}

/// [`characterize_library_with`] with a `flow/characterize` tracing span
/// (items = circuits characterized). Tracing wraps the whole parallel
/// stage, so the span measures the stage's wall-clock latency; it never
/// touches the per-circuit hot path.
///
/// Structurally identical circuits (same kind, width and
/// [`afp_netlist::Netlist::structural_hash`] — approximate variants of one
/// generator are frequently gate-identical after simplification) are
/// simulated and synthesized **once**: each duplicate's record is copied
/// from its representative with the duplicate's own id and name. Every
/// report is a pure function of the netlist structure and the configs, so
/// the fan-out is bit-identical to characterizing each copy separately;
/// the skipped work is surfaced as the `structural_dedup_hits` counter.
#[allow(clippy::too_many_arguments)]
pub fn characterize_library_traced(
    library: &[ArithCircuit],
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
    rt: &Runtime,
    cache: Option<&CharacterizationCache>,
    recorder: &Recorder,
) -> Vec<CircuitRecord> {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;

    let mut span = recorder.span("flow/characterize");
    span.add_items(library.len() as u64);

    // Group structurally identical circuits; `reps` holds the library
    // index of each group's first member, `rep_of[i]` that group's index.
    let mut rep_of: Vec<usize> = Vec::with_capacity(library.len());
    let mut reps: Vec<usize> = Vec::new();
    let mut seen: HashMap<(afp_circuits::ArithKind, usize, u64), usize> =
        HashMap::with_capacity(library.len());
    for (i, c) in library.iter().enumerate() {
        match seen.entry((c.kind(), c.width(), c.netlist().structural_hash())) {
            Entry::Occupied(e) => rep_of.push(*e.get()),
            Entry::Vacant(v) => {
                v.insert(reps.len());
                rep_of.push(reps.len());
                reps.push(i);
            }
        }
    }
    let dedup_hits = (library.len() - reps.len()) as u64;
    if dedup_hits > 0 {
        afp_runtime::Counters::add(&rt.counters().structural_dedup_hits, dedup_hits);
    }

    let rep_records: Vec<CircuitRecord> = rt.par_map_init(
        &reps,
        CharacterizeScratch::default,
        |scratch, _, &lib_ix| {
            characterize_with_scratch(
                lib_ix,
                &library[lib_ix],
                asic_config,
                fpga_config,
                error_config,
                rt,
                cache,
                scratch,
            )
        },
    );

    library
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut record = rep_records[rep_of[i]].clone();
            record.id = i;
            record.name = c.name().to_string();
            record
        })
        .collect()
}

/// [`characterize_library_traced`] over a *shard iterator* instead of a
/// resident slice: the streaming path behind `afp flow --library` and
/// `--paper-full`.
///
/// Shards are pulled one at a time (e.g. from a sealed `.afps` corpus via
/// [`afp_circuits::LibrarySource::shards`]), each shard's
/// not-yet-seen structures are characterized through the work-stealing
/// runtime, and the shard's netlists are dropped before the next shard is
/// pulled — peak circuit residency is one shard, tracked by the
/// `peak_resident_circuits` gauge, with `shards_streamed` counting the
/// pulls. Only the per-circuit [`CircuitRecord`]s (and the cross-shard
/// structural-dedup index) stay resident.
///
/// Records come back in library order with ids equal to library indices,
/// bit-identical to the in-RAM path on the same circuit sequence, for any
/// thread count and any shard size: structural dedup spans shard
/// boundaries (a structure seen in shard 0 is never re-characterized in
/// shard 7), and every record is a pure function of structure + configs.
///
/// The first shard error (torn corpus, undecodable record) aborts and is
/// returned; a damaged corpus never silently characterizes as a smaller
/// library.
#[allow(clippy::too_many_arguments)]
pub fn characterize_shards_traced(
    shards: impl Iterator<Item = std::io::Result<Vec<ArithCircuit>>>,
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
    rt: &Runtime,
    cache: Option<&CharacterizationCache>,
    recorder: &Recorder,
) -> std::io::Result<Vec<CircuitRecord>> {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;

    let mut span = recorder.span("flow/characterize");

    let mut seen: HashMap<(afp_circuits::ArithKind, usize, u64), usize> = HashMap::new();
    let mut rep_records: Vec<CircuitRecord> = Vec::new();
    // Per circuit, in library order: its name and its representative's
    // index into `rep_records` — everything the fan-out needs after the
    // shard's netlists are gone.
    let mut fanout: Vec<(String, usize)> = Vec::new();

    for shard in shards {
        let shard = shard?;
        if shard.is_empty() {
            continue;
        }
        span.add_items(shard.len() as u64);
        afp_runtime::Counters::add(&rt.counters().shards_streamed, 1);
        afp_runtime::Counters::max(&rt.counters().peak_resident_circuits, shard.len() as u64);

        let mut fresh: Vec<(usize, ArithCircuit)> = Vec::new();
        let mut dedup_hits = 0u64;
        for c in shard {
            match seen.entry((c.kind(), c.width(), c.netlist().structural_hash())) {
                Entry::Occupied(e) => {
                    dedup_hits += 1;
                    fanout.push((c.name().to_string(), *e.get()));
                }
                Entry::Vacant(v) => {
                    v.insert(rep_records.len() + fresh.len());
                    fanout.push((c.name().to_string(), rep_records.len() + fresh.len()));
                    // The representative keeps its global library index,
                    // exactly as in the in-RAM path.
                    fresh.push((fanout.len() - 1, c));
                }
            }
        }
        if dedup_hits > 0 {
            afp_runtime::Counters::add(&rt.counters().structural_dedup_hits, dedup_hits);
        }

        let window = fresh.len().max(1);
        rep_records.extend(rt.par_map_stream_init(
            fresh,
            window,
            CharacterizeScratch::default,
            |scratch, _, item: &(usize, ArithCircuit)| {
                characterize_with_scratch(
                    item.0,
                    &item.1,
                    asic_config,
                    fpga_config,
                    error_config,
                    rt,
                    cache,
                    scratch,
                )
            },
        ));
        // `fresh` was consumed by the streaming map: this shard's
        // netlists are gone before the next shard is pulled.
    }

    Ok(fanout
        .into_iter()
        .enumerate()
        .map(|(i, (name, rep))| {
            let mut record = rep_records[rep].clone();
            record.id = i;
            record.name = name;
            record
        })
        .collect())
}

/// Deterministically sample `fraction` of `n` indices (at least
/// `min_count`, at most `n`), the paper's "10% subset".
pub fn sample_subset(n: usize, fraction: f64, min_count: usize, seed: u64) -> Vec<usize> {
    let want = ((n as f64 * fraction).round() as usize)
        .max(min_count)
        .min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5AB5E7);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx.truncate(want);
    idx.sort_unstable();
    idx
}

/// Split `subset` into (train, validation) with the given train fraction,
/// deterministically shuffled.
///
/// Degenerate inputs are explicit rather than accidental: with fewer
/// than two elements there is nothing to divide, so **both** halves get
/// the whole subset. A one-element subset therefore trains and validates
/// on its single sample (fidelity is computed over at least one pair
/// instead of zero), and an empty subset yields two empty halves. With
/// two or more elements the validation half is never empty.
pub fn train_validate_split(
    subset: &[usize],
    train_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    if subset.len() < 2 {
        return (subset.to_vec(), subset.to_vec());
    }
    let mut idx = subset.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7EA1);
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let cut = ((idx.len() as f64 * train_fraction).round() as usize)
        .clamp(1, idx.len().saturating_sub(1).max(1));
    let (train, val) = idx.split_at(cut.min(idx.len()));
    (train.to_vec(), val.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::characterize;
    use afp_circuits::{build_library, ArithKind, LibrarySpec};

    #[test]
    fn characterization_is_parallel_safe_and_ordered() {
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 20));
        let recs = characterize_library(
            &lib,
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
        );
        assert_eq!(recs.len(), lib.len());
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.id, i);
            assert_eq!(r.name, lib[i].name());
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 12));
        let asic = afp_asic::AsicConfig::default();
        let fpga = afp_fpga::FpgaConfig::default();
        let err = afp_error::ErrorConfig::default();
        let par = characterize_library(&lib, &asic, &fpga, &err);
        for (i, c) in lib.iter().enumerate() {
            let s = characterize(i, c, &asic, &fpga, &err);
            assert_eq!(s.fpga, par[i].fpga);
            assert_eq!(s.asic, par[i].asic);
            assert_eq!(s.error, par[i].error);
        }
    }

    #[test]
    fn structural_duplicates_are_characterized_once_and_fanned_out() {
        let base = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 6));
        // Interleave a renamed structural copy behind every circuit.
        let mut lib: Vec<ArithCircuit> = Vec::new();
        for c in &base {
            lib.push(c.clone());
            let mut copy = c.clone();
            copy.set_name(format!("{}_copy", c.name()));
            lib.push(copy);
        }
        let asic = afp_asic::AsicConfig::default();
        let fpga = afp_fpga::FpgaConfig::default();
        let err = afp_error::ErrorConfig::default();
        let rt = Runtime::serial();
        let recs = characterize_library_with(&lib, &asic, &fpga, &err, &rt, None);
        assert_eq!(recs.len(), lib.len());
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.id, i, "ids follow library order");
            assert_eq!(r.name, lib[i].name(), "names stay per-duplicate");
        }
        for pair in recs.chunks(2) {
            assert_eq!(pair[0].asic, pair[1].asic);
            assert_eq!(pair[0].error, pair[1].error);
            assert_eq!(pair[0].fpga, pair[1].fpga);
            assert_eq!(pair[0].stats, pair[1].stats);
        }
        let snap = rt.snapshot();
        assert_eq!(snap.structural_dedup_hits, base.len() as u64);
        // Only the representatives were actually analyzed.
        assert_eq!(snap.error_analyses, base.len() as u64);
        assert_eq!(snap.asic_synths, base.len() as u64);
        assert_eq!(snap.fpga_synths, base.len() as u64);
        // The duplicated-library records match the plain library's.
        let plain = characterize_library_with(&base, &asic, &fpga, &err, &Runtime::serial(), None);
        for (i, p) in plain.iter().enumerate() {
            assert_eq!(p.fpga, recs[2 * i].fpga);
            assert_eq!(p.error, recs[2 * i].error);
        }
    }

    #[test]
    fn shard_streaming_matches_in_ram_characterization() {
        let base = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 9));
        // Append renamed structural copies so dedup must span shards.
        let mut lib: Vec<ArithCircuit> = base.clone();
        for c in &base {
            let mut copy = c.clone();
            copy.set_name(format!("{}_again", c.name()));
            lib.push(copy);
        }
        let asic = afp_asic::AsicConfig::default();
        let fpga = afp_fpga::FpgaConfig::default();
        let err = afp_error::ErrorConfig::default();
        let expect = characterize_library_with(&lib, &asic, &fpga, &err, &Runtime::serial(), None);
        for threads in [1, 4] {
            for shard in [1, 4, lib.len(), 500] {
                let rt = Runtime::new(threads);
                let shards = lib.chunks(shard).map(|c| Ok(c.to_vec()));
                let got = characterize_shards_traced(
                    shards,
                    &asic,
                    &fpga,
                    &err,
                    &rt,
                    None,
                    &Recorder::disabled(),
                )
                .unwrap();
                assert_eq!(
                    format!("{got:?}"),
                    format!("{expect:?}"),
                    "threads={threads} shard={shard}"
                );
                let snap = rt.snapshot();
                assert_eq!(snap.shards_streamed, lib.len().div_ceil(shard) as u64);
                assert_eq!(snap.peak_resident_circuits, shard.min(lib.len()) as u64);
                assert_eq!(snap.structural_dedup_hits, base.len() as u64);
                assert_eq!(snap.fpga_synths, base.len() as u64);
            }
        }
    }

    #[test]
    fn shard_errors_abort_characterization() {
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 4, 4));
        let shards = vec![
            Ok(lib.clone()),
            Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "torn")),
            Ok(lib),
        ];
        let err = characterize_shards_traced(
            shards.into_iter(),
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
            &Runtime::serial(),
            None,
            &Recorder::disabled(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn subset_is_deterministic_and_right_sized() {
        let a = sample_subset(1000, 0.1, 40, 7);
        let b = sample_subset(1000, 0.1, 40, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let c = sample_subset(100, 0.1, 40, 7);
        assert_eq!(c.len(), 40, "min_count should apply");
        let d = sample_subset(10, 0.1, 40, 7);
        assert_eq!(d.len(), 10, "cannot exceed n");
        // No duplicates.
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len());
    }

    #[test]
    fn different_seeds_sample_differently() {
        assert_ne!(
            sample_subset(500, 0.1, 10, 1),
            sample_subset(500, 0.1, 10, 2)
        );
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let subset: Vec<usize> = (0..50).collect();
        let (train, val) = train_validate_split(&subset, 0.8, 3);
        assert_eq!(train.len(), 40);
        assert_eq!(val.len(), 10);
        let mut all: Vec<usize> = train.iter().chain(&val).copied().collect();
        all.sort_unstable();
        assert_eq!(all, subset);
    }

    #[test]
    fn split_never_leaves_empty_validation_for_reasonable_sets() {
        let subset: Vec<usize> = (0..10).collect();
        let (train, val) = train_validate_split(&subset, 0.8, 3);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
    }

    #[test]
    fn split_validation_is_never_empty_for_any_size_ge_two() {
        for n in 2..20 {
            let subset: Vec<usize> = (0..n).collect();
            for frac in [0.0, 0.5, 0.8, 0.99, 1.0] {
                let (train, val) = train_validate_split(&subset, frac, 5);
                assert!(!val.is_empty(), "n={n} frac={frac}: empty validation");
                assert!(!train.is_empty(), "n={n} frac={frac}: empty train");
                assert_eq!(train.len() + val.len(), n);
            }
        }
    }

    #[test]
    fn degenerate_splits_are_explicit() {
        // One element: both halves see the single sample, so downstream
        // fidelity is computed over one pair instead of zero.
        let (train, val) = train_validate_split(&[42], 0.8, 3);
        assert_eq!(train, vec![42]);
        assert_eq!(val, vec![42]);
        // Empty subset: two empty halves, no panic.
        let (train, val) = train_validate_split(&[], 0.8, 3);
        assert!(train.is_empty() && val.is_empty());
    }
}

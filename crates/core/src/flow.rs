//! End-to-end orchestration of the ApproxFPGAs methodology, with the
//! exploration-time accounting behind Fig. 3.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use afp_circuits::{build_library_with, ArithCircuit, LibrarySource, LibrarySpec};
use afp_ml::chaos::ChaosConfig;
use afp_ml::MlModelId;
use afp_obs::Recorder;
use afp_runtime::{CounterSnapshot, Counters, Runtime};

use crate::cache::{CacheBackend, CharacterizationCache};
use crate::dataset::{
    characterize_library_traced, characterize_shards_traced, sample_subset, train_validate_split,
};
use crate::fidelity::{train_zoo_tuned_with, train_zoo_with, TrainedZoo};
use crate::pareto::{coverage, pareto_front, peel_fronts};
use crate::record::{CircuitRecord, FpgaParam};

/// Shard size used when [`FlowConfig::shard_circuits`] is `0`: large
/// enough to keep the work-stealing pool saturated, small enough that a
/// paper-full corpus never has more than ~2% of its circuits resident.
pub const DEFAULT_SHARD_CIRCUITS: usize = 1024;

/// Configuration of one flow run.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// The circuit library to explore.
    pub library: LibrarySpec,
    /// Fraction of the library synthesized as the training/validation
    /// subset (the paper uses 10%).
    pub subset_fraction: f64,
    /// Minimum subset size (small libraries still need enough samples).
    pub min_subset: usize,
    /// Train share of the subset (the paper uses 80%).
    pub train_fraction: f64,
    /// Number of pseudo-pareto fronts to peel (the paper evaluates 1–3).
    pub fronts: usize,
    /// How many top models (by validation fidelity) estimate each
    /// parameter (the paper uses the top-3).
    pub top_models: usize,
    /// Also include the best plain ASIC-regression model (ML1–ML3) in the
    /// union, as Fig. 7 does for comparison.
    pub include_asic_regression: bool,
    /// Which models compete (default: all 18).
    pub models: Vec<MlModelId>,
    /// Run the Fig. 2 hyperparameter-modification loop: train each model
    /// once per grid configuration and keep the best by validation
    /// fidelity (slower; default off — the defaults are already tuned).
    pub tune_models: bool,
    /// Relative tolerance used by the fidelity pair comparison.
    pub fidelity_tolerance: f64,
    /// Worker threads for the parallel stages (0 = one per available
    /// core). Results are bit-identical for any thread count.
    pub threads: usize,
    /// Circuits per shard when streaming a stored corpus through
    /// [`Flow::run_source`] (0 = the 1024-circuit default). Smaller
    /// shards lower peak circuit residency; normalized outcomes are
    /// bit-identical for any shard size.
    pub shard_circuits: usize,
    /// Memoize characterization results keyed by circuit structure and
    /// configuration (default on; repeated circuits and repeated runs of
    /// one [`Flow`] skip synthesis entirely).
    pub use_cache: bool,
    /// Persist the characterization cache under `cache_dir` so hits
    /// survive across processes. `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Which disk format backs a persistent cache (ignored without
    /// `cache_dir`). [`CacheBackend::Store`] is the compact binary
    /// default; [`CacheBackend::Csv`] keeps the legacy greppable file.
    /// Both are lossless, so outcomes are identical either way.
    pub cache_backend: CacheBackend,
    /// Master seed for sampling/splitting.
    pub seed: u64,
    /// Fault injection for the numeric-robustness harness: corrupt model
    /// *estimates* (never training or ground truth) with NaN/inf/huge
    /// values. `None` (the default) disables injection entirely.
    pub chaos: Option<ChaosSpec>,
    /// ASIC synthesis model configuration.
    pub asic: afp_asic::AsicConfig,
    /// FPGA synthesis model configuration.
    pub fpga: afp_fpga::FpgaConfig,
    /// Error analysis configuration.
    pub error: afp_error::ErrorConfig,
}

/// Fault-injection specification for a flow run (see
/// [`afp_ml::chaos::ChaosRegressor`]). Injection is a pure function of
/// the feature row and seed, so chaos runs stay bit-identical across
/// thread counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosSpec {
    /// Rate, seed and corruption kind.
    pub config: ChaosConfig,
    /// Restrict injection to one `(model, parameter)` pair; `None`
    /// corrupts every trained model.
    pub only: Option<(MlModelId, FpgaParam)>,
}

impl ChaosSpec {
    /// Mixed-kind injection of every model at `rate` with `seed`.
    pub fn mixed(rate: f64, seed: u64) -> ChaosSpec {
        ChaosSpec {
            config: ChaosConfig::new(rate, seed),
            only: None,
        }
    }
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            library: LibrarySpec::new(afp_circuits::ArithKind::Adder, 8, 500),
            subset_fraction: 0.10,
            min_subset: 40,
            train_fraction: 0.80,
            fronts: 3,
            top_models: 3,
            include_asic_regression: false,
            models: MlModelId::ALL.to_vec(),
            tune_models: false,
            fidelity_tolerance: 0.01,
            threads: 0,
            shard_circuits: DEFAULT_SHARD_CIRCUITS,
            use_cache: true,
            cache_dir: None,
            cache_backend: CacheBackend::default(),
            seed: 0xDAC_2020,
            chaos: None,
            asic: afp_asic::AsicConfig::default(),
            fpga: afp_fpga::FpgaConfig::default(),
            error: afp_error::ErrorConfig::default(),
        }
    }
}

/// Exploration-time bookkeeping (modeled synthesis seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeAccounting {
    /// Time to synthesize the whole library exhaustively.
    pub exhaustive_s: f64,
    /// Time the flow spent synthesizing the training/validation subset.
    pub subset_s: f64,
    /// Time the flow spent re-synthesizing pseudo-pareto candidates.
    pub candidates_s: f64,
    /// Modeled model-training + estimation time (seconds; small).
    pub ml_s: f64,
    /// Circuits synthesized exhaustively (= library size).
    pub exhaustive_count: usize,
    /// Circuits the flow synthesized (subset + candidates).
    pub flow_count: usize,
}

impl TimeAccounting {
    /// Total flow exploration time in seconds.
    pub fn flow_s(&self) -> f64 {
        self.subset_s + self.candidates_s + self.ml_s
    }

    /// Exhaustive / flow speed-up factor.
    ///
    /// `None` when the flow time is zero (e.g. a fully warm-cache run of
    /// an empty model set): the ratio is undefined, and reports render it
    /// as `--` instead of `inf`/`NaN`.
    pub fn speedup(&self) -> Option<f64> {
        let flow = self.flow_s();
        if flow > 0.0 && self.exhaustive_s.is_finite() {
            Some(self.exhaustive_s / flow)
        } else {
            None
        }
    }

    /// Synthesized-circuit reduction factor (the paper's ~9.9x).
    ///
    /// `None` when the flow synthesized nothing — the ratio is undefined
    /// rather than infinite.
    pub fn synth_reduction(&self) -> Option<f64> {
        if self.flow_count > 0 {
            Some(self.exhaustive_count as f64 / self.flow_count as f64)
        } else {
            None
        }
    }
}

/// Result of a flow run.
pub struct FlowOutcome {
    /// Every library circuit, fully characterized (ground truth included).
    pub records: Vec<CircuitRecord>,
    /// Indices of the synthesized subset.
    pub subset: Vec<usize>,
    /// Subset split used for training.
    pub train: Vec<usize>,
    /// Subset split used for validation.
    pub validate: Vec<usize>,
    /// The trained model zoo with validation fidelities.
    pub zoo: TrainedZoo,
    /// Models selected per parameter (top-k by fidelity, after estimate
    /// quarantine: a model whose estimates were all non-finite is dropped
    /// and the next-best fidelity model promoted in its place).
    pub selected_models: BTreeMap<FpgaParam, Vec<MlModelId>>,
    /// Models dropped by the quarantine stage per parameter (every
    /// estimate non-finite), in the order they were tried.
    pub dropped_models: BTreeMap<FpgaParam, Vec<MlModelId>>,
    /// Union of pseudo-pareto candidate indices per parameter.
    pub candidates: BTreeMap<FpgaParam, Vec<usize>>,
    /// Every index the flow synthesized (subset ∪ all candidates).
    pub synthesized: BTreeSet<usize>,
    /// Measured pareto front per parameter, computed over synthesized
    /// circuits only (what the flow can see).
    pub final_fronts: BTreeMap<FpgaParam, Vec<usize>>,
    /// Ground-truth pareto front per parameter over the whole library.
    pub true_fronts: BTreeMap<FpgaParam, Vec<usize>>,
    /// Pareto coverage per parameter (the paper reports ~71% on average).
    pub coverage: BTreeMap<FpgaParam, f64>,
    /// Exploration-time accounting.
    pub time: TimeAccounting,
    /// Runtime counters for this run: tasks executed, steals, cache
    /// hits/misses, synthesis counts and bytes simulated. `steals` is the
    /// only non-deterministic field; everything else is thread-invariant.
    pub runtime: CounterSnapshot,
    /// The last cache disk-append failure message, `None` when every
    /// entry persisted cleanly. Pairs with `runtime.cache_write_errors`:
    /// the count says the warm tier is degraded, this says why.
    pub cache_last_error: Option<String>,
}

impl FlowOutcome {
    /// Mean pareto coverage across parameters.
    pub fn mean_coverage(&self) -> f64 {
        if self.coverage.is_empty() {
            return 0.0;
        }
        self.coverage.values().sum::<f64>() / self.coverage.len() as f64
    }

    /// The `(cost, error)` points of the library for `param` (cost =
    /// ground-truth FPGA parameter, error = MED).
    pub fn points(&self, param: FpgaParam) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .map(|r| (r.fpga_param(param), r.error.med))
            .collect()
    }
}

/// The ApproxFPGAs flow runner.
pub struct Flow {
    config: FlowConfig,
    cache: Option<CharacterizationCache>,
}

impl Flow {
    /// Create a flow with `config`. If caching is enabled, the cache lives
    /// as long as the `Flow` — repeated [`run`](Flow::run)s on the same
    /// instance hit it.
    pub fn new(config: FlowConfig) -> Flow {
        let cache = if config.use_cache {
            Some(match (&config.cache_dir, config.cache_backend) {
                (Some(dir), CacheBackend::Store) => CharacterizationCache::with_disk(dir),
                (Some(dir), CacheBackend::Csv) => CharacterizationCache::with_csv_disk(dir),
                (None, _) => CharacterizationCache::in_memory(),
            })
        } else {
            None
        };
        Flow { config, cache }
    }

    /// [`Flow::new`], but a `cache_dir` that cannot be created or opened
    /// is a hard error instead of a silent fall-back to a memory-only
    /// cache. Use this when the caller asked for persistence explicitly
    /// (as the CLI's `--cache-dir` does).
    pub fn try_new(config: FlowConfig) -> std::io::Result<Flow> {
        let cache = if config.use_cache {
            Some(match (&config.cache_dir, config.cache_backend) {
                (Some(dir), CacheBackend::Store) => CharacterizationCache::try_with_disk(dir)?,
                (Some(dir), CacheBackend::Csv) => CharacterizationCache::try_with_csv_disk(dir)?,
                (None, _) => CharacterizationCache::in_memory(),
            })
        } else {
            None
        };
        Ok(Flow { config, cache })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Run the full methodology; see the crate docs for the pipeline.
    pub fn run(&self) -> FlowOutcome {
        self.run_traced(&Recorder::disabled())
    }

    /// [`Flow::run`] with structured tracing: every pipeline stage (library
    /// generation, characterization, subset split, zoo training, model
    /// estimation, front peeling) records a span into `recorder`, plus
    /// per-model `train/<id>` and `estimate/<id>` stages.
    ///
    /// Tracing is strictly observational — the outcome is bit-identical to
    /// the untraced run for any thread count, and a disabled recorder
    /// costs one branch per stage.
    pub fn run_traced(&self, recorder: &Recorder) -> FlowOutcome {
        let source = LibrarySource::Generated(self.config.library.clone());
        self.run_source_traced(&source, recorder)
            .expect("generated libraries cannot fail to stream")
    }

    /// Run the methodology on a library obtained from `source`.
    ///
    /// [`LibrarySource::Generated`] behaves exactly like [`Flow::run`]
    /// with that spec as [`FlowConfig::library`]: the library is built in
    /// process and characterized in RAM. [`LibrarySource::Stored`]
    /// streams the corpus shard-at-a-time ([`FlowConfig::shard_circuits`]
    /// circuits per shard), keeping only one shard plus the surviving
    /// records resident; normalized outcomes are bit-identical to the
    /// in-RAM path for any shard size and thread count. A missing,
    /// foreign-version, or torn corpus is an `Err` — never a silently
    /// smaller run.
    pub fn run_source(&self, source: &LibrarySource) -> std::io::Result<FlowOutcome> {
        self.run_source_traced(source, &Recorder::disabled())
    }

    /// [`Flow::run_source`] with structured tracing (see
    /// [`Flow::run_traced`]).
    pub fn run_source_traced(
        &self,
        source: &LibrarySource,
        recorder: &Recorder,
    ) -> std::io::Result<FlowOutcome> {
        let cfg = &self.config;
        let rt = Runtime::new(cfg.threads);
        match source {
            LibrarySource::Generated(spec) => {
                let library = {
                    let mut span = recorder.span("flow/build_library");
                    let library = build_library_with(spec, &rt);
                    span.add_items(library.len() as u64);
                    library
                };
                let records = characterize_library_traced(
                    &library,
                    &cfg.asic,
                    &cfg.fpga,
                    &cfg.error,
                    &rt,
                    self.cache.as_ref(),
                    recorder,
                );
                drop(library);
                Ok(self.run_on_records_inner(records, &rt, recorder))
            }
            LibrarySource::Stored(_) => {
                let shard = if cfg.shard_circuits == 0 {
                    DEFAULT_SHARD_CIRCUITS
                } else {
                    cfg.shard_circuits
                };
                let shards = source.shards(shard, &rt)?;
                let records = characterize_shards_traced(
                    shards,
                    &cfg.asic,
                    &cfg.fpga,
                    &cfg.error,
                    &rt,
                    self.cache.as_ref(),
                    recorder,
                )?;
                Ok(self.run_on_records_inner(records, &rt, recorder))
            }
        }
    }

    /// Run the methodology on an already-built library slice: in-RAM
    /// characterization plus the downstream stages, with no
    /// `flow/build_library` span. This is the resident comparator for the
    /// streamed path — `run_source(&LibrarySource::Stored(p))` must
    /// produce the same normalized report as
    /// `run_on_library(&read_library(p)?)`.
    pub fn run_on_library(&self, library: &[ArithCircuit]) -> FlowOutcome {
        self.run_on_library_traced(library, &Recorder::disabled())
    }

    /// [`Flow::run_on_library`] with structured tracing (see
    /// [`Flow::run_traced`]).
    pub fn run_on_library_traced(
        &self,
        library: &[ArithCircuit],
        recorder: &Recorder,
    ) -> FlowOutcome {
        let cfg = &self.config;
        let rt = Runtime::new(cfg.threads);
        let records = characterize_library_traced(
            library,
            &cfg.asic,
            &cfg.fpga,
            &cfg.error,
            &rt,
            self.cache.as_ref(),
            recorder,
        );
        self.run_on_records_inner(records, &rt, recorder)
    }

    /// Run the methodology on pre-characterized records (lets callers share
    /// one characterization across multiple flow variants, as the Fig. 7
    /// ablation does).
    pub fn run_on_records(&self, records: Vec<CircuitRecord>) -> FlowOutcome {
        self.run_on_records_traced(records, &Recorder::disabled())
    }

    /// [`Flow::run_on_records`] with structured tracing (see
    /// [`Flow::run_traced`]).
    pub fn run_on_records_traced(
        &self,
        records: Vec<CircuitRecord>,
        recorder: &Recorder,
    ) -> FlowOutcome {
        self.run_on_records_inner(records, &Runtime::new(self.config.threads), recorder)
    }

    fn run_on_records_inner(
        &self,
        records: Vec<CircuitRecord>,
        rt: &Runtime,
        recorder: &Recorder,
    ) -> FlowOutcome {
        let cfg = &self.config;
        let n = records.len();

        // 1. Subset synthesis (the only FPGA synthesis the flow "pays" for
        //    up front).
        let (subset, train, validate) = {
            let mut span = recorder.span("flow/subset_split");
            let subset = sample_subset(n, cfg.subset_fraction, cfg.min_subset, cfg.seed);
            let (train, validate) = train_validate_split(&subset, cfg.train_fraction, cfg.seed);
            span.add_items(subset.len() as u64);
            (subset, train, validate)
        };

        // 2. Train and score the model zoo (optionally with the Fig. 2
        //    hyperparameter-modification loop).
        let zoo = {
            let mut span = recorder.span("flow/train_zoo");
            span.add_items(cfg.models.len() as u64);
            if cfg.tune_models {
                train_zoo_tuned_with(
                    &records,
                    &train,
                    &validate,
                    &cfg.models,
                    cfg.fidelity_tolerance,
                    rt,
                    recorder,
                )
                .0
            } else {
                train_zoo_with(
                    &records,
                    &train,
                    &validate,
                    &cfg.models,
                    cfg.fidelity_tolerance,
                    rt,
                    recorder,
                )
            }
        };

        // Fault injection (numeric-robustness harness): corrupt model
        // estimates only — training and validation fidelities stay clean.
        let zoo = {
            let mut zoo = zoo;
            if let Some(spec) = &cfg.chaos {
                match spec.only {
                    Some((model, param)) => zoo.inject_chaos_for(model, param, &spec.config),
                    None => zoo.inject_chaos(&spec.config),
                }
            }
            zoo
        };

        // 3+4. Model selection, whole-library estimation and pseudo-pareto
        //    peeling, with estimate quarantine. Selection walks each
        //    parameter's fidelity ranking: the top-k models are estimated
        //    in parallel; non-finite estimates are quarantined (excluded
        //    from peeling and counted), and a model whose estimates are
        //    *all* non-finite is dropped with the next-ranked model
        //    promoted in a subsequent wave. With finite estimates (the
        //    default) wave one accepts everything and this reduces to the
        //    plain top-k selection. Promotion order follows the fidelity
        //    ranking, never completion order, so outcomes are
        //    thread-invariant.
        let ranked: BTreeMap<FpgaParam, Vec<MlModelId>> = FpgaParam::ALL
            .iter()
            .map(|&param| (param, zoo.top_models(param, usize::MAX, false)))
            .collect();
        let asic_ranked: BTreeMap<FpgaParam, Vec<MlModelId>> = FpgaParam::ALL
            .iter()
            .map(|&param| (param, zoo.ranked_asic_regressions(param)))
            .collect();
        // Per-parameter cursors into the ranking pools and accepted
        // (model, peeled-candidate-set) lists.
        let mut cursor: BTreeMap<FpgaParam, usize> = Default::default();
        let mut asic_cursor: BTreeMap<FpgaParam, usize> = Default::default();
        let mut accepted: BTreeMap<FpgaParam, Vec<(MlModelId, BTreeSet<usize>)>> =
            Default::default();
        let mut asic_accepted: BTreeMap<FpgaParam, Option<(MlModelId, BTreeSet<usize>)>> =
            Default::default();
        let mut dropped_models: BTreeMap<FpgaParam, Vec<MlModelId>> = Default::default();
        for &param in &FpgaParam::ALL {
            cursor.insert(param, 0);
            asic_cursor.insert(param, 0);
            accepted.insert(param, Vec::new());
            asic_accepted.insert(param, None);
            dropped_models.insert(param, Vec::new());
        }
        let mut select_span = recorder.span("flow/select_estimate");
        loop {
            // Next wave: per parameter, enough ranked models to fill the
            // top-k slots, plus the ASIC-regression slot when requested.
            let mut jobs: Vec<(FpgaParam, MlModelId, bool)> = Vec::new();
            for &param in &FpgaParam::ALL {
                let pool = &ranked[&param];
                let cur = cursor.get_mut(&param).expect("param initialized");
                let mut missing = cfg.top_models.saturating_sub(accepted[&param].len());
                while missing > 0 && *cur < pool.len() {
                    jobs.push((param, pool[*cur], false));
                    *cur += 1;
                    missing -= 1;
                }
                if cfg.include_asic_regression && asic_accepted[&param].is_none() {
                    let pool = &asic_ranked[&param];
                    let cur = asic_cursor.get_mut(&param).expect("param initialized");
                    if *cur < pool.len() {
                        jobs.push((param, pool[*cur], true));
                        *cur += 1;
                    }
                }
            }
            if jobs.is_empty() {
                break;
            }
            // Estimate + quarantine + peel, one parallel task per model.
            type Peeled = (BTreeSet<usize>, usize, u64);
            let results: Vec<Peeled> = rt.par_map(&jobs, |_, &(param, model, _)| {
                let est = zoo.estimate_all_traced(model, param, &records, recorder);
                let mut keep: Vec<usize> = Vec::with_capacity(est.len());
                let mut points: Vec<(f64, f64)> = Vec::with_capacity(est.len());
                let mut quarantined = 0u64;
                for (i, (&e, r)) in est.iter().zip(&records).enumerate() {
                    if e.is_finite() {
                        keep.push(i);
                        points.push((e, r.error.med));
                    } else {
                        quarantined += 1;
                    }
                }
                let mut set = BTreeSet::new();
                for front in peel_fronts(&points, cfg.fronts) {
                    set.extend(front.into_iter().map(|li| keep[li]));
                }
                (set, keep.len(), quarantined)
            });
            for (&(param, model, asic_slot), (set, finite, quarantined)) in jobs.iter().zip(results)
            {
                Counters::add(&rt.counters().estimates_quarantined, quarantined);
                if finite == 0 {
                    dropped_models
                        .get_mut(&param)
                        .expect("param initialized")
                        .push(model);
                } else if asic_slot {
                    *asic_accepted.get_mut(&param).expect("param initialized") = Some((model, set));
                } else {
                    accepted
                        .get_mut(&param)
                        .expect("param initialized")
                        .push((model, set));
                }
            }
        }
        let mut selected_models: BTreeMap<FpgaParam, Vec<MlModelId>> = BTreeMap::new();
        let mut candidates: BTreeMap<FpgaParam, Vec<usize>> = BTreeMap::new();
        let mut synthesized: BTreeSet<usize> = subset.iter().copied().collect();
        for &param in &FpgaParam::ALL {
            let mut chosen: Vec<MlModelId> = Vec::new();
            let mut union: BTreeSet<usize> = BTreeSet::new();
            for (model, set) in &accepted[&param] {
                chosen.push(*model);
                union.extend(set.iter().copied());
            }
            if let Some((model, set)) = &asic_accepted[&param] {
                chosen.push(*model);
                union.extend(set.iter().copied());
            }
            let list: Vec<usize> = union.iter().copied().collect();
            synthesized.extend(list.iter().copied());
            selected_models.insert(param, chosen);
            candidates.insert(param, list);
        }
        select_span.add_items(synthesized.len() as u64);
        drop(select_span);

        // 5. Final measured pareto fronts over what the flow synthesized.
        let mut fronts_span = recorder.span("flow/fronts");
        let mut final_fronts = BTreeMap::new();
        let mut true_fronts = BTreeMap::new();
        let mut cov = BTreeMap::new();
        for &param in &FpgaParam::ALL {
            let all_points: Vec<(f64, f64)> = records
                .iter()
                .map(|r| (r.fpga_param(param), r.error.med))
                .collect();
            let synth_list: Vec<usize> = synthesized.iter().copied().collect();
            let synth_points: Vec<(f64, f64)> = synth_list.iter().map(|&i| all_points[i]).collect();
            let local_front = pareto_front(&synth_points);
            let found: Vec<usize> = local_front.iter().map(|&li| synth_list[li]).collect();
            let truth = pareto_front(&all_points);
            cov.insert(param, coverage(&truth, &found, &all_points));
            final_fronts.insert(param, found);
            true_fronts.insert(param, truth);
        }
        fronts_span.add_items(FpgaParam::ALL.len() as u64);
        drop(fronts_span);

        // 6. Time accounting over the modeled synthesis times.
        let exhaustive_s: f64 = records.iter().map(|r| r.fpga.synth_time_s).sum();
        let subset_s: f64 = subset.iter().map(|&i| records[i].fpga.synth_time_s).sum();
        // Membership set built once: the old per-candidate `subset.contains`
        // scan was O(subset × synthesized).
        let subset_set: std::collections::HashSet<usize> = subset.iter().copied().collect();
        let candidate_extra: f64 = synthesized
            .iter()
            .filter(|i| !subset_set.contains(i))
            .map(|&i| records[i].fpga.synth_time_s)
            .sum();
        // Model training/estimation: a flat modeled cost per model-target
        // plus a per-estimate term — minutes, matching the paper's
        // "order of seconds" estimation plus training overhead.
        let ml_s = (cfg.models.len() * FpgaParam::ALL.len()) as f64 * 20.0 + n as f64 * 3.0e-3;
        let time = TimeAccounting {
            exhaustive_s,
            subset_s,
            candidates_s: candidate_extra,
            ml_s,
            exhaustive_count: n,
            flow_count: synthesized.len(),
        };

        // Surface persistence failures: the cache counts appends it had to
        // drop; fold the lifetime total into this run's counters so the
        // report and `afp flow` summary can show it.
        let mut cache_last_error = None;
        if let Some(cache) = &self.cache {
            let dropped = cache.write_errors();
            if dropped > 0 {
                Counters::add(&rt.counters().cache_write_errors, dropped);
                cache_last_error = cache.last_write_error();
            }
        }

        FlowOutcome {
            records,
            subset,
            train,
            validate,
            zoo,
            selected_models,
            dropped_models,
            candidates,
            synthesized,
            final_fronts,
            true_fronts,
            coverage: cov,
            time,
            runtime: rt.snapshot(),
            cache_last_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::ArithKind;

    fn tiny_config(target: usize) -> FlowConfig {
        FlowConfig {
            library: LibrarySpec::new(ArithKind::Adder, 8, target),
            min_subset: 24,
            // Keep tests quick: a competitive subset of the zoo.
            models: vec![
                MlModelId::Ml1,
                MlModelId::Ml2,
                MlModelId::Ml3,
                MlModelId::Ml4,
                MlModelId::Ml11,
                MlModelId::Ml13,
                MlModelId::Ml14,
                MlModelId::Ml18,
            ],
            ..FlowConfig::default()
        }
    }

    #[test]
    fn flow_runs_end_to_end_and_reduces_synthesis() {
        let outcome = Flow::new(tiny_config(120)).run();
        assert_eq!(outcome.records.len(), outcome.time.exhaustive_count);
        assert!(outcome.time.flow_count < outcome.time.exhaustive_count);
        assert!(
            outcome.time.speedup().is_some_and(|s| s > 1.0),
            "no speedup"
        );
        assert!(outcome.time.synth_reduction().is_some_and(|r| r > 1.0));
        // Everything the flow reports as a front member was synthesized.
        for front in outcome.final_fronts.values() {
            for i in front {
                assert!(outcome.synthesized.contains(i));
            }
        }
    }

    #[test]
    fn coverage_is_meaningful() {
        let outcome = Flow::new(tiny_config(120)).run();
        for (&param, &c) in &outcome.coverage {
            assert!((0.0..=1.0).contains(&c), "{param:?}: {c}");
        }
        // On a small library with 3 fronts the union should recover a
        // decent share of the true front.
        assert!(
            outcome.mean_coverage() > 0.4,
            "mean coverage {}",
            outcome.mean_coverage()
        );
    }

    #[test]
    fn more_fronts_synthesize_more_but_cover_more() {
        let base = tiny_config(120);
        let one = Flow::new(FlowConfig {
            fronts: 1,
            ..base.clone()
        })
        .run();
        let three = Flow::new(FlowConfig { fronts: 3, ..base }).run();
        assert!(three.time.flow_count >= one.time.flow_count);
        assert!(three.mean_coverage() >= one.mean_coverage() - 1e-9);
    }

    #[test]
    fn selected_models_exclude_asic_regressions_by_default() {
        let outcome = Flow::new(tiny_config(100)).run();
        for models in outcome.selected_models.values() {
            assert!(!models.is_empty());
            assert!(models.iter().all(|m| !m.is_asic_regression()));
        }
        let with_asic = Flow::new(FlowConfig {
            include_asic_regression: true,
            ..tiny_config(100)
        })
        .run();
        for models in with_asic.selected_models.values() {
            assert!(models.iter().any(|m| m.is_asic_regression()));
        }
    }

    #[test]
    fn outcome_is_deterministic() {
        let a = Flow::new(tiny_config(80)).run();
        let b = Flow::new(tiny_config(80)).run();
        assert_eq!(a.subset, b.subset);
        assert_eq!(a.synthesized, b.synthesized);
        assert_eq!(a.final_fronts, b.final_fronts);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn tracing_does_not_perturb_the_outcome() {
        let untraced = Flow::new(tiny_config(80)).run();
        let recorder = Recorder::enabled();
        let traced = Flow::new(tiny_config(80)).run_traced(&recorder);
        assert_eq!(untraced.subset, traced.subset);
        assert_eq!(untraced.synthesized, traced.synthesized);
        assert_eq!(untraced.final_fronts, traced.final_fronts);
        assert_eq!(untraced.coverage, traced.coverage);
        assert_eq!(untraced.time, traced.time);
        if recorder.is_enabled() {
            let names: Vec<String> = recorder.stages().into_iter().map(|(n, _)| n).collect();
            for stage in [
                "flow/build_library",
                "flow/characterize",
                "flow/subset_split",
                "flow/train_zoo",
                "flow/select_estimate",
                "flow/fronts",
            ] {
                assert!(names.iter().any(|n| n == stage), "missing stage {stage}");
            }
            assert!(
                names.iter().any(|n| n.starts_with("train/")),
                "no per-model training spans"
            );
            assert!(
                names.iter().any(|n| n.starts_with("estimate/")),
                "no per-model estimation spans"
            );
        }
    }

    #[test]
    fn streamed_stored_source_matches_the_in_ram_path() {
        let dir = std::env::temp_dir().join(format!("afp-flow-source-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("lib.afps");
        let cfg = tiny_config(60);
        let library = afp_circuits::build_library(&cfg.library);
        afp_circuits::write_library(&path, &library).expect("persist corpus");

        let in_ram = Flow::new(cfg.clone()).run_on_library(&library);
        for (threads, shard) in [(1, 7), (4, 17), (1, 0)] {
            let flow = Flow::new(FlowConfig {
                threads,
                shard_circuits: shard,
                ..cfg.clone()
            });
            let streamed = flow
                .run_source(&LibrarySource::Stored(path.clone()))
                .expect("streamed flow");
            assert_eq!(in_ram.subset, streamed.subset, "threads={threads}");
            assert_eq!(in_ram.synthesized, streamed.synthesized);
            assert_eq!(in_ram.final_fronts, streamed.final_fronts);
            assert_eq!(in_ram.coverage, streamed.coverage);
            assert_eq!(in_ram.time, streamed.time);
            assert!(streamed.runtime.shards_streamed >= 1);
            let cap = if shard == 0 {
                DEFAULT_SHARD_CIRCUITS
            } else {
                shard
            };
            assert!(
                streamed.runtime.peak_resident_circuits <= cap as u64,
                "peak {} > shard {cap}",
                streamed.runtime.peak_resident_circuits
            );
        }
        // A missing corpus is a loud error, not an empty run.
        match Flow::new(cfg.clone()).run_source(&LibrarySource::Stored(dir.join("nope.afps"))) {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            Ok(_) => panic!("missing corpus must not run"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generated_source_is_the_classic_run() {
        let cfg = tiny_config(60);
        let classic = Flow::new(cfg.clone()).run();
        let sourced = Flow::new(cfg.clone())
            .run_source(&LibrarySource::Generated(cfg.library.clone()))
            .expect("generated source");
        assert_eq!(classic.subset, sourced.subset);
        assert_eq!(classic.final_fronts, sourced.final_fronts);
        assert_eq!(classic.time, sourced.time);
        assert_eq!(classic.runtime.shards_streamed, 0);
        assert_eq!(classic.runtime.peak_resident_circuits, 0);
    }

    #[test]
    fn undefined_time_ratios_are_none_not_inf() {
        // A flow that synthesized nothing in zero time: both ratios are
        // undefined, not inf/NaN.
        let zero = TimeAccounting::default();
        assert_eq!(zero.speedup(), None);
        assert_eq!(zero.synth_reduction(), None);
        let nonfinite = TimeAccounting {
            exhaustive_s: f64::INFINITY,
            subset_s: 1.0,
            flow_count: 3,
            exhaustive_count: 30,
            ..TimeAccounting::default()
        };
        assert_eq!(nonfinite.speedup(), None);
        assert_eq!(nonfinite.synth_reduction(), Some(10.0));
    }

    #[test]
    fn try_new_rejects_unusable_cache_dir() {
        let dir = std::env::temp_dir().join(format!("afp-flow-trynew-{}", std::process::id()));
        let file = dir.join("occupied");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        std::fs::write(&file, b"x").expect("write blocker file");
        // A *file* where the cache dir should go cannot be created as a
        // directory: try_new must surface the error.
        let config = FlowConfig {
            cache_dir: Some(file.clone()),
            ..tiny_config(40)
        };
        assert!(Flow::try_new(config).is_err());
        // And a usable directory succeeds.
        let ok = FlowConfig {
            cache_dir: Some(dir.join("cache")),
            ..tiny_config(40)
        };
        assert!(Flow::try_new(ok).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}

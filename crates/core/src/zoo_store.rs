//! Persisted trained zoos: the `.afpm` model container.
//!
//! A `.afpm` file is an [`afp_store`] frame file (same CRC-checked
//! framing, same sealed-index footer as the circuit store) whose records
//! carry a trained [`TrainedZoo`] instead of characterized circuits:
//!
//! * one **meta record** (`Key128 { hi: 0, lo: 0 }`) holding the feature
//!   layout's column names, the FPGA target identity the ground truth was
//!   synthesized for, the coverage list of `(kind, width)` pairs the
//!   training library spanned, and the validation fidelity table;
//! * one **model record** per trained `(model, parameter)` pair
//!   (`Key128 { hi: 1, lo: model_idx << 8 | param_idx }`) whose payload
//!   is the model's codec tag byte followed by its
//!   [`afp_ml::ModelState`] payload.
//!
//! Loading is deliberately loud: a record-version mismatch, an unsealed
//! (interrupted) file, a layout whose column names drifted from
//! [`FeatureLayout::standard`], or a payload the codec rejects all fail
//! with a [`ZooStoreError`] that names the problem — never a silently
//! wrong estimate. Model payloads round-trip bit-exactly (see
//! [`afp_ml::codec`]), so an estimate served from a loaded zoo equals the
//! estimate the training process would have produced, to the last bit.

use std::io;
use std::path::Path;

use afp_circuits::ArithKind;
use afp_ml::{MlModelId, Regressor};
use afp_runtime::Key128;
use afp_store::bytes::{put_f64, put_uvarint};
use afp_store::{inspect, ByteReader, FrameStream, StoreWriter};

use crate::fidelity::{FidelityRecord, TrainedZoo};
use crate::record::{FeatureLayout, FpgaParam};

/// Record-payload version of the `.afpm` container. Bump when the meta
/// or model payload encoding changes; readers refuse other versions.
pub const AFPM_RECORD_VERSION: u32 = 1;

/// Errors from saving or loading a `.afpm` model container.
#[derive(Debug)]
pub enum ZooStoreError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file exists but is not a usable `.afpm` container — wrong
    /// version, unsealed, corrupt, or semantically inconsistent. The
    /// message names the exact problem.
    Format(String),
}

impl std::fmt::Display for ZooStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZooStoreError::Io(e) => write!(f, "model store i/o error: {e}"),
            ZooStoreError::Format(msg) => write!(f, "model store format error: {msg}"),
        }
    }
}

impl std::error::Error for ZooStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZooStoreError::Io(e) => Some(e),
            ZooStoreError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ZooStoreError {
    fn from(e: io::Error) -> ZooStoreError {
        ZooStoreError::Io(e)
    }
}

/// A zoo loaded from (or about to be saved to) a `.afpm` container,
/// together with the serving metadata the file carries alongside the
/// models themselves.
pub struct SavedZoo {
    /// The trained models and their validation fidelities.
    pub zoo: TrainedZoo,
    /// FPGA target identity the training ground truth was synthesized
    /// for (see [`afp_fpga::target`]). Serving only answers estimate
    /// requests whose target matches.
    pub target: String,
    /// `(kind, width)` pairs the training library spanned. Requests
    /// outside this coverage fall back to full characterization.
    pub coverage: Vec<(ArithKind, usize)>,
}

impl SavedZoo {
    /// Whether the training library covered this circuit shape.
    pub fn covers(&self, kind: ArithKind, width: usize) -> bool {
        self.coverage.iter().any(|&(k, w)| k == kind && w == width)
    }
}

const META_KEY: Key128 = Key128 { hi: 0, lo: 0 };
const MODEL_KEY_HI: u64 = 1;

fn model_index(model: MlModelId) -> u64 {
    MlModelId::ALL.iter().position(|&m| m == model).unwrap_or(0) as u64
}

fn param_index(param: FpgaParam) -> u64 {
    FpgaParam::ALL.iter().position(|&p| p == param).unwrap_or(0) as u64
}

fn kind_code(kind: ArithKind) -> u8 {
    match kind {
        ArithKind::Adder => 0,
        ArithKind::Multiplier => 1,
    }
}

fn kind_from_code(code: u8) -> Option<ArithKind> {
    match code {
        0 => Some(ArithKind::Adder),
        1 => Some(ArithKind::Multiplier),
        _ => None,
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut ByteReader) -> Option<String> {
    let len = usize::try_from(r.uvarint()?).ok()?;
    if len > r.remaining() {
        return None;
    }
    String::from_utf8(r.bytes(len)?.to_vec()).ok()
}

fn encode_meta(zoo: &TrainedZoo, target: &str, coverage: &[(ArithKind, usize)]) -> Vec<u8> {
    let mut out = Vec::new();
    let names = zoo.layout().names();
    put_uvarint(&mut out, names.len() as u64);
    for name in names {
        put_str(&mut out, name);
    }
    put_str(&mut out, target);
    put_uvarint(&mut out, coverage.len() as u64);
    for &(kind, width) in coverage {
        out.push(kind_code(kind));
        put_uvarint(&mut out, width as u64);
    }
    put_uvarint(&mut out, zoo.fidelities.len() as u64);
    for f in &zoo.fidelities {
        out.push(model_index(f.model) as u8);
        out.push(param_index(f.param) as u8);
        put_f64(&mut out, f.fidelity);
        put_f64(&mut out, f.r2);
        put_f64(&mut out, f.mae);
        put_f64(&mut out, f.pearson);
    }
    out
}

struct Meta {
    target: String,
    coverage: Vec<(ArithKind, usize)>,
    fidelities: Vec<FidelityRecord>,
}

fn decode_meta(payload: &[u8]) -> Result<Meta, ZooStoreError> {
    let bad = |what: &str| ZooStoreError::Format(format!("meta record: {what}"));
    let mut r = ByteReader::new(payload);
    let expected = FeatureLayout::standard();
    let n_names = r.uvarint().ok_or_else(|| bad("truncated"))? as usize;
    if n_names != expected.names().len() {
        return Err(ZooStoreError::Format(format!(
            "feature layout has {n_names} columns, this binary expects {} — \
             the zoo was trained by an incompatible build; retrain and re-save",
            expected.names().len()
        )));
    }
    for want in expected.names() {
        let got = read_str(&mut r).ok_or_else(|| bad("truncated feature name"))?;
        if got != *want {
            return Err(ZooStoreError::Format(format!(
                "feature column '{got}' where this binary expects '{want}' — \
                 the zoo was trained by an incompatible build; retrain and re-save"
            )));
        }
    }
    let target = read_str(&mut r).ok_or_else(|| bad("truncated target"))?;
    let n_cov = r.uvarint().ok_or_else(|| bad("truncated coverage"))? as usize;
    let mut coverage = Vec::with_capacity(n_cov.min(r.remaining()));
    for _ in 0..n_cov {
        let kind = kind_from_code(r.u8().ok_or_else(|| bad("truncated coverage"))?)
            .ok_or_else(|| bad("unknown circuit kind code"))?;
        let width = usize::try_from(r.uvarint().ok_or_else(|| bad("truncated coverage"))?)
            .map_err(|_| bad("coverage width overflows"))?;
        coverage.push((kind, width));
    }
    let n_fid = r.uvarint().ok_or_else(|| bad("truncated fidelities"))? as usize;
    let mut fidelities = Vec::with_capacity(n_fid.min(r.remaining()));
    for _ in 0..n_fid {
        let mi = r.u8().ok_or_else(|| bad("truncated fidelity row"))? as usize;
        let pi = r.u8().ok_or_else(|| bad("truncated fidelity row"))? as usize;
        let model = *MlModelId::ALL
            .get(mi)
            .ok_or_else(|| bad("fidelity row names an unknown model"))?;
        let param = *FpgaParam::ALL
            .get(pi)
            .ok_or_else(|| bad("fidelity row names an unknown parameter"))?;
        fidelities.push(FidelityRecord {
            model,
            param,
            fidelity: r.f64_le().ok_or_else(|| bad("truncated fidelity row"))?,
            r2: r.f64_le().ok_or_else(|| bad("truncated fidelity row"))?,
            mae: r.f64_le().ok_or_else(|| bad("truncated fidelity row"))?,
            pearson: r.f64_le().ok_or_else(|| bad("truncated fidelity row"))?,
        });
    }
    if !r.is_empty() {
        return Err(bad("trailing bytes after fidelity table"));
    }
    Ok(Meta {
        target,
        coverage,
        fidelities,
    })
}

/// Save a trained zoo (plus its serving metadata) as a sealed `.afpm`
/// container at `path`. The write is atomic — a crash mid-save leaves
/// any existing file untouched. Returns the number of model records
/// written.
///
/// Every trained regressor must support persistence ([`Regressor::
/// save_state`] returns `Some`); a zoo holding a non-persistable model
/// (e.g. a chaos-wrapped regressor) fails loudly rather than silently
/// saving with holes in its coverage.
pub fn save_zoo(
    path: &Path,
    zoo: &TrainedZoo,
    target: &str,
    coverage: &[(ArithKind, usize)],
) -> Result<u64, ZooStoreError> {
    let mut writer = StoreWriter::create_atomic(path, AFPM_RECORD_VERSION)?;
    writer.append(META_KEY, &encode_meta(zoo, target, coverage))?;
    let mut saved = 0u64;
    for (model, param, reg) in zoo.trained_models() {
        let state = reg.save_state().ok_or_else(|| {
            ZooStoreError::Format(format!(
                "{} ({}) does not support persistence; refusing to save a partial zoo",
                model.label(),
                reg.name()
            ))
        })?;
        let mut payload = Vec::with_capacity(1 + state.payload.len());
        payload.push(state.tag);
        payload.extend_from_slice(&state.payload);
        let key = Key128 {
            hi: MODEL_KEY_HI,
            lo: (model_index(model) << 8) | param_index(param),
        };
        writer.append(key, &payload)?;
        saved += 1;
    }
    writer.finish_sealed()?;
    Ok(saved)
}

/// Load a `.afpm` container saved by [`save_zoo`].
///
/// Fails loudly on a record-version mismatch ("re-train, don't guess"),
/// an unsealed or truncated file (an interrupted save), a drifted
/// feature layout, and any model payload the codec rejects.
pub fn load_zoo(path: &Path) -> Result<SavedZoo, ZooStoreError> {
    let info = inspect(path)?;
    if info.record_version != AFPM_RECORD_VERSION {
        return Err(ZooStoreError::Format(format!(
            "{} was written with model-record version {}, this binary reads \
             version {AFPM_RECORD_VERSION}; retrain and re-save the zoo",
            path.display(),
            info.record_version
        )));
    }
    if !info.sealed || info.truncated {
        return Err(ZooStoreError::Format(format!(
            "{} is not a sealed model container (interrupted save?); \
             retrain and re-save the zoo",
            path.display()
        )));
    }
    let mut meta: Option<Meta> = None;
    let mut models: Vec<((MlModelId, FpgaParam), Box<dyn Regressor>)> = Vec::new();
    for record in FrameStream::open(path)? {
        if record.key == META_KEY {
            meta = Some(decode_meta(&record.payload)?);
            continue;
        }
        if record.key.hi != MODEL_KEY_HI {
            // Reserved key space: skip for forward compatibility.
            continue;
        }
        let mi = (record.key.lo >> 8) as usize;
        let pi = (record.key.lo & 0xFF) as usize;
        let (Some(&model), Some(&param)) = (MlModelId::ALL.get(mi), FpgaParam::ALL.get(pi)) else {
            return Err(ZooStoreError::Format(format!(
                "model record key {:#x} names an unknown (model, parameter) pair",
                record.key.lo
            )));
        };
        let Some((&tag, state)) = record.payload.split_first() else {
            return Err(ZooStoreError::Format(format!(
                "empty model record for {}",
                model.label()
            )));
        };
        let reg = afp_ml::restore(tag, state).map_err(|e| {
            ZooStoreError::Format(format!(
                "model record for {} / {}: {e}",
                model.label(),
                param.label()
            ))
        })?;
        models.push(((model, param), reg));
    }
    let Some(meta) = meta else {
        return Err(ZooStoreError::Format(
            "missing meta record — not a model container".to_string(),
        ));
    };
    if models.is_empty() {
        return Err(ZooStoreError::Format(
            "container holds no model records".to_string(),
        ));
    }
    Ok(SavedZoo {
        zoo: TrainedZoo::from_parts(FeatureLayout::standard(), models, meta.fidelities),
        target: meta.target,
        coverage: meta.coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{characterize_library, sample_subset, train_validate_split};
    use crate::fidelity::train_zoo;
    use crate::record::{extract_features, CircuitRecord};
    use afp_circuits::{build_library, LibrarySpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("afp-zoo-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trained() -> (Vec<CircuitRecord>, TrainedZoo) {
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 60));
        let records = characterize_library(
            &lib,
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
        );
        let subset = sample_subset(records.len(), 0.5, 24, 7);
        let (train, val) = train_validate_split(&subset, 0.8, 7);
        let models = [
            MlModelId::Ml1,
            MlModelId::Ml4,
            MlModelId::Ml14,
            MlModelId::Ml16,
            MlModelId::Ml18,
        ];
        let zoo = train_zoo(&records, &train, &val, &models, 0.01);
        (records, zoo)
    }

    #[test]
    fn round_trip_preserves_every_estimate_bit_exactly() {
        let (records, zoo) = trained();
        let path = tmp("roundtrip.afpm");
        let coverage = vec![(ArithKind::Adder, 8)];
        let saved = save_zoo(&path, &zoo, "lut6-dsp", &coverage).unwrap();
        assert_eq!(saved, 5 * 3, "every (model, param) pair persists");

        let loaded = load_zoo(&path).unwrap();
        assert_eq!(loaded.target, "lut6-dsp");
        assert!(loaded.covers(ArithKind::Adder, 8));
        assert!(!loaded.covers(ArithKind::Multiplier, 8));
        assert_eq!(loaded.zoo.fidelities.len(), zoo.fidelities.len());
        for (a, b) in zoo.fidelities.iter().zip(&loaded.zoo.fidelities) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.param, b.param);
            assert_eq!(a.fidelity.to_bits(), b.fidelity.to_bits());
        }
        let layout = zoo.layout();
        for rec in records.iter().take(10) {
            let features = extract_features(rec, layout);
            for (model, param, _) in zoo.trained_models() {
                let before = zoo.estimate_row(model, param, &features).unwrap();
                let after = loaded.zoo.estimate_row(model, param, &features).unwrap();
                assert_eq!(
                    before.to_bits(),
                    after.to_bits(),
                    "{model:?}/{param:?} drifted across save/load"
                );
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_a_loud_error() {
        let path = tmp("wrong-version.afpm");
        let mut w = StoreWriter::create(&path, AFPM_RECORD_VERSION + 1).unwrap();
        w.append(META_KEY, b"whatever").unwrap();
        w.finish_sealed().unwrap();
        let Err(err) = load_zoo(&path) else {
            panic!("version mismatch must not load");
        };
        let msg = err.to_string();
        assert!(msg.contains("version"), "unhelpful error: {msg}");
        assert!(msg.contains("retrain"), "unhelpful error: {msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unsealed_file_is_rejected() {
        let (_, zoo) = trained();
        let path = tmp("unsealed.afpm");
        // Simulate an interrupted save: records but no seal.
        let mut w = StoreWriter::create(&path, AFPM_RECORD_VERSION).unwrap();
        w.append(META_KEY, &encode_meta(&zoo, "t", &[])).unwrap();
        w.finish().unwrap();
        let Err(err) = load_zoo(&path) else {
            panic!("unsealed file must not load");
        };
        assert!(err.to_string().contains("sealed"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_model_payload_is_rejected_not_panicking() {
        let (_, zoo) = trained();
        let path = tmp("corrupt.afpm");
        save_zoo(&path, &zoo, "t", &[(ArithKind::Adder, 8)]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the data region. The CRC layer
        // catches it as a truncated scan, which load reports loudly.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_zoo(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        match load_zoo(Path::new("/nonexistent/zoo.afpm")) {
            Err(ZooStoreError::Io(_)) => {}
            other => panic!("expected io error, got {:?}", other.map(|_| ())),
        }
    }
}

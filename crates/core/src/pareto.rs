//! Pareto-front machinery: extraction, multi-front peeling (§II of the
//! paper) and coverage scoring.
//!
//! All fronts are over 2-D points `(cost, error)` with *both* objectives
//! minimized; a point is pareto-optimal when no other point is at least as
//! good in both objectives and strictly better in one.
//!
//! Numeric policy: all orderings go through the workspace total-order
//! helpers ([`afp_ord`]), so NaN points can never panic a sort or corrupt
//! the peeling. A point with a NaN coordinate is **never** a front
//! member; `±inf` behaves as an ordinary extreme value.

/// Indices of the pareto-optimal points of `points = (cost, error)`.
///
/// Ties: duplicate points are all kept (none dominates the other strictly).
/// The result is sorted by ascending cost.
///
/// Points with a NaN coordinate are ignored: they are neither front
/// members nor able to dominate anything.
///
/// # Example
///
/// ```
/// use approxfpgas::pareto_front;
///
/// let pts = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)];
/// assert_eq!(pareto_front(&pts), vec![0, 1, 3]); // (3,4) is dominated
/// ```
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort by cost, then error: a sweep keeping the running error minimum
    // yields the non-dominated set. The total order places NaN-cost
    // points last, where the sweep stops.
    order.sort_by(|&a, &b| afp_ord::pair_asc(points[a], points[b]));
    let mut front = Vec::new();
    let mut best_error = f64::INFINITY;
    let mut i = 0;
    while i < order.len() {
        // Group equal-cost points; among them only the min-error ones are
        // candidates.
        let cost = points[order[i]].0;
        if cost.is_nan() {
            // NaN costs sort last; nothing beyond this point is rankable.
            break;
        }
        let mut j = i;
        let mut group_min = f64::INFINITY;
        while j < order.len() && points[order[j]].0 == cost {
            // `f64::min` skips NaN errors, so a NaN-error point can never
            // set the group minimum (and `NaN == group_min` below is
            // false, so it can never join the front either).
            group_min = group_min.min(points[order[j]].1);
            j += 1;
        }
        if group_min < best_error {
            for &idx in &order[i..j] {
                if points[idx].1 == group_min {
                    front.push(idx);
                }
            }
            best_error = group_min;
        }
        i = j;
    }
    front.sort_unstable();
    front
}

/// Peel `n` successive pseudo-pareto fronts (the paper's F1, F2, ... built
/// on `C`, `C \ F1`, `C \ (F1 ∪ F2)`, ...). Returns one index list per
/// front; fewer than `n` lists when the points run out.
///
/// Points with a NaN coordinate are never peeled ([`pareto_front`] skips
/// them); peeling stops early instead of emitting empty fronts when only
/// unrankable points remain.
///
/// # Example
///
/// ```
/// use approxfpgas::peel_fronts;
///
/// let pts = [(1.0, 3.0), (2.0, 2.0), (2.5, 2.5), (3.0, 1.0)];
/// let fronts = peel_fronts(&pts, 2);
/// assert_eq!(fronts.len(), 2);
/// assert!(fronts[0].contains(&0) && fronts[0].contains(&3));
/// assert!(fronts[1].contains(&2));
/// ```
pub fn peel_fronts(points: &[(f64, f64)], n: usize) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..points.len()).collect();
    let mut fronts = Vec::new();
    for _ in 0..n {
        if remaining.is_empty() {
            break;
        }
        let sub: Vec<(f64, f64)> = remaining.iter().map(|&i| points[i]).collect();
        let local = pareto_front(&sub);
        if local.is_empty() {
            // Only NaN points left; further peels would all be empty.
            break;
        }
        let global: Vec<usize> = local.iter().map(|&li| remaining[li]).collect();
        let taken: std::collections::HashSet<usize> = global.iter().copied().collect();
        remaining.retain(|i| !taken.contains(i));
        fronts.push(global);
    }
    fronts
}

/// Fraction of the true pareto front recovered by `found` (the paper's
/// "percentage coverage of the pareto-optimal designs").
///
/// A true-front point counts as covered when `found` contains it *or*
/// contains a point with identical objectives.
pub fn coverage(true_front: &[usize], found: &[usize], points: &[(f64, f64)]) -> f64 {
    if true_front.is_empty() {
        return 1.0;
    }
    // Index and value-key sets are built once: membership checks are O(1)
    // instead of rescanning `found` per true-front point.
    let found_idx: std::collections::HashSet<usize> = found.iter().copied().collect();
    let found_keys: std::collections::HashSet<(u64, u64)> =
        found.iter().filter_map(|&i| point_key(points[i])).collect();
    let covered = true_front
        .iter()
        .filter(|&&t| {
            found_idx.contains(&t) || point_key(points[t]).is_some_and(|k| found_keys.contains(&k))
        })
        .count();
    covered as f64 / true_front.len() as f64
}

/// Bit-pattern key for exact value-equality lookups, matching `==`
/// semantics: `-0.0` normalizes to `+0.0`, and NaN coordinates yield no
/// key (NaN never equals anything under `==`).
fn point_key(p: (f64, f64)) -> Option<(u64, u64)> {
    if p.0.is_nan() || p.1.is_nan() {
        None
    } else {
        Some(((p.0 + 0.0).to_bits(), (p.1 + 0.0).to_bits()))
    }
}

/// True if point `a` dominates point `b` (both minimized).
///
/// NaN coordinates make every comparison false: a NaN point neither
/// dominates nor is dominated, consistent with [`pareto_front`] ignoring
/// such points.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_its_own_front() {
        assert_eq!(pareto_front(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn dominated_points_are_excluded() {
        let pts = [(1.0, 1.0), (2.0, 2.0), (0.5, 3.0)];
        let f = pareto_front(&pts);
        assert_eq!(f, vec![0, 2]);
    }

    #[test]
    fn duplicates_are_kept_together() {
        let pts = [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        let f = pareto_front(&pts);
        assert_eq!(f, vec![0, 1, 2]);
    }

    #[test]
    fn equal_cost_keeps_only_min_error() {
        let pts = [(1.0, 2.0), (1.0, 1.0), (3.0, 0.5)];
        let f = pareto_front(&pts);
        assert_eq!(f, vec![1, 2]);
    }

    #[test]
    fn front_members_are_mutually_nondominated() {
        let mut s = 9u64;
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (
                    ((s >> 20) & 0x3FF) as f64 / 10.0,
                    ((s >> 40) & 0x3FF) as f64 / 10.0,
                )
            })
            .collect();
        let f = pareto_front(&pts);
        for &a in &f {
            for &b in &f {
                if a != b {
                    assert!(!dominates(pts[a], pts[b]), "{a} dominates {b}");
                }
            }
        }
        // Every non-front point is dominated by some front point.
        for i in 0..pts.len() {
            if !f.contains(&i) {
                assert!(
                    f.iter().any(|&a| dominates(pts[a], pts[i])),
                    "point {i} wrongly excluded"
                );
            }
        }
    }

    #[test]
    fn peeling_partitions_progressively() {
        let mut s = 77u64;
        let pts: Vec<(f64, f64)> = (0..60)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((s >> 20) & 0xFF) as f64, ((s >> 40) & 0xFF) as f64)
            })
            .collect();
        let fronts = peel_fronts(&pts, 3);
        assert_eq!(fronts.len(), 3);
        // Disjoint.
        let mut seen = std::collections::HashSet::new();
        for f in &fronts {
            for &i in f {
                assert!(seen.insert(i), "index {i} in two fronts");
            }
        }
        // F2 points are dominated only by F1 points (none within F2).
        for &b in &fronts[1] {
            assert!(fronts[0].iter().any(|&a| dominates(pts[a], pts[b])));
        }
    }

    #[test]
    fn peeling_stops_when_exhausted() {
        let pts = [(1.0, 1.0), (2.0, 0.5)];
        let fronts = peel_fronts(&pts, 5);
        assert_eq!(fronts.len(), 1); // both points on F1
    }

    #[test]
    fn nan_points_are_never_front_members() {
        let nan = f64::NAN;
        let pts = [(1.0, 1.0), (nan, 0.0), (0.5, nan), (nan, nan), (2.0, 0.5)];
        assert_eq!(pareto_front(&pts), vec![0, 4]);
        // All-NaN input: empty front, no panic, no infinite loop.
        assert_eq!(pareto_front(&[(nan, 1.0), (nan, nan)]), Vec::<usize>::new());
        // NaN-cost duplicates grouped at the tail must not stall the sweep.
        assert_eq!(pareto_front(&[(nan, 1.0), (nan, 1.0)]), Vec::<usize>::new());
    }

    #[test]
    fn infinities_rank_as_extreme_values() {
        let inf = f64::INFINITY;
        // inf cost but uniquely small error: non-dominated.
        let pts = [(1.0, 5.0), (inf, 1.0), (2.0, 3.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
        // -inf cost dominates everything with larger error.
        let pts = [(-inf, 1.0), (0.0, 2.0), (0.0, 0.5)];
        assert_eq!(pareto_front(&pts), vec![0, 2]);
        // inf error is never on the front while finite errors exist.
        let pts = [(1.0, inf), (2.0, 3.0)];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    fn peeling_skips_nan_points_and_terminates() {
        let nan = f64::NAN;
        let pts = [(1.0, 2.0), (nan, 0.0), (2.0, 1.0), (3.0, nan), (2.5, 2.5)];
        let fronts = peel_fronts(&pts, 10);
        // NaN points never appear in any front.
        for f in &fronts {
            assert!(!f.contains(&1) && !f.contains(&3), "{fronts:?}");
        }
        // No trailing empty fronts once only NaN points remain.
        assert!(fronts.iter().all(|f| !f.is_empty()));
        let peeled: usize = fronts.iter().map(|f| f.len()).sum();
        assert_eq!(peeled, 3);
        // All-NaN input peels nothing.
        assert!(peel_fronts(&[(nan, nan)], 3).is_empty());
    }

    #[test]
    fn coverage_with_nan_points_stays_in_unit_range() {
        let nan = f64::NAN;
        let pts = [(1.0, 1.0), (nan, 0.5), (2.0, 0.25)];
        // A NaN true-front point is only covered by its own index.
        assert_eq!(coverage(&[0, 1], &[0], &pts), 0.5);
        assert_eq!(coverage(&[0, 1], &[0, 1], &pts), 1.0);
        // A NaN found point never value-covers anything.
        assert_eq!(coverage(&[0], &[1], &pts), 0.0);
    }

    #[test]
    fn coverage_counts_value_duplicates() {
        let pts = [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        // True front indices {0,1,2}; found only {1,2} — but 0 has the same
        // objectives as 1, so it still counts as covered.
        assert_eq!(coverage(&[0, 1, 2], &[1, 2], &pts), 1.0);
        assert_eq!(coverage(&[0, 2], &[0], &pts), 0.5);
        assert_eq!(coverage(&[], &[], &pts), 1.0);
    }

    proptest::proptest! {
        #[test]
        fn front_is_subset_and_idempotent(seed in 0u64..300) {
            let mut s = seed | 1;
            // Roughly every 8th coordinate is degenerate: NaN, ±inf or a
            // huge magnitude, mimicking untrusted estimator output.
            let coord = |s: &mut u64| -> f64 {
                *s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                match (*s >> 59) & 0x7 {
                    0 => match (*s >> 56) & 0x3 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        _ => 1e300,
                    },
                    _ => ((*s >> 16) & 0x3F) as f64,
                }
            };
            let pts: Vec<(f64, f64)> = (0..50).map(|_| (coord(&mut s), coord(&mut s))).collect();
            let f1 = pareto_front(&pts);
            // No NaN point is ever a front member.
            for &i in &f1 {
                proptest::prop_assert!(!pts[i].0.is_nan() && !pts[i].1.is_nan());
            }
            // Front members are mutually non-dominated.
            for &a in &f1 {
                for &b in &f1 {
                    proptest::prop_assert!(a == b || !dominates(pts[a], pts[b]));
                }
            }
            let sub: Vec<(f64, f64)> = f1.iter().map(|&i| pts[i]).collect();
            let f2 = pareto_front(&sub);
            proptest::prop_assert_eq!(f2.len(), f1.len(), "front not idempotent");
        }
    }
}

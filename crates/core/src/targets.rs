//! Cross-fabric exploration: per-target flow sweeps and the Xel-FPGAs
//! transfer experiment.
//!
//! The paper shows that cost rankings shift between an ASIC fabric and a
//! LUT-6 FPGA; its follow-up (Xel-FPGAs) asks the same question *between*
//! FPGA platforms. This module operationalizes both:
//!
//! * [`TargetSet`] + [`sweep_targets`] run the full methodology once per
//!   named device profile (characterize → train → estimate → peel →
//!   pareto), producing one [`FlowOutcome`] per fabric whose records all
//!   carry their target identity.
//! * [`transfer_experiment`] trains the model zoo on one target's
//!   synthesized subset and evaluates its estimates against *another*
//!   target's ground truth — reporting how much estimation fidelity and
//!   pareto coverage degrade under a retarget. The diagonal of
//!   [`transfer_matrix`] is the native (train = eval) quality; the
//!   off-diagonal cells answer "does the pareto front survive a move
//!   from fabric A to fabric B?".
//!
//! Everything here is deterministic for a fixed configuration: sweeps
//! reuse the flow's thread-invariant stages, and the transfer experiment
//! derives all sampling from the base seed.

use std::collections::BTreeMap;

use afp_circuits::build_library_with;
use afp_fpga::target::{named, registry, TargetProfile};
use afp_ml::metrics::fidelity;
use afp_runtime::Runtime;

use crate::dataset::{characterize_library_with, sample_subset, train_validate_split};
use crate::fidelity::train_zoo_with;
use crate::flow::{Flow, FlowConfig, FlowOutcome};
use crate::pareto::{coverage, pareto_front, peel_fronts};
use crate::record::FpgaParam;

/// A named target could not be resolved against the registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownTargetError {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownTargetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let known: Vec<&str> = registry().iter().map(|p| p.name).collect();
        write!(
            f,
            "unknown target `{}` (known targets: {})",
            self.name,
            known.join(", ")
        )
    }
}

impl std::error::Error for UnknownTargetError {}

/// A validated, ordered set of device profiles to sweep.
#[derive(Clone, Debug)]
pub struct TargetSet {
    profiles: Vec<&'static TargetProfile>,
}

impl TargetSet {
    /// Every registry profile, in registry order.
    pub fn all() -> TargetSet {
        TargetSet {
            profiles: registry().iter().collect(),
        }
    }

    /// Resolve `names` against the registry, preserving order.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Result<TargetSet, UnknownTargetError> {
        let mut profiles = Vec::with_capacity(names.len());
        for name in names {
            let name = name.as_ref();
            profiles.push(named(name).ok_or_else(|| UnknownTargetError {
                name: name.to_string(),
            })?);
        }
        Ok(TargetSet { profiles })
    }

    /// The resolved profiles, in sweep order.
    pub fn profiles(&self) -> &[&'static TargetProfile] {
        &self.profiles
    }

    /// Number of targets in the set.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// One target's completed flow inside a sweep.
pub struct TargetRun {
    /// Registry name of the device profile.
    pub target: String,
    /// The full methodology outcome on that fabric.
    pub outcome: FlowOutcome,
}

/// Result of [`sweep_targets`]: one flow outcome per device profile.
pub struct TargetSweep {
    /// Per-target runs, in sweep order.
    pub runs: Vec<TargetRun>,
}

impl TargetSweep {
    /// Per-target mean pareto coverage, in sweep order.
    pub fn mean_coverages(&self) -> Vec<(String, f64)> {
        self.runs
            .iter()
            .map(|r| (r.target.clone(), r.outcome.mean_coverage()))
            .collect()
    }
}

/// Run the full methodology once per profile in `set`.
///
/// Each run clones `base`, retargets its FPGA configuration through
/// [`TargetProfile::apply`] (architecture, clock and jitter change;
/// cut budget, activity passes, seed and pruning are preserved) and runs
/// a fresh [`Flow`]. Characterization-cache keys include the target
/// identity, so per-target entries never collide even across sweeps
/// sharing one cache directory.
pub fn sweep_targets(base: &FlowConfig, set: &TargetSet) -> TargetSweep {
    let runs = set
        .profiles()
        .iter()
        .map(|profile| {
            let config = FlowConfig {
                fpga: profile.apply(&base.fpga),
                ..base.clone()
            };
            TargetRun {
                target: profile.name.to_string(),
                outcome: Flow::new(config).run(),
            }
        })
        .collect();
    TargetSweep { runs }
}

/// Result of one [`transfer_experiment`] cell: the zoo trained on
/// `train_target`'s subset, evaluated against `eval_target`'s ground
/// truth.
#[derive(Clone, Debug)]
pub struct TransferOutcome {
    /// Target whose synthesized subset trained the zoo.
    pub train_target: String,
    /// Target whose ground truth evaluated the estimates.
    pub eval_target: String,
    /// Fidelity (paper Eq. 1) of the best model's whole-library estimates
    /// against the evaluation target's ground truth, per parameter.
    pub fidelity: BTreeMap<FpgaParam, f64>,
    /// Pareto coverage of the evaluation target's true front by the
    /// candidates peeled from the train-target zoo's estimates, per
    /// parameter.
    pub coverage: BTreeMap<FpgaParam, f64>,
    /// Number of candidate circuits the transferred flow would
    /// re-synthesize on the evaluation target (union over parameters).
    pub candidates: usize,
}

impl TransferOutcome {
    /// Mean estimation fidelity across parameters.
    pub fn mean_fidelity(&self) -> f64 {
        mean(self.fidelity.values())
    }

    /// Mean pareto coverage across parameters.
    pub fn mean_coverage(&self) -> f64 {
        mean(self.coverage.values())
    }
}

fn mean<'a>(values: impl Iterator<Item = &'a f64>) -> f64 {
    let v: Vec<f64> = values.copied().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Train the zoo on `train_target`, evaluate against `eval_target`.
///
/// The experiment mirrors the flow's estimation stage under a retarget:
///
/// 1. characterize the library for both targets (same circuits, two
///    FPGA ground truths; ASIC and error metrics are fabric-independent),
/// 2. sample the base configuration's subset and train the zoo on the
///    *train* target's reports,
/// 3. estimate the whole library with the per-parameter top models, peel
///    `base.fronts` pseudo-pareto fronts and take the candidate union —
///    exactly what the flow would re-synthesize on the new fabric,
/// 4. score the transfer: best-model fidelity against the *eval* target's
///    ground truth, and coverage of the eval target's true pareto front
///    by the candidates (evaluated at the eval target's cost points).
///
/// With `train_target == eval_target` this is the native quality
/// (the matrix diagonal); the degradation of off-diagonal cells is the
/// Xel-FPGAs question.
pub fn transfer_experiment(
    base: &FlowConfig,
    train_target: &str,
    eval_target: &str,
) -> Result<TransferOutcome, UnknownTargetError> {
    let train_profile = named(train_target).ok_or_else(|| UnknownTargetError {
        name: train_target.to_string(),
    })?;
    let eval_profile = named(eval_target).ok_or_else(|| UnknownTargetError {
        name: eval_target.to_string(),
    })?;
    let rt = Runtime::new(base.threads);
    let library = build_library_with(&base.library, &rt);
    let characterize = |profile: &TargetProfile| {
        characterize_library_with(
            &library,
            &base.asic,
            &profile.apply(&base.fpga),
            &base.error,
            &rt,
            None,
        )
    };
    let train_records = characterize(train_profile);
    let eval_records = if train_target == eval_target {
        train_records.clone()
    } else {
        characterize(eval_profile)
    };

    let n = train_records.len();
    let subset = sample_subset(n, base.subset_fraction, base.min_subset, base.seed);
    let (train, validate) = train_validate_split(&subset, base.train_fraction, base.seed);
    let zoo = train_zoo_with(
        &train_records,
        &train,
        &validate,
        &base.models,
        base.fidelity_tolerance,
        &rt,
        &afp_obs::Recorder::disabled(),
    );

    let mut fid = BTreeMap::new();
    let mut cov = BTreeMap::new();
    let mut union: std::collections::BTreeSet<usize> = Default::default();
    for &param in &FpgaParam::ALL {
        let truth_eval: Vec<f64> = eval_records.iter().map(|r| r.fpga_param(param)).collect();
        let top = zoo.top_models(param, base.top_models, false);
        // Candidate peeling happens entirely in estimate space — the
        // transferred flow has not synthesized anything on the eval
        // fabric yet.
        let mut candidates: std::collections::BTreeSet<usize> = Default::default();
        for (rank, &model) in top.iter().enumerate() {
            let est = zoo.estimate_all(model, param, &train_records);
            if rank == 0 {
                fid.insert(param, fidelity(&est, &truth_eval, base.fidelity_tolerance));
            }
            let points: Vec<(f64, f64)> = est
                .iter()
                .zip(&train_records)
                .filter(|(e, _)| e.is_finite())
                .map(|(&e, r)| (e, r.error.med))
                .collect();
            let keep: Vec<usize> = est
                .iter()
                .enumerate()
                .filter(|(_, e)| e.is_finite())
                .map(|(i, _)| i)
                .collect();
            for front in peel_fronts(&points, base.fronts) {
                candidates.extend(front.into_iter().map(|li| keep[li]));
            }
        }
        // Score on the eval fabric: the front the flow would measure
        // after re-synthesizing the candidates (plus the subset it
        // already paid for) on the new target.
        let mut synthesized: std::collections::BTreeSet<usize> = subset.iter().copied().collect();
        synthesized.extend(candidates.iter().copied());
        let all_points: Vec<(f64, f64)> = eval_records
            .iter()
            .map(|r| (r.fpga_param(param), r.error.med))
            .collect();
        let synth_list: Vec<usize> = synthesized.iter().copied().collect();
        let synth_points: Vec<(f64, f64)> = synth_list.iter().map(|&i| all_points[i]).collect();
        let found: Vec<usize> = pareto_front(&synth_points)
            .into_iter()
            .map(|li| synth_list[li])
            .collect();
        let truth_front = pareto_front(&all_points);
        cov.insert(param, coverage(&truth_front, &found, &all_points));
        union.extend(candidates);
    }

    Ok(TransferOutcome {
        train_target: train_target.to_string(),
        eval_target: eval_target.to_string(),
        fidelity: fid,
        coverage: cov,
        candidates: union.len(),
    })
}

/// Every (train, eval) pair over `set`, in row-major sweep order — the
/// full cross-target coverage matrix.
pub fn transfer_matrix(
    base: &FlowConfig,
    set: &TargetSet,
) -> Result<Vec<TransferOutcome>, UnknownTargetError> {
    let mut cells = Vec::with_capacity(set.len() * set.len());
    for train in set.profiles() {
        for eval in set.profiles() {
            cells.push(transfer_experiment(base, train.name, eval.name)?);
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::{ArithKind, LibrarySpec};
    use afp_ml::MlModelId;

    fn tiny_config() -> FlowConfig {
        FlowConfig {
            library: LibrarySpec::new(ArithKind::Adder, 8, 70),
            min_subset: 24,
            models: vec![
                MlModelId::Ml4,
                MlModelId::Ml11,
                MlModelId::Ml13,
                MlModelId::Ml18,
            ],
            ..FlowConfig::default()
        }
    }

    #[test]
    fn target_set_resolves_and_rejects() {
        let all = TargetSet::all();
        assert!(all.len() >= 4);
        assert!(!all.is_empty());
        let two = TargetSet::from_names(&["lut4-ice40", "alm-stratix"]).unwrap();
        assert_eq!(two.len(), 2);
        assert_eq!(two.profiles()[0].name, "lut4-ice40");
        let err = TargetSet::from_names(&["lut5-nope"]).unwrap_err();
        assert_eq!(err.name, "lut5-nope");
        assert!(err.to_string().contains("lut6-7series"), "{err}");
    }

    #[test]
    fn sweep_produces_per_target_outcomes_with_identities() {
        let set = TargetSet::from_names(&["lut6-7series", "lut4-ice40"]).unwrap();
        let sweep = sweep_targets(&tiny_config(), &set);
        assert_eq!(sweep.runs.len(), 2);
        for run in &sweep.runs {
            assert!(run.outcome.records.iter().all(|r| r.target == run.target));
            for (&param, &c) in &run.outcome.coverage {
                assert!((0.0..=1.0).contains(&c), "{}/{param:?}: {c}", run.target);
            }
        }
        // The fabrics genuinely differ: ground-truth LUT counts diverge
        // (K=6 absorbs more logic per LUT than K=4).
        let luts =
            |run: &TargetRun| -> usize { run.outcome.records.iter().map(|r| r.fpga.luts).sum() };
        assert!(
            luts(&sweep.runs[1]) > luts(&sweep.runs[0]),
            "LUT-4 should need more LUTs than LUT-6"
        );
        let covs = sweep.mean_coverages();
        assert_eq!(covs[0].0, "lut6-7series");
        assert_eq!(covs[0].1, sweep.runs[0].outcome.mean_coverage());
    }

    #[test]
    fn native_transfer_matches_itself_and_is_deterministic() {
        let base = tiny_config();
        let a = transfer_experiment(&base, "lut6-7series", "lut6-7series").unwrap();
        let b = transfer_experiment(&base, "lut6-7series", "lut6-7series").unwrap();
        assert_eq!(a.fidelity, b.fidelity);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.candidates, b.candidates);
        for (&param, &f) in &a.fidelity {
            assert!((0.0..=1.0).contains(&f), "{param:?}: fidelity {f}");
        }
        for (&param, &c) in &a.coverage {
            assert!((0.0..=1.0).contains(&c), "{param:?}: coverage {c}");
        }
        assert!(a.candidates > 0);
        // A competent zoo on a small adder library recovers a meaningful
        // share of its own front.
        assert!(
            a.mean_coverage() > 0.3,
            "native coverage {}",
            a.mean_coverage()
        );
    }

    #[test]
    fn transfer_rejects_unknown_targets() {
        let base = tiny_config();
        assert!(transfer_experiment(&base, "nope", "lut4-ice40").is_err());
        assert!(transfer_experiment(&base, "lut4-ice40", "nope").is_err());
    }
}
